//! Randomized property tests on the core data structures and invariants.
//!
//! Cases are generated with the repo's own deterministic [`SimRng`] rather
//! than an external property-testing framework: every run explores the same
//! seeds, so a failure here is always reproducible with no shrink step.

use microreboot::simcore::{EventQueue, SimDuration, SimRng, SimTime};
use microreboot::statestore::db::TableDef;
use microreboot::statestore::lease::LeaseTable;
use microreboot::statestore::session::{SessionId, SessionObject, SessionStore};
use microreboot::statestore::{Database, FastS, Ssm, Value};

const CASES: u64 = 64;

/// A random operation against the database.
#[derive(Clone, Debug)]
enum DbOp {
    Insert(i64, i64),
    Update(i64, i64),
    Delete(i64),
}

fn gen_db_op(rng: &mut SimRng) -> DbOp {
    let pk = rng.uniform_u64(50) as i64;
    let v = rng.next_u64() as i64;
    match rng.uniform_u64(3) {
        0 => DbOp::Insert(pk, v),
        1 => DbOp::Update(pk, v),
        _ => DbOp::Delete(pk),
    }
}

/// A sequence of transactions; each is a list of ops plus commit/abort.
fn gen_txns(rng: &mut SimRng) -> Vec<(Vec<DbOp>, bool)> {
    (0..rng.uniform_u64(12))
        .map(|_| {
            let ops = (0..rng.uniform_u64(8)).map(|_| gen_db_op(rng)).collect();
            (ops, rng.chance(0.5))
        })
        .collect()
}

fn fresh_db() -> Database {
    Database::new(vec![TableDef {
        name: "t",
        columns: &["id", "v"],
    }])
}

/// Aborted transactions leave no trace: the table contents equal the
/// result of applying only the committed transactions.
#[test]
fn db_aborted_txns_leave_no_trace() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0x1000 + case);
        let txns = gen_txns(&mut rng);
        let mut real = fresh_db();
        let mut model = fresh_db();
        let rc = real.open_conn();
        let mc = model.open_conn();
        for (ops, commit) in &txns {
            let rt = real.begin(rc).unwrap();
            let mt = model.begin(mc).unwrap();
            for op in ops {
                // Apply to the real db always; to the model only if this
                // txn will commit. Ignore individual op errors (dup keys,
                // missing rows) — both sides get the same ones.
                match op {
                    DbOp::Insert(pk, v) => {
                        let row = vec![Value::Int(*pk), Value::Int(*v)];
                        let r = real.insert(rt, "t", row.clone());
                        if *commit {
                            let m = model.insert(mt, "t", row);
                            assert_eq!(r.is_ok(), m.is_ok());
                        }
                    }
                    DbOp::Update(pk, v) => {
                        let r = real.update(rt, "t", *pk, &[(1, Value::Int(*v))]);
                        if *commit {
                            let m = model.update(mt, "t", *pk, &[(1, Value::Int(*v))]);
                            assert_eq!(r.is_ok(), m.is_ok());
                        }
                    }
                    DbOp::Delete(pk) => {
                        let r = real.delete(rt, "t", *pk);
                        if *commit {
                            let m = model.delete(mt, "t", *pk);
                            assert_eq!(r.is_ok(), m.is_ok());
                        }
                    }
                }
            }
            if *commit {
                real.commit(rt).unwrap();
                model.commit(mt).unwrap();
            } else {
                real.rollback(rt).unwrap();
                model.rollback(mt).unwrap();
            }
        }
        // Compare full table contents.
        let rows_real = real.scan("t", |_| true, usize::MAX).unwrap();
        let rows_model = model.scan("t", |_| true, usize::MAX).unwrap();
        assert_eq!(rows_real, rows_model, "case {case}");
    }
}

/// A crash mid-transaction preserves exactly the committed state.
#[test]
fn db_crash_preserves_committed_state() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0x2000 + case);
        let committed: Vec<(i64, i64)> = (0..1 + rng.uniform_u64(19))
            .map(|_| (rng.uniform_u64(40) as i64, rng.next_u64() as i64))
            .collect();
        let uncommitted: Vec<(i64, i64)> = (0..1 + rng.uniform_u64(19))
            .map(|_| (rng.uniform_u64(40) as i64, rng.next_u64() as i64))
            .collect();

        let mut db = fresh_db();
        let conn = db.open_conn();
        let txn = db.begin(conn).unwrap();
        for (pk, v) in &committed {
            let _ = db.insert(txn, "t", vec![Value::Int(*pk), Value::Int(*v)]);
        }
        db.commit(txn).unwrap();
        let snapshot = db.scan("t", |_| true, usize::MAX).unwrap();

        let conn2 = db.open_conn();
        let txn2 = db.begin(conn2).unwrap();
        for (pk, v) in &uncommitted {
            let _ = db.insert(txn2, "t", vec![Value::Int(*pk), Value::Int(*v)]);
            let _ = db.update(txn2, "t", *pk, &[(1, Value::Int(v ^ 1))]);
        }
        db.crash();
        assert_eq!(
            db.scan("t", |_| true, usize::MAX).unwrap(),
            snapshot,
            "case {case}"
        );
        assert_eq!(db.active_txns(), 0);
    }
}

/// Corruption followed by repair restores the exact pre-corruption
/// image, regardless of interleaved corruption order.
#[test]
fn db_repair_is_exact() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0x3000 + case);
        let mut rows = std::collections::BTreeMap::new();
        for _ in 0..1 + rng.uniform_u64(19) {
            rows.insert(rng.uniform_u64(30) as i64, rng.next_u64() as i64);
        }
        let victims: Vec<i64> = (0..1 + rng.uniform_u64(9))
            .map(|_| rng.uniform_u64(30) as i64)
            .collect();

        let mut db = fresh_db();
        let conn = db.open_conn();
        let txn = db.begin(conn).unwrap();
        for (pk, v) in &rows {
            db.insert(txn, "t", vec![Value::Int(*pk), Value::Int(*v)])
                .unwrap();
        }
        db.commit(txn).unwrap();
        let before = db.scan("t", |_| true, usize::MAX).unwrap();
        for pk in &victims {
            let _ = db.corrupt_cell("t", *pk, 1, Value::Null);
        }
        db.repair();
        assert!(db.is_consistent(), "case {case}");
        assert_eq!(db.scan("t", |_| true, usize::MAX).unwrap(), before);
    }
}

/// The event queue fires events in nondecreasing time order, with
/// FIFO order among equal timestamps.
#[test]
fn event_queue_is_time_ordered() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0x4000 + case);
        let times: Vec<u64> = (0..1 + rng.uniform_u64(99))
            .map(|_| rng.uniform_u64(1000))
            .collect();
        let mut q: EventQueue<Vec<(u64, usize)>> = EventQueue::new();
        let mut world = Vec::new();
        for (i, t) in times.iter().enumerate() {
            let t = *t;
            q.schedule_at(
                SimTime::from_millis(t),
                "e",
                move |w: &mut Vec<(u64, usize)>, _| {
                    w.push((t, i));
                },
            );
        }
        q.run_to_completion(&mut world);
        assert_eq!(world.len(), times.len());
        for pair in world.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "time order, case {case}");
            if pair[0].0 == pair[1].0 {
                assert!(pair[0].1 < pair[1].1, "FIFO among ties, case {case}");
            }
        }
    }
}

/// Leases: an entry is live iff granted-or-renewed within the term;
/// sweep returns each expired payload exactly once.
#[test]
fn lease_sweep_exactly_once() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0x5000 + case);
        let grants: Vec<u64> = (0..1 + rng.uniform_u64(49))
            .map(|_| rng.uniform_u64(100))
            .collect();
        let mut lt: LeaseTable<usize> = LeaseTable::new(SimDuration::from_secs(10));
        let ids: Vec<_> = grants
            .iter()
            .enumerate()
            .map(|(i, t)| (lt.grant(SimTime::from_secs(*t), i), *t))
            .collect();
        let sweep_at = SimTime::from_secs(60);
        let expired = lt.sweep(sweep_at);
        let should_expire = ids.iter().filter(|(_, t)| *t + 10 <= 60).count();
        assert_eq!(expired.len(), should_expire, "case {case}");
        // Second sweep finds nothing new.
        assert_eq!(lt.sweep(sweep_at).len(), 0);
    }
}

/// Session objects survive an SSM write/read round trip unchanged
/// (marshalling + checksum verification are lossless).
#[test]
fn ssm_roundtrip_is_lossless() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0x6000 + case);
        let mut obj = SessionObject::new();
        let keys = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
        for key in &keys[..rng.uniform_usize(keys.len() + 1)] {
            obj.set(key, rng.next_u64() as i64);
        }
        let mut ssm = Ssm::new(3);
        ssm.write(SessionId(1), obj.clone()).unwrap();
        let got = ssm.read(SessionId(1)).unwrap().unwrap();
        assert_eq!(got, obj, "case {case}");
    }
}

/// FastS revalidation never discards objects the validator accepts
/// and never keeps objects it rejects.
#[test]
fn fasts_revalidation_is_exact() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0x7000 + case);
        let user_ids: Vec<i64> = (0..1 + rng.uniform_u64(29))
            .map(|_| rng.next_u64() as i64)
            .collect();
        let mut fasts = FastS::new();
        for (i, uid) in user_ids.iter().enumerate() {
            let mut obj = SessionObject::new();
            obj.set("user_id", *uid);
            fasts.write(SessionId(i as u64), obj).unwrap();
        }
        let valid = |o: &SessionObject| {
            o.get("user_id")
                .and_then(Value::as_int)
                .map(|v| v > 0)
                .unwrap_or(false)
        };
        fasts.revalidate(valid);
        let expected = user_ids.iter().filter(|v| **v > 0).count();
        assert_eq!(fasts.live_sessions(), expected, "case {case}");
    }
}
