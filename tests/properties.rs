//! Property-based tests on the core data structures and invariants.

use microreboot::simcore::{EventQueue, SimDuration, SimTime};
use microreboot::statestore::db::TableDef;
use microreboot::statestore::lease::LeaseTable;
use microreboot::statestore::session::{SessionId, SessionObject, SessionStore};
use microreboot::statestore::{Database, FastS, Ssm, Value};
use proptest::prelude::*;

/// A random operation against the database.
#[derive(Clone, Debug)]
enum DbOp {
    Insert(i64, i64),
    Update(i64, i64),
    Delete(i64),
}

fn db_ops() -> impl Strategy<Value = Vec<(Vec<DbOp>, bool)>> {
    // A sequence of transactions; each is a list of ops plus commit/abort.
    let op = prop_oneof![
        (0i64..50, any::<i64>()).prop_map(|(pk, v)| DbOp::Insert(pk, v)),
        (0i64..50, any::<i64>()).prop_map(|(pk, v)| DbOp::Update(pk, v)),
        (0i64..50).prop_map(DbOp::Delete),
    ];
    proptest::collection::vec((proptest::collection::vec(op, 0..8), any::<bool>()), 0..12)
}

fn fresh_db() -> Database {
    Database::new(vec![TableDef {
        name: "t",
        columns: &["id", "v"],
    }])
}

proptest! {
    /// Aborted transactions leave no trace: the table contents equal the
    /// result of applying only the committed transactions.
    #[test]
    fn db_aborted_txns_leave_no_trace(txns in db_ops()) {
        let mut real = fresh_db();
        let mut model = fresh_db();
        let rc = real.open_conn();
        let mc = model.open_conn();
        for (ops, commit) in &txns {
            let rt = real.begin(rc).unwrap();
            let mt = model.begin(mc).unwrap();
            for op in ops {
                // Apply to the real db always; to the model only if this
                // txn will commit. Ignore individual op errors (dup keys,
                // missing rows) — both sides get the same ones.
                match op {
                    DbOp::Insert(pk, v) => {
                        let row = vec![Value::Int(*pk), Value::Int(*v)];
                        let r = real.insert(rt, "t", row.clone());
                        if *commit {
                            let m = model.insert(mt, "t", row);
                            prop_assert_eq!(r.is_ok(), m.is_ok());
                        }
                    }
                    DbOp::Update(pk, v) => {
                        let r = real.update(rt, "t", *pk, &[(1, Value::Int(*v))]);
                        if *commit {
                            let m = model.update(mt, "t", *pk, &[(1, Value::Int(*v))]);
                            prop_assert_eq!(r.is_ok(), m.is_ok());
                        }
                    }
                    DbOp::Delete(pk) => {
                        let r = real.delete(rt, "t", *pk);
                        if *commit {
                            let m = model.delete(mt, "t", *pk);
                            prop_assert_eq!(r.is_ok(), m.is_ok());
                        }
                    }
                }
            }
            if *commit {
                real.commit(rt).unwrap();
                model.commit(mt).unwrap();
            } else {
                real.rollback(rt).unwrap();
                model.rollback(mt).unwrap();
            }
        }
        // Compare full table contents.
        let rows_real = real.scan("t", |_| true, usize::MAX).unwrap();
        let rows_model = model.scan("t", |_| true, usize::MAX).unwrap();
        prop_assert_eq!(rows_real, rows_model);
    }

    /// A crash mid-transaction preserves exactly the committed state.
    #[test]
    fn db_crash_preserves_committed_state(
        committed in proptest::collection::vec((0i64..40, any::<i64>()), 1..20),
        uncommitted in proptest::collection::vec((0i64..40, any::<i64>()), 1..20),
    ) {
        let mut db = fresh_db();
        let conn = db.open_conn();
        let txn = db.begin(conn).unwrap();
        for (pk, v) in &committed {
            let _ = db.insert(txn, "t", vec![Value::Int(*pk), Value::Int(*v)]);
        }
        db.commit(txn).unwrap();
        let snapshot = db.scan("t", |_| true, usize::MAX).unwrap();

        let conn2 = db.open_conn();
        let txn2 = db.begin(conn2).unwrap();
        for (pk, v) in &uncommitted {
            let _ = db.insert(txn2, "t", vec![Value::Int(*pk), Value::Int(*v)]);
            let _ = db.update(txn2, "t", *pk, &[(1, Value::Int(v ^ 1))]);
        }
        db.crash();
        prop_assert_eq!(db.scan("t", |_| true, usize::MAX).unwrap(), snapshot);
        prop_assert_eq!(db.active_txns(), 0);
    }

    /// Corruption followed by repair restores the exact pre-corruption
    /// image, regardless of interleaved corruption order.
    #[test]
    fn db_repair_is_exact(
        rows in proptest::collection::btree_map(0i64..30, any::<i64>(), 1..20),
        victims in proptest::collection::vec(0i64..30, 1..10),
    ) {
        let mut db = fresh_db();
        let conn = db.open_conn();
        let txn = db.begin(conn).unwrap();
        for (pk, v) in &rows {
            db.insert(txn, "t", vec![Value::Int(*pk), Value::Int(*v)]).unwrap();
        }
        db.commit(txn).unwrap();
        let before = db.scan("t", |_| true, usize::MAX).unwrap();
        for pk in &victims {
            let _ = db.corrupt_cell("t", *pk, 1, Value::Null);
        }
        db.repair();
        prop_assert!(db.is_consistent());
        prop_assert_eq!(db.scan("t", |_| true, usize::MAX).unwrap(), before);
    }

    /// The event queue fires events in nondecreasing time order, with
    /// FIFO order among equal timestamps.
    #[test]
    fn event_queue_is_time_ordered(times in proptest::collection::vec(0u64..1000, 1..100)) {
        let mut q: EventQueue<Vec<(u64, usize)>> = EventQueue::new();
        let mut world = Vec::new();
        for (i, t) in times.iter().enumerate() {
            let t = *t;
            q.schedule_at(SimTime::from_millis(t), "e", move |w: &mut Vec<(u64, usize)>, _| {
                w.push((t, i));
            });
        }
        q.run_to_completion(&mut world);
        prop_assert_eq!(world.len(), times.len());
        for pair in world.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "FIFO among ties");
            }
        }
    }

    /// Leases: an entry is live iff granted-or-renewed within the term;
    /// sweep returns each expired payload exactly once.
    #[test]
    fn lease_sweep_exactly_once(grants in proptest::collection::vec(0u64..100, 1..50)) {
        let mut lt: LeaseTable<usize> = LeaseTable::new(SimDuration::from_secs(10));
        let ids: Vec<_> = grants
            .iter()
            .enumerate()
            .map(|(i, t)| (lt.grant(SimTime::from_secs(*t), i), *t))
            .collect();
        let sweep_at = SimTime::from_secs(60);
        let expired = lt.sweep(sweep_at);
        let should_expire = ids.iter().filter(|(_, t)| *t + 10 <= 60).count();
        prop_assert_eq!(expired.len(), should_expire);
        // Second sweep finds nothing new.
        prop_assert_eq!(lt.sweep(sweep_at).len(), 0);
    }

    /// Session objects survive an SSM write/read round trip unchanged
    /// (marshalling + checksum verification are lossless).
    #[test]
    fn ssm_roundtrip_is_lossless(attrs in proptest::collection::btree_map("[a-z]{1,8}", any::<i64>(), 0..10)) {
        let mut obj = SessionObject::new();
        for (k, v) in &attrs {
            obj.set(k, *v);
        }
        let mut ssm = Ssm::new(3);
        ssm.write(SessionId(1), obj.clone()).unwrap();
        let got = ssm.read(SessionId(1)).unwrap().unwrap();
        prop_assert_eq!(got, obj);
    }

    /// FastS revalidation never discards objects the validator accepts
    /// and never keeps objects it rejects.
    #[test]
    fn fasts_revalidation_is_exact(user_ids in proptest::collection::vec(any::<i64>(), 1..30)) {
        let mut fasts = FastS::new();
        for (i, uid) in user_ids.iter().enumerate() {
            let mut obj = SessionObject::new();
            obj.set("user_id", *uid);
            fasts.write(SessionId(i as u64), obj).unwrap();
        }
        let valid = |o: &SessionObject| {
            o.get("user_id").and_then(Value::as_int).map(|v| v > 0).unwrap_or(false)
        };
        fasts.revalidate(valid);
        let expected = user_ids.iter().filter(|v| **v > 0).count();
        prop_assert_eq!(fasts.live_sessions(), expected);
    }
}
