//! Fast end-to-end checks of the paper's qualitative claims, spanning
//! every crate through the facade. (The full quantitative reproductions
//! live in the `bench` experiment binaries; these are the smoke-test
//! versions that run in seconds.)

use microreboot::cluster::{Sim, SimConfig, StoreChoice};
use microreboot::faults::Fault;
use microreboot::recovery::{PolicyLevel, RecoveryAction, RmConfig};
use microreboot::simcore::{SimDuration, SimTime};
use microreboot::statestore::session::CorruptKind;

fn mins(m: u64) -> SimTime {
    SimTime::from_mins(m)
}

/// "Microreboots recover most of the same failures as full reboots, but
/// do so an order of magnitude faster and result in an order of magnitude
/// savings in lost work."
#[test]
fn microreboot_beats_restart_by_an_order_of_magnitude() {
    let run = |level: PolicyLevel| {
        let mut sim = Sim::new(SimConfig {
            rm: Some(RmConfig {
                start_level: level,
                ..RmConfig::default()
            }),
            ..SimConfig::default()
        });
        sim.schedule_fault(
            mins(2),
            0,
            Fault::CorruptJndi {
                component: "RegisterNewUser",
                kind: CorruptKind::SetNull,
            },
        );
        sim.run_until(mins(5));
        sim.finish().pool.taw_ref().summary().bad_ops
    };
    let restart = run(PolicyLevel::Process);
    let urb = run(PolicyLevel::Ejb);
    assert!(
        restart as f64 / urb.max(1) as f64 >= 10.0,
        "restart lost {restart}, uRB lost {urb}: not an order of magnitude"
    );
}

/// "Being minimally-disruptive allows transparent call-level retries to
/// mask a microreboot from end users."
#[test]
fn retries_mask_microreboots() {
    let run = |retry: bool| {
        let mut sim = Sim::new(SimConfig {
            retry_enabled: retry,
            ..SimConfig::default()
        });
        for i in 0..4u64 {
            sim.schedule_recovery(
                SimTime::from_secs(60 + 30 * i),
                0,
                RecoveryAction::microreboot(&["BrowseCategories"]),
            );
        }
        sim.run_until(SimTime::from_secs(240));
        sim.finish().pool.taw_ref().summary().bad_ops
    };
    let without = run(false);
    let with = run(true);
    assert!(
        with < without,
        "retry should mask failures: {with} with vs {without} without"
    );
}

/// "Systems can be rejuvenated by parts, without ever being shut down."
#[test]
fn microrejuvenation_reclaims_leaks_without_downtime() {
    let mut sim = Sim::new(SimConfig::default());
    sim.schedule_fault(
        SimTime::from_secs(5),
        0,
        Fault::AppMemoryLeak {
            component: "ViewItem",
            bytes_per_call: 2 << 20,
            persistent: true,
        },
    );
    sim.enable_rejuvenation(0, 350 << 20, 800 << 20, SimDuration::from_secs(5));
    sim.run_until(mins(8));
    let world = sim.finish();
    assert!(
        world.nodes[0].available_memory() > 300 << 20,
        "rejuvenation kept the heap alive"
    );
    assert!(world.nodes[0].is_up());
    assert_eq!(
        world.nodes[0].stats().process_restarts,
        0,
        "never shut down"
    );
    assert!(
        world.nodes[0].stats().microreboots >= 1,
        "rejuvenated by parts"
    );
    let taw = world.pool.taw_ref();
    for m in 1..8 {
        assert!(
            taw.good_in(m * 60, m * 60 + 59) > 0.0,
            "good Taw never drops to zero (minute {m})"
        );
    }
}

/// "Microreboots can be employed at the slightest hint of failure ...
/// even when mistakes in failure detection are likely": a useless
/// microreboot on a healthy system costs almost nothing.
#[test]
fn false_positive_microreboots_are_cheap() {
    let mut sim = Sim::new(SimConfig::default());
    for i in 0..5u64 {
        sim.schedule_recovery(
            SimTime::from_secs(60 + 20 * i),
            0,
            RecoveryAction::microreboot(&["ViewItem"]),
        );
    }
    sim.run_until(SimTime::from_secs(240));
    let world = sim.finish();
    let s = world.pool.taw_ref().summary();
    let per_urb = s.bad_ops as f64 / 5.0;
    assert!(
        per_urb < 120.0,
        "a useless microreboot should cost ~tens of requests, cost {per_urb}"
    );
}

/// SSM keeps sessions through process restarts; FastS does not — the
/// trade-off behind Figure 1's post-restart failures.
#[test]
fn session_store_placement_controls_restart_damage() {
    let run = |store: StoreChoice| {
        let mut sim = Sim::new(SimConfig {
            store,
            ..SimConfig::default()
        });
        sim.schedule_recovery(mins(2), 0, RecoveryAction::RestartProcess);
        sim.run_until(mins(5));
        sim.finish().pool.taw_ref().summary().bad_ops
    };
    let fasts = run(StoreChoice::FastS);
    let ssm = run(StoreChoice::Ssm);
    assert!(
        fasts > ssm,
        "FastS restart loses sessions ({fasts} bad) vs SSM ({ssm} bad)"
    );
}

/// The recursive policy escalates to a process restart for faults below
/// the application (here: bad system call return values).
#[test]
fn sub_jvm_faults_escalate_to_process_restart() {
    let mut sim = Sim::new(SimConfig {
        rm: Some(RmConfig::default()),
        ..SimConfig::default()
    });
    sim.schedule_fault(mins(2), 0, Fault::BadSyscalls);
    sim.run_until(mins(6));
    let world = sim.finish();
    assert!(
        world.nodes[0].stats().process_restarts >= 1,
        "log: {:?}",
        world.log
    );
    assert_eq!(world.pool.taw_ref().bad_in(5 * 60, 6 * 60 - 1), 0.0);
}

/// Microreboot durations match Table 3's calibration end to end.
#[test]
fn microreboot_durations_match_table3() {
    let mut sim = Sim::new(SimConfig::default());
    sim.schedule_recovery(
        mins(1),
        0,
        RecoveryAction::microreboot(&["BrowseCategories"]),
    );
    sim.run_until(mins(2));
    let world = sim.finish();
    let dur = world
        .log
        .iter()
        .find_map(|e| match e {
            microreboot::cluster::LogEvent::RecoveryFinished { at, started, .. } => {
                Some(*at - *started)
            }
            _ => None,
        })
        .expect("one recovery");
    // Paper: 411 ms ± trial jitter.
    assert!(dur >= SimDuration::from_millis(370), "got {dur}");
    assert!(dur <= SimDuration::from_millis(460), "got {dur}");
}
