//! Allocation regression gate for the arena kernel.
//!
//! The slot-arena refactor's core claim is that steady-state event
//! traffic is allocation-free: slots are reused through the free list and
//! hot-slot hint, chain payloads live inline, and the metrics fold writes
//! dense symbol-indexed storage. This test pins that claim at exactly
//! zero heap allocations per event once the pool and containers are warm
//! — any future `Box`, map node, or accidental `Vec` growth on the
//! per-event path fails it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bench::kernel::{self, BenchWorld, ChainEvent};
use simcore::{EventQueue, QuantileSketch};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_arena_kernel_allocates_nothing_per_event() {
    let mut queue: EventQueue<BenchWorld, ChainEvent> = EventQueue::new();
    let mut world = BenchWorld::default();
    kernel::seed_arena(&mut queue);
    // Warm everything that legitimately grows once: the slot pool, the
    // heap's backing vec, the in-flight window and the series hot row.
    while world.fired < 100_000 {
        queue.step(&mut world);
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    let fired_before = world.fired;
    while world.fired < fired_before + 100_000 {
        queue.step(&mut world);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;

    assert_eq!(
        allocs,
        0,
        "the warm arena kernel must fire events without heap allocation \
         ({} allocations over {} events)",
        allocs,
        world.fired - fired_before
    );
}

/// The performance plane's streaming sketch makes the same promise: its
/// bucket array is fixed at construction, so a warm `observe` — the call
/// the per-request hot path makes — never touches the heap.
#[test]
fn warm_sketch_observe_allocates_nothing() {
    let mut sketch = QuantileSketch::new();
    // Warm: construction allocates the fixed bucket array, and the first
    // observations touch every code path once.
    for v in 0..1_000u64 {
        sketch.observe(v * 37 + 1);
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for v in 0..100_000u64 {
        // Spread over several decades so every bucket stratum is hit.
        sketch.observe((v * 101) % 10_000_000 + v % 97 + 1);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    let observed = sketch.quantile(0.95);

    assert_eq!(
        allocs, 0,
        "a warm sketch must absorb observations without heap allocation \
         ({allocs} allocations over 100000 observes, p95 {observed})"
    );
}
