//! Conformance properties every [`RecoveryPolicy`] implementation must
//! satisfy, checked through the chaos runner's invariant battery:
//!
//! * **bounded-grace termination** — the failure episode converges within
//!   the campaign tail + grace window (no policy may loop forever);
//! * **acks conserved** — every decision the policy hands the executor is
//!   acknowledged exactly once (`in_flight == 0` at quiescence), even
//!   when the RM itself crashes mid-episode and loses its state;
//! * **no absorbing state under flapping** — a recurring fault must not
//!   wedge the policy: the node ends up, goodput recovers;
//! * **quarantine always lifted** — bulkhead holds and failover
//!   redirects never outlive the episode;
//! * **determinism** — a re-run of the same scenario reproduces the
//!   trace digest bit-for-bit.
//!
//! [`RecoveryPolicy`]: recovery::RecoveryPolicy

use bench::chaos::{run_scenario, RunOptions};
use faults::campaign::{FlapSchedule, RmCrashSchedule, Scenario};
use faults::Fault;
use recovery::PolicyChoice;

/// A flapping transient fault: recurs three times after the initial
/// injection, each recurrence landing on a "recovered" system.
fn flap_scenario(seed: u64) -> Scenario {
    Scenario {
        run: 0,
        sim_seed: seed,
        fault: Fault::TransientException {
            component: "MakeBid",
            calls: u32::MAX,
        },
        inject_at_s: 10,
        second: None,
        flap: Some(FlapSchedule {
            recurrences: 3,
            gap_s: 40,
        }),
        comparison_detector: true,
        parallel_rm: false,
        budgeted_retry: false,
        rm_crash: None,
    }
}

/// A deadlock with the RM itself crashing mid-episode (ReHype): the
/// policy's volatile state is wiped and in-flight acknowledgements are
/// dropped while the RM is down.
fn rm_crash_scenario(seed: u64) -> Scenario {
    Scenario {
        run: 1,
        sim_seed: seed,
        fault: Fault::Deadlock {
            component: "SearchItemsByCategory",
        },
        inject_at_s: 10,
        second: None,
        flap: None,
        comparison_detector: false,
        parallel_rm: false,
        budgeted_retry: false,
        rm_crash: Some(RmCrashSchedule {
            at_s: 14,
            outage_s: 20,
        }),
    }
}

/// An intermittent fault that heals on its own — tempts every policy
/// into useless escalation; the property is that none of them wedge.
fn intermittent_scenario(seed: u64) -> Scenario {
    Scenario {
        run: 2,
        sim_seed: seed,
        fault: Fault::Intermittent {
            component: "ViewItem",
            permille: 500,
            heals_after_s: Some(30),
        },
        inject_at_s: 10,
        second: None,
        flap: None,
        comparison_detector: true,
        parallel_rm: false,
        budgeted_retry: false,
        rm_crash: None,
    }
}

fn check(policy: PolicyChoice, s: &Scenario) {
    let opts = RunOptions {
        nodes: 2,
        policy,
        failover: true,
        clients: 30,
        perf: None,
        debug: false,
    };
    let out = run_scenario(s, &opts);
    assert!(
        out.violations.is_empty(),
        "{} violated conformance on {:?}: {:?}",
        policy.label(),
        s.fault,
        out.violations
    );
    let again = run_scenario(s, &opts);
    assert_eq!(
        out.digest,
        again.digest,
        "{} is nondeterministic on {:?}",
        policy.label(),
        s.fault
    );
}

#[test]
fn all_policies_survive_flapping_without_absorbing_state() {
    for &policy in PolicyChoice::ALL {
        check(policy, &flap_scenario(0x51c6_0001));
    }
}

#[test]
fn all_policies_conserve_acks_across_an_rm_crash() {
    for &policy in PolicyChoice::ALL {
        check(policy, &rm_crash_scenario(0x51c6_0002));
    }
}

#[test]
fn all_policies_terminate_on_a_self_healing_fault() {
    for &policy in PolicyChoice::ALL {
        check(policy, &intermittent_scenario(0x51c6_0003));
    }
}
