//! Wall-clock cost of the microreboot machinery itself.
//!
//! The simulated recovery *times* come from Table 3's calibration; these
//! benches measure the real cost of the framework primitives — what a
//! production implementation of the control plane would pay per recovery
//! action. An EJB microreboot's bookkeeping (group closure, sentinel
//! binding, container teardown/reinit) should be microseconds: the
//! machinery must never dominate the recovery it models.

use bench::harness::Harness;
use ebid::{DatasetSpec, EBid};
use simcore::SimTime;
use statestore::FastS;
use urb_core::backend::{share_db, SessionBackend};
use urb_core::{AppServer, ServerConfig};

fn build_server() -> AppServer<EBid> {
    let spec = DatasetSpec::tiny();
    let db = share_db(spec.generate(7));
    AppServer::new(
        EBid::new(spec),
        ServerConfig::default(),
        db,
        SessionBackend::FastS(FastS::new()),
    )
}

fn bench_microreboot_cycle(h: &mut Harness) {
    let mut server = build_server();
    let mut t = SimTime::from_secs(1);
    h.bench("microreboot_single_ejb_cycle", || {
        let ticket = server
            .begin_microreboot(&["ViewItem"], t, None)
            .expect("server up");
        server.microreboot_crash(ticket.id, ticket.crash_at);
        server.microreboot_complete(ticket.id, ticket.done_at);
        t = ticket.done_at;
    });
}

fn bench_microreboot_group(h: &mut Harness) {
    let mut server = build_server();
    let mut t = SimTime::from_secs(1);
    h.bench("microreboot_entity_group_cycle", || {
        let ticket = server
            .begin_microreboot(&["Item"], t, None)
            .expect("server up");
        server.microreboot_crash(ticket.id, ticket.crash_at);
        server.microreboot_complete(ticket.id, ticket.done_at);
        t = ticket.done_at;
    });
}

fn bench_process_restart(h: &mut Harness) {
    let mut server = build_server();
    let mut t = SimTime::from_secs(1);
    h.bench("process_restart_cycle", || {
        let (until, _) = server.begin_process_restart(t);
        server.process_restart_complete(until);
        t = until;
    });
}

fn bench_recovery_group_closure(h: &mut Harness) {
    let graph =
        components::graph::DependencyGraph::build(&ebid::components::descriptors()).unwrap();
    let item = graph.id_of("Item").unwrap();
    h.bench("recovery_group_lookup", || graph.recovery_group(item).len());
    h.bench("dependency_graph_build", || {
        components::graph::DependencyGraph::build(&ebid::components::descriptors()).unwrap()
    });
}

fn main() {
    let mut h = Harness::new("microreboot");
    bench_microreboot_cycle(&mut h);
    bench_microreboot_group(&mut h);
    bench_process_restart(&mut h);
    bench_recovery_group_closure(&mut h);
    h.finish();
}
