//! End-to-end framework throughput: how fast the simulation itself runs.
//!
//! The headline ablation: one simulated second of a loaded 500-client
//! node (the unit every experiment is built from), request dispatch
//! through the full interceptor/transaction/session path, and the Taw
//! accounting hot path.

use bench::harness::Harness;
use cluster::{Sim, SimConfig};
use simcore::stats::SecondSeries;
use simcore::{SimDuration, SimTime};
use workload::catalog::FunctionalGroup;
use workload::taw::{ActionId, TawTracker};

fn bench_simulated_second(h: &mut Harness) {
    h.bench("simulate_10s_500_clients", || {
        let mut sim = Sim::new(SimConfig::default());
        sim.run_until(SimTime::from_secs(10));
        let world = sim.finish();
        world.pool.taw_ref().summary().good_ops
    });
}

fn bench_request_path(h: &mut Harness) {
    use ebid::{DatasetSpec, EBid};
    use statestore::FastS;
    use urb_core::backend::{share_db, SessionBackend};
    use urb_core::server::make_request;
    use urb_core::{AppServer, ServerConfig, SubmitOutcome};

    let spec = DatasetSpec::tiny();
    let db = share_db(spec.generate(7));
    let mut server = AppServer::new(
        EBid::new(spec),
        ServerConfig::default(),
        db,
        SessionBackend::FastS(FastS::new()),
    );
    let mut now = SimTime::from_secs(1);
    let mut id = 0u64;
    h.bench("dispatch_view_item_request", || {
        id += 1;
        now += SimDuration::from_millis(100);
        let req = make_request(id, ebid::ops::codes::VIEW_ITEM, None, true, 5, now);
        match server.submit(req, now) {
            SubmitOutcome::Admitted => {
                let started = server.pump(now)[0];
                server.complete(started.req, started.cpu_done_at)
            }
            SubmitOutcome::Rejected(r) => Some(r),
        }
    });
}

fn bench_taw_accounting(h: &mut Harness) {
    let mut taw = TawTracker::new();
    let mut i = 0u64;
    h.bench("taw_record_and_close_action", || {
        i += 1;
        let a = ActionId(i);
        let t = SimTime::from_millis(i);
        taw.record_op(a, FunctionalGroup::BrowseView, t, t, true);
        taw.record_op(a, FunctionalGroup::BrowseView, t, t, true);
        taw.close_action(a);
    });
    let mut s = SecondSeries::new();
    let mut j = 0u64;
    h.bench("second_series_incr", || {
        j += 1;
        s.incr(SimTime::from_millis(j % 600_000), "good");
    });
}

fn main() {
    let mut h = Harness::new("framework");
    bench_simulated_second(&mut h);
    bench_request_path(&mut h);
    bench_taw_accounting(&mut h);
    h.finish();
}
