//! Kernel event-queue micro-benchmarks: the slot-arena kernel against the
//! seed kernel replica, on identical workloads.
//!
//! Run with `cargo bench -p bench --bench event_queue`. For the pinned
//! JSON numbers CI tracks, use `urb-bench kernel` instead — this target
//! is for interactive comparison while hacking on `simcore::event`.

use bench::harness::Harness;
use bench::kernel::{self, BenchWorld, ChainEvent, LegacyQueue};
use simcore::{EventQueue, SimTime};

fn main() {
    let mut h = Harness::new("event_queue");

    // Schedule+fire one event on a warm arena (slot pool already grown).
    let mut queue: EventQueue<BenchWorld, ChainEvent> = EventQueue::new();
    let mut world = BenchWorld::default();
    kernel::seed_arena(&mut queue);
    while world.fired < 50_000 {
        queue.step(&mut world);
    }
    h.bench("arena schedule+fire (warm)", || queue.step(&mut world));

    // The same step on the seed kernel replica: boxed closure per event.
    let mut lqueue: LegacyQueue<BenchWorld> = LegacyQueue::new();
    let mut lworld = BenchWorld::default();
    kernel::seed_legacy(&mut lqueue);
    while lworld.fired < 50_000 {
        lqueue.step(&mut lworld);
    }
    h.bench("legacy schedule+fire (boxed)", || lqueue.step(&mut lworld));

    // Schedule+cancel+drain churn: the full life of a never-fired event.
    // The trailing step pops the stale heap entry, so the queue stays
    // empty across iterations instead of accumulating tombstones.
    let mut cq: EventQueue<BenchWorld, ChainEvent> = EventQueue::new();
    let mut cw = BenchWorld::default();
    h.bench("arena schedule+cancel+drain", || {
        let id = cq.schedule_event_at(SimTime::from_secs(1), "decoy", ChainEvent::Decoy);
        cq.cancel(id);
        cq.step(&mut cw)
    });

    let mut lcq: LegacyQueue<BenchWorld> = LegacyQueue::new();
    let mut lcw = BenchWorld::default();
    h.bench("legacy schedule+cancel+drain", || {
        let id = lcq.schedule_at(SimTime::from_secs(1), "decoy", |_w: &mut BenchWorld, _q| {});
        lcq.cancel(id);
        lcq.step(&mut lcw)
    });

    h.finish();
}
