//! Throughput of the segregated state stores.
//!
//! State segregation only pays if the stores are fast: these benches
//! measure real insert/read/commit cycles on the transactional table
//! store and read/write cycles on FastS and SSM, including SSM's
//! marshalling and checksumming.

use bench::harness::Harness;
use statestore::db::TableDef;
use statestore::session::{SessionId, SessionObject, SessionStore};
use statestore::{Database, FastS, Ssm, Value};

fn bench_db(h: &mut Harness) {
    let mut db = Database::new(vec![TableDef {
        name: "items",
        columns: &["id", "name", "value"],
    }]);
    let conn = db.open_conn();
    let mut next = 1i64;
    h.bench("db_insert_commit", || {
        let txn = db.begin(conn).unwrap();
        db.insert(
            txn,
            "items",
            vec![Value::Int(next), Value::from("x"), Value::Int(0)],
        )
        .unwrap();
        db.commit(txn).unwrap();
        next += 1;
    });
    h.bench("db_read_committed", || {
        db.read_committed("items", 1).unwrap()
    });
    h.bench("db_update_rollback", || {
        let txn = db.begin(conn).unwrap();
        db.update(txn, "items", 1, &[(2, Value::Int(9))]).unwrap();
        db.rollback(txn).unwrap();
    });
    h.bench("db_scan_100", || {
        db.scan("items", |r| r[2].as_int() == Some(0), 100)
            .unwrap()
            .len()
    });
}

fn session_obj() -> SessionObject {
    let mut o = SessionObject::new();
    o.set("user_id", 42i64);
    o.set("bid_item", 7i64);
    o.set("bid_amount", 110.5f64);
    o
}

fn bench_fasts(h: &mut Harness) {
    let mut fasts = FastS::new();
    fasts.write(SessionId(1), session_obj()).unwrap();
    h.bench("fasts_write", || {
        fasts.write(SessionId(1), session_obj()).unwrap()
    });
    h.bench("fasts_read", || fasts.read(SessionId(1)).unwrap());
}

fn bench_ssm(h: &mut Harness) {
    let mut ssm = Ssm::new(3);
    ssm.write(SessionId(1), session_obj()).unwrap();
    h.bench("ssm_write_3_replicas", || {
        ssm.write(SessionId(1), session_obj()).unwrap()
    });
    h.bench("ssm_read_checksummed", || ssm.read(SessionId(1)).unwrap());
}

fn main() {
    let mut h = Harness::new("statestore");
    bench_db(&mut h);
    bench_fasts(&mut h);
    bench_ssm(&mut h);
    h.finish();
}
