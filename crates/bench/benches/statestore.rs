//! Throughput of the segregated state stores.
//!
//! State segregation only pays if the stores are fast: these benches
//! measure real insert/read/commit cycles on the transactional table
//! store and read/write cycles on FastS and SSM, including SSM's
//! marshalling and checksumming.

use criterion::{criterion_group, criterion_main, Criterion};
use statestore::db::TableDef;
use statestore::session::{SessionId, SessionObject, SessionStore};
use statestore::{Database, FastS, Ssm, Value};

fn bench_db(c: &mut Criterion) {
    let mut db = Database::new(vec![TableDef {
        name: "items",
        columns: &["id", "name", "value"],
    }]);
    let conn = db.open_conn();
    let mut next = 1i64;
    c.bench_function("db_insert_commit", |b| {
        b.iter(|| {
            let txn = db.begin(conn).unwrap();
            db.insert(
                txn,
                "items",
                vec![Value::Int(next), Value::from("x"), Value::Int(0)],
            )
            .unwrap();
            db.commit(txn).unwrap();
            next += 1;
        })
    });
    c.bench_function("db_read_committed", |b| {
        b.iter(|| db.read_committed("items", 1).unwrap())
    });
    c.bench_function("db_update_rollback", |b| {
        b.iter(|| {
            let txn = db.begin(conn).unwrap();
            db.update(txn, "items", 1, &[(2, Value::Int(9))]).unwrap();
            db.rollback(txn).unwrap();
        })
    });
    c.bench_function("db_scan_100", |b| {
        b.iter(|| {
            db.scan("items", |r| r[2].as_int() == Some(0), 100)
                .unwrap()
                .len()
        })
    });
}

fn session_obj() -> SessionObject {
    let mut o = SessionObject::new();
    o.set("user_id", 42i64);
    o.set("bid_item", 7i64);
    o.set("bid_amount", 110.5f64);
    o
}

fn bench_fasts(c: &mut Criterion) {
    let mut fasts = FastS::new();
    fasts.write(SessionId(1), session_obj()).unwrap();
    c.bench_function("fasts_write", |b| {
        b.iter(|| fasts.write(SessionId(1), session_obj()).unwrap())
    });
    c.bench_function("fasts_read", |b| {
        b.iter(|| fasts.read(SessionId(1)).unwrap())
    });
}

fn bench_ssm(c: &mut Criterion) {
    let mut ssm = Ssm::new(3);
    ssm.write(SessionId(1), session_obj()).unwrap();
    c.bench_function("ssm_write_3_replicas", |b| {
        b.iter(|| ssm.write(SessionId(1), session_obj()).unwrap())
    });
    c.bench_function("ssm_read_checksummed", |b| {
        b.iter(|| ssm.read(SessionId(1)).unwrap())
    });
}

criterion_group!(benches, bench_db, bench_fasts, bench_ssm);
criterion_main!(benches);
