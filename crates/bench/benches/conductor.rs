//! Conductor hot paths: group expansion, pairwise conflict detection and
//! the full submit/finish scheduling cycle over the real eBid roster.
//!
//! Conflict detection runs on every manager decision while recoveries are
//! in flight, so it must stay trivially cheap next to the ~400 ms
//! microreboots it schedules around.

use bench::harness::Harness;
use components::graph::DependencyGraph;
use components::CompName;
use recovery::conductor::{Conductor, ConductorConfig, Submission};
use recovery::RecoveryAction;
use simcore::SimTime;

fn conductor() -> Conductor {
    let graph = DependencyGraph::build(&ebid::components::descriptors()).unwrap();
    Conductor::new(
        1,
        ConductorConfig {
            max_concurrent_per_node: 4,
            quarantine: true,
        },
        &graph,
        ebid::ops::call_path,
    )
}

/// Session beans whose expanded groups and call paths collide in every
/// combination: disjoint pairs, path-sharing pairs and group-sharing
/// pairs (everything touching an `EntityGroup` member).
const PROBES: [&str; 6] = [
    "BrowseCategories",
    "BrowseRegions",
    "SearchItemsByCategory",
    "ViewItem",
    "Item",
    "WAR",
];

fn bench_expand(h: &mut Harness) {
    let c = conductor();
    let mut i = 0usize;
    h.bench("expand_recovery_group", || {
        i += 1;
        c.expand(&[CompName::intern(PROBES[i % PROBES.len()])])
            .len()
    });
}

fn bench_conflict(h: &mut Harness) {
    let c = conductor();
    let blasts: Vec<Vec<CompName>> = PROBES
        .iter()
        .map(|p| c.expand(&[CompName::intern(p)]))
        .collect();
    let mut i = 0usize;
    h.bench("conflict_between_all_pairs", || {
        i += 1;
        let mut conflicts = 0u32;
        for (k, a) in blasts.iter().enumerate() {
            for b in &blasts[k + 1..] {
                if c.conflict_between(a, b) {
                    conflicts += 1;
                }
            }
        }
        conflicts + i as u32
    });
}

fn bench_submit_cycle(h: &mut Harness) {
    let mut c = conductor();
    let now = SimTime::from_secs(1);
    let mut i = 0usize;
    h.bench("submit_and_drain_three_disjoint", || {
        i += 1;
        let mut running = Vec::new();
        for p in ["BrowseCategories", "BrowseRegions", "SearchItemsByCategory"] {
            match c.submit(0, RecoveryAction::microreboot(&[p]), now) {
                Submission::Started(cmd) => running.push(cmd.ticket),
                Submission::Queued(id) | Submission::Coalesced(id) => running.push(id),
            }
        }
        let mut acks = 0u32;
        while let Some(id) = running.pop() {
            let fin = c.on_finished(0, id, now);
            acks += fin.acks;
            running.extend(fin.start.into_iter().map(|cmd| cmd.ticket));
        }
        acks + i as u32
    });
}

fn main() {
    let mut h = Harness::new("conductor");
    bench_expand(&mut h);
    bench_conflict(&mut h);
    bench_submit_cycle(&mut h);
    h.finish();
}
