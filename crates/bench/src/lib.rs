//! Experiment harness for the microreboot reproduction.
//!
//! One binary per table/figure of the paper (see `src/bin/exp_*.rs`), each
//! printing the same rows/series the paper reports, side by side with the
//! paper's numbers where the paper gives them. Micro-benchmarks of the
//! framework primitives live in `benches/`, driven by the in-repo
//! [`harness::Harness`].
//!
//! Run a single experiment with e.g.
//! `cargo run --release -p bench --bin exp_table3`.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod harness;
pub mod kernel;
pub mod netstate;
pub mod report;

pub use report::Table;
