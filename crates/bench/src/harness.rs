//! A minimal wall-clock micro-benchmark harness.
//!
//! The container has no benchmarking framework, and the benches here only
//! need honest per-iteration timings, so this is a deliberately small
//! warmup + timed-batch loop over [`std::time::Instant`]. Use it from a
//! `harness = false` bench target:
//!
//! ```no_run
//! use bench::harness::Harness;
//!
//! let mut h = Harness::new("my-suite");
//! let mut i = 0u64;
//! h.bench("increment", || {
//!     i += 1;
//!     i
//! });
//! h.finish();
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time spent measuring each benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(300);
/// Wall-clock time spent warming up each benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(50);

/// Runs named closures repeatedly and prints per-iteration timings.
pub struct Harness {
    suite: String,
    results: Vec<(String, f64, u64)>,
}

impl Harness {
    /// Creates a harness for a named suite.
    pub fn new(suite: &str) -> Self {
        println!("suite: {suite}");
        Harness {
            suite: suite.to_string(),
            results: Vec::new(),
        }
    }

    /// Benchmarks `f`, printing mean ns/iter over a ~300 ms measured window
    /// after a short warmup. The closure's result is passed through
    /// [`black_box`] so the work cannot be optimized away.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        // Warmup: also sizes the batch so each timed batch is ~1 ms.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_TARGET {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = WARMUP_TARGET.as_nanos() as u64 / warm_iters.max(1);
        let batch = (1_000_000 / per_iter.max(1)).clamp(1, 1_000_000);

        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_TARGET {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
        }
        let total = start.elapsed();
        let ns = total.as_nanos() as f64 / iters as f64;
        println!("  {name:<40} {:>12} ns/iter   ({iters} iters)", fmt_ns(ns));
        self.results.push((name.to_string(), ns, iters));
    }

    /// Prints a closing line; call at the end of `main`.
    pub fn finish(self) {
        println!(
            "suite {} done: {} benchmarks",
            self.suite,
            self.results.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1_000_000_000.0 {
        format!("{:.3}e9", ns / 1_000_000_000.0)
    } else if ns >= 10_000.0 {
        format!("{:.0}", ns)
    } else {
        format!("{:.1}", ns)
    }
}
