//! The netstate campaign runner: state-plane and network faults against
//! a two-node failover cluster on the SSM backend, with the end-to-end
//! session-integrity ledger armed.
//!
//! Where the classic campaign asks "does recovery converge?", netstate
//! asks "did recovery *preserve the data*?". Every run wires one
//! [`IntegrityLedger`](statestore::IntegrityLedger) between the client
//! pool (commit intents) and the SSM (applied ids, expiries, removals),
//! injects one store-tier or link-tier fault from
//! [`campaign::netstate_fault`], lets the fault heal, and then checks:
//!
//! 1. **No committed write lost** — every session an end user saw commit
//!    is still probeable in the store, or disappeared through an
//!    accounted path (lease expiry, logout).
//! 2. **No write applied twice** — a duplicated wire delivery must be
//!    discarded by the store's applied-id check, never re-mutate state.
//! 3. **No stale lease served** — reads past a lease's expiry are a
//!    protocol violation, storm or not.
//! 4. **Store blame stays off the ladder** — store-tier evidence is
//!    tallied by the recovery manager but withheld from the policy, so a
//!    sick store never earns a healthy component a microreboot.
//! 5. **Goodput recovers** — every netstate fault heals, so the
//!    availability invariant applies unconditionally.
//!
//! Plus the structural invariants shared with the classic campaign and,
//! under `--strict`, bit-identical digest reproduction on re-run.

use std::cell::RefCell;
use std::rc::Rc;

use cluster::{Sim, SimConfig, StoreChoice};
use faults::campaign::Scenario;
use faults::{Fault, NetEdge};
use simcore::telemetry::{shared_bus, TraceHashSink};
use simcore::{MetricsRegistry, SimDuration, SimTime};
use statestore::{shared_ledger, SessionId};
use workload::{DetectorKind, RetryPolicy};

use crate::chaos::{self, CLIENTS, GRACE_S, STABLE_SAMPLES, TAIL_S};

/// The budgeted retry policy the campaign's retry arm runs under: a
/// small per-request budget with exponential backoff from 250 ms, capped
/// at 8 s. Amplification stays under 2x even when every attempt fails.
pub fn budgeted_policy() -> RetryPolicy {
    RetryPolicy::Budgeted {
        budget: 4,
        base: SimDuration::from_millis(250),
        cap: SimDuration::from_secs(8),
    }
}

/// What one netstate run produced.
pub struct NetstateOutcome {
    /// FNV trace digest over every telemetry event of the run.
    pub digest: u64,
    /// Invariant violations (empty on a clean run).
    pub violations: Vec<String>,
    /// Degraded-goodput wall time after injection, in milliseconds.
    pub downtime_ms: u64,
    /// Commit intents the ledger recorded (client-visible commits over
    /// sessions with at least one applied write).
    pub commit_intents: u64,
    /// Duplicate wire deliveries the store discarded (the dupe defense
    /// firing, not failing).
    pub dupes_discarded: u64,
    /// Store-tier failure reports the recovery manager withheld from the
    /// policy instead of blaming a component.
    pub store_evidence: u64,
    /// Client retries issued under the run's retry policy.
    pub retries_issued: u64,
    /// Client operations that failed outright.
    pub failed_requests: u64,
    /// Client operations that reached a terminal outcome (ok or failed).
    /// Retried attempts are not terminal, so attempt amplification is
    /// `(total_ops + retries_issued) / total_ops`.
    pub total_ops: u64,
    /// Reboots the ladder started (any level).
    pub reboots_begun: u64,
}

/// Whether `f` lands purely on the store tier: the cluster's nodes stay
/// healthy, so any reboot the ladder starts is misdirected recovery.
fn store_tier(f: &Fault) -> bool {
    matches!(
        f,
        Fault::BrickCrash { .. }
            | Fault::BrickCorrupt { .. }
            | Fault::LeaseStorm
            | Fault::StoreSlow { .. }
    )
}

/// Executes one netstate scenario and checks every integrity invariant.
pub fn run_netstate_scenario(s: &Scenario) -> NetstateOutcome {
    let policy = if s.budgeted_retry {
        budgeted_policy()
    } else {
        RetryPolicy::None
    };
    run_netstate_with_policy(s, policy)
}

/// [`run_netstate_scenario`] with an explicit retry policy — the
/// retry-storm regression runs the same scenario under naive and
/// budgeted clients to compare amplification.
pub fn run_netstate_with_policy(s: &Scenario, retry_policy: RetryPolicy) -> NetstateOutcome {
    let mut sim = Sim::new(SimConfig {
        nodes: 2,
        clients_per_node: CLIENTS,
        store: StoreChoice::Ssm,
        detector: if s.comparison_detector {
            DetectorKind::Comparison
        } else {
            DetectorKind::Simple
        },
        rm: Some(chaos::hardened_rm(false)),
        policy: recovery::PolicyChoice::Ladder,
        failover: true,
        retry_policy,
        seed: s.sim_seed,
        ..SimConfig::default()
    });

    // One ledger, observed from both ends of the write path.
    let ledger = shared_ledger();
    {
        let w = sim.world_mut();
        w.pool.attach_ledger(ledger.clone());
        if let Some(ssm) = &w.ssm {
            ssm.borrow_mut().attach_ledger(ledger.clone());
        }
    }

    let bus = shared_bus();
    let hash = Rc::new(RefCell::new(TraceHashSink::new()));
    let metrics = Rc::new(RefCell::new(MetricsRegistry::new()));
    bus.borrow_mut().add_sink(Box::new(hash.clone()));
    bus.borrow_mut().add_sink(Box::new(metrics.clone()));
    sim.attach_telemetry(bus);

    sim.schedule_fault(SimTime::from_secs(s.inject_at_s), 0, s.fault);

    let horizon_s = s.inject_at_s + TAIL_S;
    sim.run_until(SimTime::from_secs(horizon_s));
    let mut end_s = horizon_s;
    let mut stable = if chaos::quiesced(&sim) { 1 } else { 0 };
    while stable < STABLE_SAMPLES && end_s < horizon_s + GRACE_S {
        end_s += 5;
        sim.run_until(SimTime::from_secs(end_s));
        stable = if chaos::quiesced(&sim) { stable + 1 } else { 0 };
    }

    let mut violations = chaos::structural_violations(&sim);
    let (failed_requests, total_ops, reboots_begun) = {
        let m = metrics.borrow();
        let (begun, finished) = (m.counter("reboots_begun"), m.counter("reboots_finished"));
        if begun != finished {
            violations.push(format!("{begun} reboot(s) begun but {finished} finished"));
        }
        (
            m.counter("client_ops_failed"),
            m.counter("client_ops"),
            begun,
        )
    };

    let store_evidence = sim
        .world()
        .rm
        .as_ref()
        .map_or(0, recovery::RecoveryManager::store_evidence);
    let retries_issued = sim.world().pool.retries_issued();
    let world = sim.finish();

    // Session-integrity invariants, checked ledger-against-store.
    let led = ledger.borrow();
    if let Some(ssm) = &world.ssm {
        let store = ssm.borrow();
        let mut lost = 0u64;
        for sid in led.committed_sessions() {
            if !store.probe(SessionId(sid)) && !led.accounted_gone(sid) {
                lost += 1;
            }
        }
        if lost > 0 {
            violations.push(format!(
                "{lost} committed session(s) vanished from the store unaccounted"
            ));
        }
    } else {
        violations.push("netstate run without an SSM backend".into());
    }
    if led.double_applied() > 0 {
        violations.push(format!(
            "{} write(s) applied twice despite the applied-id check",
            led.double_applied()
        ));
    }
    if led.stale_serves() > 0 {
        violations.push(format!(
            "{} read(s) served state past its lease expiry",
            led.stale_serves()
        ));
    }
    if matches!(
        s.fault,
        Fault::LinkDupe {
            edge: NetEdge::NodeStore,
            ..
        }
    ) && led.dupes_discarded() == 0
    {
        violations.push("node-store dupe fault ran but the dupe defense never fired".into());
    }
    if store_tier(&s.fault) && reboots_begun > 0 {
        violations.push(format!(
            "store-tier fault drew {reboots_begun} reboot(s) onto healthy components"
        ));
    }

    // Availability: every netstate fault heals, so goodput must recover.
    let taw = world.pool.taw_ref();
    let pre_rate = if s.inject_at_s > 3 {
        taw.good_in(3, s.inject_at_s) / (s.inject_at_s - 3) as f64
    } else {
        0.0
    };
    let degraded_below = (0.5 * pre_rate).max(1.0);
    let mut downtime_ms = 0u64;
    for t in s.inject_at_s..end_s {
        if taw.good_in(t, t + 1) < degraded_below {
            downtime_ms += 1000;
        }
    }
    if s.inject_at_s > 4 && violations.is_empty() {
        let post_rate = taw.good_in(end_s - 30, end_s) / 30.0;
        if pre_rate > 0.0 && post_rate < 0.5 * pre_rate {
            violations.push(format!(
                "goodput never recovered: {post_rate:.1} op/s at end vs {pre_rate:.1} op/s pre-fault"
            ));
        }
    }

    let digest = hash.borrow().value();
    NetstateOutcome {
        digest,
        violations,
        downtime_ms,
        commit_intents: led.total_intents(),
        dupes_discarded: led.dupes_discarded(),
        store_evidence,
        retries_issued,
        failed_requests,
        total_ops,
        reboots_begun,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::campaign::{netstate_scenarios, CampaignConfig};

    fn scenario_matching(pred: impl Fn(&Scenario) -> bool) -> Scenario {
        netstate_scenarios(&CampaignConfig { seed: 7, runs: 64 })
            .into_iter()
            .find(|s| pred(s))
            .expect("64 seeded draws cover every scenario shape")
    }

    #[test]
    fn a_store_tier_run_holds_every_integrity_invariant() {
        let s = scenario_matching(|s| matches!(s.fault, Fault::BrickCrash { .. }));
        let out = run_netstate_scenario(&s);
        assert_eq!(out.violations, Vec::<String>::new());
        assert!(out.commit_intents > 0, "clients committed work");
    }

    #[test]
    fn a_node_store_dupe_run_exercises_the_dupe_defense() {
        let s = scenario_matching(|s| {
            matches!(
                s.fault,
                Fault::LinkDupe {
                    edge: NetEdge::NodeStore,
                    ..
                }
            )
        });
        let out = run_netstate_scenario(&s);
        assert_eq!(out.violations, Vec::<String>::new());
        assert!(out.dupes_discarded > 0, "dupe defense fired");
    }

    #[test]
    fn netstate_runs_reproduce_their_digest() {
        let s = scenario_matching(|s| matches!(s.fault, Fault::LinkPartition { .. }));
        let a = run_netstate_scenario(&s);
        let b = run_netstate_scenario(&s);
        assert_eq!(a.digest, b.digest);
    }

    /// The retry-storm regression. Link faults fail *slowly* (the client
    /// timeout paces every attempt), so the storm case needs a fault
    /// that fails *fast*: a component throwing on every call returns an
    /// HTTP error in milliseconds, and a naive immediate-retry client
    /// hammers it until recovery lands. On that same scenario the
    /// budgeted client must stay under 2x attempt amplification while
    /// the naive client storms well past it.
    #[test]
    fn budgeted_retries_do_not_storm_while_naive_ones_do() {
        let s = Scenario {
            run: 0,
            sim_seed: 0x0057_0611,
            fault: Fault::TransientException {
                component: "BrowseCategories",
                calls: u32::MAX,
            },
            inject_at_s: 10,
            second: None,
            flap: None,
            comparison_detector: false,
            parallel_rm: false,
            rm_crash: None,
            budgeted_retry: false,
        };
        let budgeted = run_netstate_with_policy(&s, budgeted_policy());
        // "Retry hard until it works": no backoff, a budget so deep the
        // client hammers the sick component for its whole failure burst.
        let naive = run_netstate_with_policy(&s, RetryPolicy::NaiveImmediate { retries: 100 });
        assert!(
            budgeted.retries_issued > 0,
            "the throwing component forced retries"
        );
        // Attempt amplification = (terminal ops + retries) / terminal ops.
        let b_amp = (budgeted.total_ops + budgeted.retries_issued) as f64
            / budgeted.total_ops.max(1) as f64;
        assert!(
            b_amp < 2.0,
            "budgeted amplification {b_amp:.2}x over {} ops",
            budgeted.total_ops
        );
        assert!(
            naive.retries_issued > 10 * budgeted.retries_issued,
            "naive clients should storm: {} retries vs budgeted {}",
            naive.retries_issued,
            budgeted.retries_issued
        );
    }
}
