//! Plain-text table formatting for experiment reports, plus a
//! [`TelemetrySummary`] sink — a thin view over a
//! [`simcore::metrics::MetricsRegistry`] — that folds the cross-crate
//! telemetry stream into per-kind counters for the experiment printouts,
//! and a [`JsonReport`] writer that emits machine-readable
//! `BENCH_<exp>.json` files next to the text tables.

use simcore::telemetry::{RebootLevel, TelemetryEvent, TelemetrySink};
use simcore::{symbol, MetricsRegistry};

/// Reboot depths in the order the report tables print them.
const REBOOT_LEVELS: [RebootLevel; 4] = [
    RebootLevel::Component,
    RebootLevel::Application,
    RebootLevel::Process,
    RebootLevel::OperatingSystem,
];

/// A simple aligned-column table printer.
///
/// # Examples
///
/// ```
/// use bench::Table;
///
/// let mut t = Table::new(&["component", "paper (ms)", "measured (ms)"]);
/// t.row(&["ViewItem", "446", "449.2"]);
/// let out = t.render();
/// assert!(out.contains("ViewItem"));
/// ```
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch — a bug in the experiment code.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Folds the telemetry stream into per-kind counters.
///
/// Attach one (behind `Rc<RefCell<..>>`) to a [`simcore::telemetry::TelemetryBus`]
/// to get an experiment-wide view of what every layer emitted — requests,
/// kills, reboots by level, detector fires and recovery decisions — without
/// reaching into any component's private stats. Since the registry refactor
/// this is a *view* over the canonical [`MetricsRegistry`] fold: the sink
/// delegates to the registry and the accessors are named-counter reads.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySummary {
    registry: MetricsRegistry,
}

impl TelemetrySummary {
    /// The backing registry (histograms, gauges and series included).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Requests submitted across all nodes.
    pub fn submitted(&self) -> u64 {
        self.registry.counter_sym(symbol::REQUESTS_SUBMITTED)
    }

    /// Requests completed (any disposition).
    pub fn completed(&self) -> u64 {
        self.registry.counter_sym(symbol::REQUESTS_COMPLETED)
    }

    /// Transparent retries sent (Retry-After).
    pub fn retries(&self) -> u64 {
        self.registry.counter_sym(symbol::RETRIES_SENT)
    }

    /// Requests killed by any reboot or TTL purge.
    pub fn killed(&self) -> u64 {
        self.registry.counter_sym(symbol::REQUESTS_KILLED)
    }

    /// Reboots begun, indexed by [`simcore::telemetry::RebootLevel`] depth
    /// (component, application, process, OS).
    pub fn reboots_begun(&self) -> [u64; 4] {
        REBOOT_LEVELS.map(|l| {
            self.registry
                .counter_sym(simcore::metrics::reboot_begun_sym(l))
        })
    }

    /// Reboots finished, same indexing.
    pub fn reboots_finished(&self) -> [u64; 4] {
        REBOOT_LEVELS.map(|l| {
            self.registry
                .counter_sym(simcore::metrics::reboot_finished_sym(l))
        })
    }

    /// End-to-end failure reports that reached the recovery manager.
    pub fn detector_fires(&self) -> u64 {
        self.registry.counter_sym(symbol::DETECTOR_FIRES)
    }

    /// Recovery decisions taken by the manager.
    pub fn decisions(&self) -> u64 {
        self.registry.counter_sym(symbol::RECOVERY_DECISIONS)
    }

    /// Total reboots begun at any level.
    pub fn total_reboots(&self) -> u64 {
        self.registry.counter_sym(symbol::REBOOTS_BEGUN)
    }

    /// Appends the summary's rows to a two-column table.
    pub fn rows(&self, table: &mut Table) {
        let reg = &self.registry;
        let count = |name: &str| reg.counter(name).to_string();
        table.row_owned(vec![
            "requests submitted".into(),
            count("requests_submitted"),
        ]);
        table.row_owned(vec![
            "requests completed".into(),
            count("requests_completed"),
        ]);
        table.row_owned(vec!["retries sent".into(), count("retries_sent")]);
        table.row_owned(vec!["requests killed".into(), count("requests_killed")]);
        let begun = self.reboots_begun();
        let finished = self.reboots_finished();
        for (i, label) in [
            "microreboots",
            "app restarts",
            "process restarts",
            "OS reboots",
        ]
        .iter()
        .enumerate()
        {
            table.row_owned(vec![
                (*label).into(),
                format!("{} begun / {} finished", begun[i], finished[i]),
            ]);
        }
        table.row_owned(vec!["detector reports".into(), count("detector_fires")]);
        table.row_owned(vec![
            "recovery decisions".into(),
            count("recovery_decisions"),
        ]);
        table.row_owned(vec![
            "rejuvenation ticks".into(),
            count("rejuvenation_ticks"),
        ]);
        table.row_owned(vec!["client ops".into(), count("client_ops")]);
        table.row_owned(vec!["actions closed".into(), count("actions_closed")]);
        table.row_owned(vec!["recoveries queued".into(), count("recoveries_queued")]);
        table.row_owned(vec![
            "recoveries coalesced".into(),
            count("recoveries_coalesced"),
        ]);
        table.row_owned(vec!["quarantines".into(), count("quarantine_on")]);
        table.row_owned(vec!["LB failovers".into(), count("lb_failovers")]);
        table.row_owned(vec!["TTL sweeps".into(), count("ttl_sweeps")]);
    }

    /// Prints the summary as a titled table.
    pub fn print(&self, title: &str) {
        println!("\n{title}");
        let mut t = Table::new(&["telemetry", "count"]);
        self.rows(&mut t);
        t.print();
    }
}

impl TelemetrySink for TelemetrySummary {
    fn on_event(&mut self, event: &TelemetryEvent) {
        self.registry.on_event(event);
    }
}

/// A machine-readable experiment report: flat key → value JSON written to
/// `target/BENCH_<exp>.json` next to the text tables, so the perf
/// trajectory accumulates across runs. Values are numbers or strings; the
/// trace digest slots in as a hex string (`"digest": "a1b2..."`).
///
/// # Examples
///
/// ```no_run
/// use bench::report::JsonReport;
///
/// let mut r = JsonReport::new("fig1");
/// r.metric("failed_requests", 233);
/// r.metric_f64("downtime_ms", 812.5);
/// r.digest(0xdead_beef);
/// r.write().unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct JsonReport {
    exp: String,
    entries: Vec<(String, String)>,
}

impl JsonReport {
    /// Starts a report for experiment `exp` (the `BENCH_<exp>.json` stem).
    pub fn new(exp: &str) -> Self {
        JsonReport {
            exp: exp.to_string(),
            entries: Vec::new(),
        }
    }

    /// Records an integer metric.
    pub fn metric(&mut self, key: &str, value: u64) {
        self.entries.push((key.to_string(), value.to_string()));
    }

    /// Records a float metric.
    pub fn metric_f64(&mut self, key: &str, value: f64) {
        self.entries.push((key.to_string(), format!("{value:.3}")));
    }

    /// Records a string value (JSON-escaped minimally: quotes/backslashes).
    pub fn text(&mut self, key: &str, value: &str) {
        let escaped = value.replace('\\', "\\\\").replace('"', "\\\"");
        self.entries
            .push((key.to_string(), format!("\"{escaped}\"")));
    }

    /// Records the run's FNV trace digest as hex.
    pub fn digest(&mut self, digest: u64) {
        self.entries
            .push(("digest".to_string(), format!("\"{digest:016x}\"")));
    }

    /// Copies every counter of a [`TelemetrySummary`]'s registry under a
    /// `telemetry.` prefix.
    pub fn telemetry(&mut self, summary: &TelemetrySummary) {
        for (name, value) in summary.registry().counters() {
            self.entries
                .push((format!("telemetry.{name}"), value.to_string()));
        }
    }

    /// Renders the report as a JSON object.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"experiment\": \"{}\"", self.exp));
        for (k, v) in &self.entries {
            out.push_str(&format!(",\n  \"{k}\": {v}"));
        }
        out.push_str("\n}\n");
        out
    }

    /// Writes `target/BENCH_<exp>.json`; returns the path written.
    pub fn write(&self) -> std::io::Result<String> {
        let path = format!("target/BENCH_{}.json", self.exp);
        std::fs::create_dir_all("target")?;
        std::fs::write(&path, self.render())?;
        Ok(path)
    }
}

/// Prints an experiment banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===\n");
}

/// Formats a ratio as "Nx".
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "inf".to_string()
    } else {
        format!("{:.1}x", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxxxx", "1"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     "));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(10.0, 2.0), "5.0x");
        assert_eq!(ratio(1.0, 0.0), "inf");
    }
}
