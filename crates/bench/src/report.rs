//! Plain-text table formatting for experiment reports.

/// A simple aligned-column table printer.
///
/// # Examples
///
/// ```
/// use bench::Table;
///
/// let mut t = Table::new(&["component", "paper (ms)", "measured (ms)"]);
/// t.row(&["ViewItem", "446", "449.2"]);
/// let out = t.render();
/// assert!(out.contains("ViewItem"));
/// ```
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch — a bug in the experiment code.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints an experiment banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===\n");
}

/// Formats a ratio as "Nx".
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "inf".to_string()
    } else {
        format!("{:.1}x", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxxxx", "1"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     "));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(10.0, 2.0), "5.0x");
        assert_eq!(ratio(1.0, 0.0), "inf");
    }
}
