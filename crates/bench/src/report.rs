//! Plain-text table formatting for experiment reports, plus a
//! [`TelemetrySummary`] sink that folds the cross-crate telemetry stream
//! into per-kind counters for the experiment printouts.

use simcore::telemetry::{RebootLevel, TelemetryEvent, TelemetrySink};

/// A simple aligned-column table printer.
///
/// # Examples
///
/// ```
/// use bench::Table;
///
/// let mut t = Table::new(&["component", "paper (ms)", "measured (ms)"]);
/// t.row(&["ViewItem", "446", "449.2"]);
/// let out = t.render();
/// assert!(out.contains("ViewItem"));
/// ```
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch — a bug in the experiment code.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Folds the telemetry stream into per-kind counters.
///
/// Attach one (behind `Rc<RefCell<..>>`) to a [`simcore::telemetry::TelemetryBus`]
/// to get an experiment-wide view of what every layer emitted — requests,
/// kills, reboots by level, detector fires and recovery decisions — without
/// reaching into any component's private stats.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySummary {
    /// Requests submitted across all nodes.
    pub submitted: u64,
    /// Requests completed (any disposition).
    pub completed: u64,
    /// Transparent retries sent (Retry-After).
    pub retries: u64,
    /// Requests killed by any reboot or TTL purge.
    pub killed: u64,
    /// Reboots begun, indexed by [`RebootLevel`] depth
    /// (component, application, process, OS).
    pub reboots_begun: [u64; 4],
    /// Reboots finished, same indexing.
    pub reboots_finished: [u64; 4],
    /// End-to-end failure reports that reached the recovery manager.
    pub detector_fires: u64,
    /// Recovery decisions taken by the manager.
    pub decisions: u64,
    /// Rejuvenation service polls observed.
    pub rejuvenation_ticks: u64,
    /// Client operations recorded (Taw stream).
    pub client_ops: u64,
    /// User actions closed (Taw stream).
    pub actions_closed: u64,
    /// Recovery actions the conductor deferred behind a conflict.
    pub recoveries_queued: u64,
    /// Recovery actions the conductor merged into an existing ticket.
    pub recoveries_coalesced: u64,
    /// Quarantine activations (blast-radius changes count again).
    pub quarantines: u64,
}

fn level_index(level: RebootLevel) -> usize {
    match level {
        RebootLevel::Component => 0,
        RebootLevel::Application => 1,
        RebootLevel::Process => 2,
        RebootLevel::OperatingSystem => 3,
    }
}

impl TelemetrySummary {
    /// Total reboots begun at any level.
    pub fn total_reboots(&self) -> u64 {
        self.reboots_begun.iter().sum()
    }

    /// Appends the summary's rows to a two-column table.
    pub fn rows(&self, table: &mut Table) {
        table.row_owned(vec![
            "requests submitted".into(),
            self.submitted.to_string(),
        ]);
        table.row_owned(vec![
            "requests completed".into(),
            self.completed.to_string(),
        ]);
        table.row_owned(vec!["retries sent".into(), self.retries.to_string()]);
        table.row_owned(vec!["requests killed".into(), self.killed.to_string()]);
        for (i, label) in [
            "microreboots",
            "app restarts",
            "process restarts",
            "OS reboots",
        ]
        .iter()
        .enumerate()
        {
            table.row_owned(vec![
                (*label).into(),
                format!(
                    "{} begun / {} finished",
                    self.reboots_begun[i], self.reboots_finished[i]
                ),
            ]);
        }
        table.row_owned(vec![
            "detector reports".into(),
            self.detector_fires.to_string(),
        ]);
        table.row_owned(vec![
            "recovery decisions".into(),
            self.decisions.to_string(),
        ]);
        table.row_owned(vec![
            "rejuvenation ticks".into(),
            self.rejuvenation_ticks.to_string(),
        ]);
        table.row_owned(vec!["client ops".into(), self.client_ops.to_string()]);
        table.row_owned(vec![
            "actions closed".into(),
            self.actions_closed.to_string(),
        ]);
        table.row_owned(vec![
            "recoveries queued".into(),
            self.recoveries_queued.to_string(),
        ]);
        table.row_owned(vec![
            "recoveries coalesced".into(),
            self.recoveries_coalesced.to_string(),
        ]);
        table.row_owned(vec!["quarantines".into(), self.quarantines.to_string()]);
    }

    /// Prints the summary as a titled table.
    pub fn print(&self, title: &str) {
        println!("\n{title}");
        let mut t = Table::new(&["telemetry", "count"]);
        self.rows(&mut t);
        t.print();
    }
}

impl TelemetrySink for TelemetrySummary {
    fn on_event(&mut self, event: &TelemetryEvent) {
        match *event {
            TelemetryEvent::RequestSubmitted { .. } => self.submitted += 1,
            TelemetryEvent::RequestCompleted { .. } => self.completed += 1,
            TelemetryEvent::RetrySent { .. } => self.retries += 1,
            TelemetryEvent::RequestKilled { .. } => self.killed += 1,
            TelemetryEvent::RebootBegun { level, .. } => {
                self.reboots_begun[level_index(level)] += 1;
            }
            TelemetryEvent::RebootFinished { level, .. } => {
                self.reboots_finished[level_index(level)] += 1;
            }
            TelemetryEvent::DetectorFired { .. } => self.detector_fires += 1,
            TelemetryEvent::RecoveryDecision { .. } => self.decisions += 1,
            TelemetryEvent::RejuvenationTick { .. } => self.rejuvenation_ticks += 1,
            TelemetryEvent::ClientOp { .. } => self.client_ops += 1,
            TelemetryEvent::ActionClosed { .. } => self.actions_closed += 1,
            TelemetryEvent::RecoveryQueued { .. } => self.recoveries_queued += 1,
            TelemetryEvent::RecoveryCoalesced { .. } => self.recoveries_coalesced += 1,
            TelemetryEvent::QuarantineOn { .. } => self.quarantines += 1,
            TelemetryEvent::QuarantineOff { .. } => {}
        }
    }
}

/// Prints an experiment banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===\n");
}

/// Formats a ratio as "Nx".
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "inf".to_string()
    } else {
        format!("{:.1}x", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxxxx", "1"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     "));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(10.0, 2.0), "5.0x");
        assert_eq!(ratio(1.0, 0.0), "inf");
    }
}
