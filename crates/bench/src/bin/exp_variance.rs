//! Seed-sweep variance of the headline result.
//!
//! The paper reports averages over repeated trials; this reproduction is
//! deterministic per seed, so variance lives across seeds instead. This
//! experiment reruns Figure 1's second fault (the corrupted JNDI entry,
//! recovered automatically) across ten seeds for both recovery modes and
//! reports mean ± standard deviation of the failed-request counts — the
//! error bars for the headline "order of magnitude" claim.

use bench::report::{banner, ratio};
use bench::Table;
use cluster::{Sim, SimConfig};
use faults::Fault;
use recovery::{PolicyLevel, RmConfig};
use simcore::stats::Summary;
use simcore::SimTime;
use statestore::session::CorruptKind;

fn run(start_level: PolicyLevel, seed: u64) -> u64 {
    let mut sim = Sim::new(SimConfig {
        rm: Some(RmConfig {
            start_level,
            ..RmConfig::default()
        }),
        seed,
        ..SimConfig::default()
    });
    sim.schedule_fault(
        SimTime::from_mins(3),
        0,
        Fault::CorruptJndi {
            component: "RegisterNewUser",
            kind: CorruptKind::SetNull,
        },
    );
    sim.run_until(SimTime::from_mins(7));
    sim.finish().pool.taw_ref().summary().bad_ops
}

fn main() {
    banner("Variance: one fault, one automatic recovery, ten seeds");
    let seeds: Vec<u64> = (1..=10).map(|i| 0x5eed_0000 + i * 7919).collect();
    let mut restart = Summary::new();
    let mut urb = Summary::new();
    let mut t = Table::new(&["seed", "restart failed", "uRB failed"]);
    for seed in &seeds {
        let r = run(PolicyLevel::Process, *seed);
        let u = run(PolicyLevel::Ejb, *seed);
        restart.record(r as f64);
        urb.record(u as f64);
        t.row_owned(vec![format!("{seed:#x}"), format!("{r}"), format!("{u}")]);
    }
    t.print();
    println!(
        "\nprocess restart: {:.0} ± {:.0} failed requests (min {:.0}, max {:.0})",
        restart.mean(),
        restart.stddev(),
        restart.min(),
        restart.max()
    );
    println!(
        "microreboot:     {:.0} ± {:.0} failed requests (min {:.0}, max {:.0})",
        urb.mean(),
        urb.stddev(),
        urb.min(),
        urb.max()
    );
    println!(
        "\nthe gap ({}) dwarfs the seed-to-seed spread: the order-of-magnitude",
        ratio(restart.mean(), urb.mean().max(1.0))
    );
    println!("claim is robust to workload randomness, as the paper's 10-trial");
    println!("averages found on real hardware.");
}
