//! Figure 2 — functional disruption as perceived by end users.
//!
//! Zooms in on one recovery event (the corrupted JNDI entry of
//! `RegisterNewUser`, injected at t=1200 s as in Figure 1) and reports,
//! per functional group and per second, whether some request whose
//! processing spanned that second eventually failed — the paper's
//! "client-perceived availability" bars. With a process restart every
//! group gaps for ~20+ seconds; with a microreboot only the User Account
//! group (which contains RegisterNewUser) shows a brief gap.

use bench::report::banner;
use cluster::{Sim, SimConfig};
use faults::Fault;
use recovery::{PolicyLevel, RmConfig};
use simcore::SimTime;
use statestore::session::CorruptKind;
use workload::catalog::FunctionalGroup;

fn run(start_level: PolicyLevel) -> Vec<String> {
    let mut sim = Sim::new(SimConfig {
        rm: Some(RmConfig {
            start_level,
            ..RmConfig::default()
        }),
        ..SimConfig::default()
    });
    sim.schedule_fault(
        SimTime::from_secs(1200),
        0,
        Fault::CorruptJndi {
            component: "RegisterNewUser",
            kind: CorruptKind::SetNull,
        },
    );
    sim.run_until(SimTime::from_secs(1260));
    let world = sim.finish();
    let taw = world.pool.taw_ref();
    let mut lines = Vec::new();
    for group in FunctionalGroup::ALL {
        let mut bar = String::new();
        for s in 1195..=1235 {
            let t1 = SimTime::from_secs(s);
            let t2 = SimTime::from_secs(s + 1);
            bar.push(if taw.group_unavailable_during(group, t1, t2) {
                ' '
            } else {
                '#'
            });
        }
        lines.push(format!("{:>12}  |{bar}|", group.label()));
    }
    lines
}

fn main() {
    banner("Figure 2: functional disruption during one recovery event");
    println!("('#' = no user perceived the group as unavailable in that second;");
    println!(" ' ' = some request overlapping that second eventually failed)");
    println!("\ntimeline: seconds 1195..1235; fault injected at t=1200\n");

    println!("PROCESS RESTART");
    for line in run(PolicyLevel::Process) {
        println!("{line}");
    }
    println!("\nMICROREBOOT");
    for line in run(PolicyLevel::Ejb) {
        println!("{line}");
    }
    println!("\npaper: during a microreboot all operations in other functional groups");
    println!("succeed; a process restart blanks every group for the full ~20 s outage");
    println!("plus the session-loss tail.");
}
