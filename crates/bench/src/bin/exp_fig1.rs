//! Figure 1 — action-weighted throughput: JVM restart vs microreboot.
//!
//! Reproduces the paper's headline experiment: a 40-minute run with 500
//! clients on one node (FastS), injecting three different faults at
//! t = 10, 20 and 30 minutes:
//!
//! * t=10: corrupt the transaction method map of the `EntityGroup`
//!   (the recovery group that takes the longest to recover),
//! * t=20: corrupt the JNDI entry of `RegisterNewUser` (next slowest),
//! * t=30: a transient exception in `BrowseCategories` (the most
//!   frequently called EJB in the workload).
//!
//! Recovery is automatic via the recovery manager; the baseline run
//! starts the recursive policy at the JVM-restart rung, the microreboot
//! run at the EJB rung. Paper result: 11,752 failed requests (3,101
//! actions) with process restarts vs 233 (34) with microreboots — i.e.,
//! ~3,917 failed requests per restart vs ~78 per microreboot, a 98%
//! reduction.

use std::cell::RefCell;
use std::rc::Rc;

use bench::report::{banner, ratio, TelemetrySummary};
use bench::Table;
use cluster::{Sim, SimConfig};
use faults::Fault;
use recovery::{PolicyLevel, RmConfig};
use simcore::telemetry::shared_bus;
use simcore::SimTime;
use statestore::session::CorruptKind;
use workload::TawSummary;

/// Runs the 40-minute scenario; returns (summary, per-10s bad series,
/// recovery count, telemetry fold).
fn run(start_level: PolicyLevel) -> (TawSummary, Vec<(u64, f64, f64)>, usize, TelemetrySummary) {
    let mut sim = Sim::new(SimConfig {
        rm: Some(RmConfig {
            start_level,
            ..RmConfig::default()
        }),
        ..SimConfig::default()
    });
    let bus = shared_bus();
    let telemetry = Rc::new(RefCell::new(TelemetrySummary::default()));
    bus.borrow_mut().add_sink(Box::new(telemetry.clone()));
    sim.attach_telemetry(bus);
    sim.schedule_fault(
        SimTime::from_mins(10),
        0,
        Fault::CorruptTxnMap {
            component: "Item",
            kind: CorruptKind::SetNull,
        },
    );
    sim.schedule_fault(
        SimTime::from_mins(20),
        0,
        Fault::CorruptJndi {
            component: "RegisterNewUser",
            kind: CorruptKind::SetNull,
        },
    );
    sim.schedule_fault(
        SimTime::from_mins(30),
        0,
        Fault::TransientException {
            component: "BrowseCategories",
            calls: u32::MAX,
        },
    );
    sim.run_until(SimTime::from_mins(40));
    let world = sim.finish();
    let taw = world.pool.taw_ref();
    let mut series = Vec::new();
    for bucket in 0..(40 * 6) {
        let from = bucket * 10;
        let to = from + 9;
        series.push((from, taw.good_in(from, to), taw.bad_in(from, to)));
    }
    let recoveries = world
        .log
        .iter()
        .filter(|e| matches!(e, cluster::LogEvent::RecoveryFinished { .. }))
        .count();
    let summary = taw.summary();
    let fold = telemetry.borrow().clone();
    (summary, series, recoveries, fold)
}

fn main() {
    banner("Figure 1: Taw comparison — JVM process restart vs EJB microreboot");
    println!("(three faults at t=10/20/30 min; 500 clients, 1 node, FastS)\n");

    let (restart, restart_series, restart_events, restart_telemetry) = run(PolicyLevel::Process);
    let (urb, urb_series, urb_events, urb_telemetry) = run(PolicyLevel::Ejb);

    // Full per-10s series as JSON, for plotting. Hand-rolled writer: the
    // rows are flat numbers, so a serializer dependency isn't warranted.
    let mut json = String::from("[\n");
    for (i, ((t, rg, rb), (_, ug, ub))) in restart_series.iter().zip(&urb_series).enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "  {{ \"t\": {t}, \"restart_good\": {rg}, \"restart_bad\": {rb}, \
             \"urb_good\": {ug}, \"urb_bad\": {ub} }}"
        ));
    }
    json.push_str("\n]\n");
    let path = "target/fig1_series.json";
    if std::fs::write(path, json).is_ok() {
        println!("(full per-10s Taw series written to {path})\n");
    }

    let mut t = Table::new(&["metric", "process restart", "microreboot", "paper"]);
    t.row_owned(vec![
        "failed requests (total)".into(),
        format!("{}", restart.bad_ops),
        format!("{}", urb.bad_ops),
        "11,752 vs 233".into(),
    ]);
    t.row_owned(vec![
        "failed actions (total)".into(),
        format!("{}", restart.bad_actions),
        format!("{}", urb.bad_actions),
        "3,101 vs 34".into(),
    ]);
    t.row_owned(vec![
        "recovery events".into(),
        format!("{restart_events}"),
        format!("{urb_events}"),
        "3 vs 3".into(),
    ]);
    t.row_owned(vec![
        "failed requests / recovery".into(),
        format!(
            "{:.0}",
            restart.bad_ops as f64 / restart_events.max(1) as f64
        ),
        format!("{:.0}", urb.bad_ops as f64 / urb_events.max(1) as f64),
        "3,917 vs 78".into(),
    ]);
    t.row_owned(vec![
        "good requests (total)".into(),
        format!("{}", restart.good_ops),
        format!("{}", urb.good_ops),
        "-".into(),
    ]);
    t.print();

    let reduction = 100.0 * (1.0 - urb.bad_ops as f64 / restart.bad_ops.max(1) as f64);
    println!(
        "\nmicroreboots reduce failed requests by {reduction:.1}% (paper: 98%), a {} improvement",
        ratio(restart.bad_ops as f64, urb.bad_ops.max(1) as f64)
    );

    println!("\nTaw timeline (10 s buckets, req/s averaged; dips mark recovery):");
    let mut series_t = Table::new(&[
        "t (s)",
        "restart good/s",
        "restart bad/s",
        "uRB good/s",
        "uRB bad/s",
    ]);
    for (i, (from, rg, rb)) in restart_series.iter().enumerate() {
        let (_, ug, ub) = urb_series[i];
        // Print only the interesting windows around the fault times.
        let interesting = [
            590, 600, 610, 620, 630, 1190, 1200, 1210, 1220, 1230, 1790, 1800, 1810, 1820, 1830,
        ]
        .contains(from);
        if interesting {
            series_t.row_owned(vec![
                format!("{from}"),
                format!("{:.1}", rg / 10.0),
                format!("{:.1}", rb / 10.0),
                format!("{:.1}", ug / 10.0),
                format!("{:.1}", ub / 10.0),
            ]);
        }
    }
    series_t.print();

    restart_telemetry.print("Telemetry fold — process-restart run:");
    urb_telemetry.print("Telemetry fold — microreboot run:");
}
