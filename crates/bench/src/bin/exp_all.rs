//! Runs every experiment binary in sequence (the whole evaluation).
//!
//! `cargo run --release -p bench --bin exp_all`

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_table1",
    "exp_table2",
    "exp_table3",
    "exp_fig1",
    "exp_fig2",
    "exp_fig3",
    "exp_fig4",
    "exp_table5",
    "exp_table6",
    "exp_fig5",
    "exp_fig6",
    "exp_sixnines",
    "exp_ablation_drain",
    "exp_ablation_groups",
];

fn main() {
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("binary directory");
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        let bin = dir.join(exp);
        eprintln!(">>> {exp}");
        let status = Command::new(&bin).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{exp} exited with {s}");
                failures.push(*exp);
            }
            Err(e) => {
                eprintln!(
                    "could not run {exp} ({e}); build it first with \
                     `cargo build --release -p bench`"
                );
                failures.push(*exp);
            }
        }
    }
    if failures.is_empty() {
        eprintln!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
