//! Figure 5 — relaxing failure detection with cheap recovery.
//!
//! **Left graph:** a fault is injected into the most frequently called
//! component and recovery is deliberately delayed by `Tdet`; failed
//! requests are plotted against the detection time for microreboot vs
//! process-restart recovery. Because a microreboot wastes so few requests,
//! a monitor may take tens of seconds longer to detect a failure and
//! still beat a restart with instant detection (paper: up to 53.5 s).
//!
//! **Right graph:** false positives — `n` useless recoveries (triggered by
//! mistaken detections on a healthy system) followed by one useful one.
//! With microreboots, availability stays above the restart-with-perfect-
//! detection line even at very high false-positive rates (paper: 98%).

use bench::report::{banner, ratio};
use bench::Table;
use cluster::{Sim, SimConfig};
use faults::Fault;
use recovery::{PolicyLevel, RecoveryAction, RmConfig};
use simcore::{SimDuration, SimTime};

fn bad_ops(start_level: PolicyLevel, tdet: SimDuration) -> u64 {
    let mut sim = Sim::new(SimConfig {
        rm: Some(RmConfig {
            start_level,
            detection_delay: tdet,
            ..RmConfig::default()
        }),
        ..SimConfig::default()
    });
    sim.schedule_fault(
        SimTime::from_mins(2),
        0,
        Fault::TransientException {
            component: "BrowseCategories",
            calls: u32::MAX,
        },
    );
    sim.run_until(SimTime::from_mins(2) + tdet + SimDuration::from_mins(4));
    let world = sim.finish();
    world.pool.taw_ref().summary().bad_ops
}

fn useless_recoveries(n: u32, action: RecoveryAction) -> u64 {
    let mut sim = Sim::new(SimConfig::default());
    let spacing = match action {
        RecoveryAction::RestartProcess => 40u64,
        _ => 10,
    };
    for i in 0..n {
        sim.schedule_recovery(
            SimTime::from_secs(60 + spacing * i as u64),
            0,
            action.clone(),
        );
    }
    sim.run_until(SimTime::from_secs(60 + spacing * n as u64 + 120));
    let world = sim.finish();
    world.pool.taw_ref().summary().bad_ops
}

fn main() {
    banner("Figure 5 (left): failed requests vs detection time Tdet");
    let mut t = Table::new(&["Tdet (s)", "process restart", "microreboot"]);
    let restart_at_zero = bad_ops(PolicyLevel::Process, SimDuration::ZERO);
    let mut crossover = None;
    for tdet in [0u64, 5, 10, 20, 30, 40, 53, 60, 80, 100] {
        let d = SimDuration::from_secs(tdet);
        let restart = if tdet == 0 {
            restart_at_zero
        } else {
            bad_ops(PolicyLevel::Process, d)
        };
        let urb = bad_ops(PolicyLevel::Ejb, d);
        if crossover.is_none() && urb > restart_at_zero {
            crossover = Some(tdet);
        }
        t.row_owned(vec![
            format!("{tdet}"),
            format!("{restart}"),
            format!("{urb}"),
        ]);
    }
    t.print();
    match crossover {
        Some(s) => println!(
            "\ncrossover: with uRB recovery a monitor may take up to ~{s} s to detect\n\
             and still beat a process restart with instant detection (paper: 53.5 s)."
        ),
        None => println!(
            "\nno crossover within 100 s: uRB recovery with 100 s detection delay\n\
             still failed fewer requests than an instantly-detected restart\n\
             (paper's crossover was 53.5 s)."
        ),
    }

    banner("Figure 5 (right): failed requests vs false-positive rate");
    println!("(n useless recoveries between correct ones; FP rate = n/(n+1))\n");
    let per_restart = useless_recoveries(1, RecoveryAction::RestartProcess);
    let per_urb_burst = useless_recoveries(10, RecoveryAction::microreboot(&["BrowseCategories"]));
    let per_urb = per_urb_burst as f64 / 10.0;
    let mut t = Table::new(&["n (false positives)", "FP rate", "restart f(n)", "uRB f(n)"]);
    for n in [0u64, 1, 4, 9, 19, 49, 99] {
        let fp = 100.0 * n as f64 / (n + 1) as f64;
        let restart_f = (n + 1) * per_restart;
        let urb_f = ((n + 1) as f64 * per_urb) as u64;
        t.row_owned(vec![
            format!("{n}"),
            format!("{fp:.0}%"),
            format!("{restart_f}"),
            format!("{urb_f}"),
        ]);
    }
    t.print();
    let max_n = (per_restart as f64 / per_urb - 1.0).max(0.0);
    let max_fp = 100.0 * max_n / (max_n + 1.0);
    println!(
        "\none useless restart fails ~{per_restart} requests; one useless uRB ~{per_urb:.0}\n\
         ({}): uRB recovery beats a false-positive-free restart regime up to a\n\
         false-positive rate of ~{max_fp:.0}% (paper: 98%).",
        ratio(per_restart as f64, per_urb)
    );
}
