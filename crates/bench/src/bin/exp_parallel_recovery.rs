//! Parallel recovery — K disjoint faults recover in ≈max, not ≈sum.
//!
//! Three disjoint session beans (`BrowseCategories`, `BrowseRegions`,
//! `SearchItemsByCategory` — each a singleton recovery group with no
//! shared call path) suffer simultaneous transient-exception faults at
//! t = 30 s on a single node under 500-client load. Two automatic-recovery
//! arms, identical except for the conductor:
//!
//! * **serialized** — the pre-conductor baseline: the manager issues one
//!   microreboot at a time, so the node pays the *sum* of the three
//!   recovery times (plus a diagnosis round-trip between each);
//! * **conducted** — the conductor expands, checks conflicts, and runs
//!   all three microreboots concurrently under quarantine admission, so
//!   total unavailability collapses to ≈ the *slowest single* recovery.
//!
//! The acceptance bar: conducted union-of-downtime within 25% of the
//! slowest single recovery; serialized ≈ the sum; fewer failed requests
//! in the conducted arm.

use std::cell::RefCell;
use std::rc::Rc;

use bench::report::{banner, ratio, JsonReport, TelemetrySummary};
use bench::Table;
use cluster::{LogEvent, Sim, SimConfig};
use faults::Fault;
use recovery::conductor::ConductorConfig;
use recovery::RmConfig;
use simcore::telemetry::shared_bus;
use simcore::trace::{Trace, TraceRecorder};
use simcore::{MetricsRegistry, SimDuration, SimTime};
use workload::TawSummary;

const FAULTED: [&str; 3] = ["BrowseCategories", "BrowseRegions", "SearchItemsByCategory"];

struct Arm {
    taw: TawSummary,
    telemetry: TelemetrySummary,
    /// Per-recovery (started, finished) intervals.
    intervals: Vec<(SimTime, SimTime)>,
    /// The arm's full telemetry trace (written to `target/TRACE_*.jsonl`).
    trace: Trace,
    /// DES-kernel health gauges for the machine-readable report.
    kernel: MetricsRegistry,
}

fn run(conducted: bool) -> Arm {
    let rm = RmConfig {
        // A uniform detection floor keeps arrival skew out of the
        // comparison: all three faults are diagnosed in the same poll.
        detection_delay: SimDuration::from_secs(5),
        observation: SimDuration::ZERO,
        max_concurrent: if conducted { 4 } else { 1 },
        ..RmConfig::default()
    };
    let mut sim = Sim::new(SimConfig {
        retry_enabled: true,
        rm: Some(rm),
        conductor: conducted.then_some(ConductorConfig {
            max_concurrent_per_node: 4,
            quarantine: true,
        }),
        ..SimConfig::default()
    });
    let bus = shared_bus();
    let telemetry = Rc::new(RefCell::new(TelemetrySummary::default()));
    bus.borrow_mut().add_sink(Box::new(telemetry.clone()));
    let recorder = Rc::new(RefCell::new(TraceRecorder::new()));
    bus.borrow_mut().add_sink(Box::new(recorder.clone()));
    sim.attach_telemetry(bus);
    for component in FAULTED {
        sim.schedule_fault(
            SimTime::from_secs(30),
            0,
            Fault::TransientException {
                component,
                calls: 100_000,
            },
        );
    }
    let wall_start = std::time::Instant::now();
    sim.run_until(SimTime::from_mins(4));
    let mut kernel = MetricsRegistry::new();
    sim.record_kernel_gauges(&mut kernel, Some(wall_start.elapsed().as_secs_f64()));
    let world = sim.finish();
    let intervals = world
        .log
        .iter()
        .filter_map(|e| match e {
            LogEvent::RecoveryFinished { at, started, .. } => Some((*started, *at)),
            _ => None,
        })
        .collect();
    let fold = telemetry.borrow().clone();
    let trace = Trace::from_events(recorder.borrow().events().to_vec());
    Arm {
        taw: world.pool.taw_ref().summary(),
        telemetry: fold,
        intervals,
        trace,
        kernel,
    }
}

/// Union of possibly-overlapping time intervals.
fn union_of(intervals: &[(SimTime, SimTime)]) -> SimDuration {
    let mut spans = intervals.to_vec();
    spans.sort();
    let mut union = SimDuration::ZERO;
    let mut cursor: Option<(SimTime, SimTime)> = None;
    for (s, e) in spans {
        match &mut cursor {
            Some((_, ce)) if s <= *ce => {
                if e > *ce {
                    *ce = e;
                }
            }
            _ => {
                if let Some((cs, ce)) = cursor {
                    union += ce - cs;
                }
                cursor = Some((s, e));
            }
        }
    }
    if let Some((cs, ce)) = cursor {
        union += ce - cs;
    }
    union
}

fn sum_of(intervals: &[(SimTime, SimTime)]) -> SimDuration {
    intervals
        .iter()
        .fold(SimDuration::ZERO, |acc, (s, e)| acc + (*e - *s))
}

fn max_of(intervals: &[(SimTime, SimTime)]) -> SimDuration {
    intervals
        .iter()
        .map(|(s, e)| *e - *s)
        .fold(SimDuration::ZERO, SimDuration::max)
}

fn main() {
    banner("Parallel recovery: 3 disjoint faults, conductor vs serialized baseline");
    println!(
        "(faults in {FAULTED:?} at t=30s; 500 clients, 1 node, retries on;\n\
         serialized = manager alone, conducted = conductor, cap 4, quarantine)\n"
    );

    let serial = run(false);
    let conducted = run(true);

    println!("serialized recoveries:");
    for (s, e) in &serial.intervals {
        println!("  {:>9.3} s -> {:>9.3} s", s.as_secs_f64(), e.as_secs_f64());
    }
    println!("conducted recoveries:");
    for (s, e) in &conducted.intervals {
        println!("  {:>9.3} s -> {:>9.3} s", s.as_secs_f64(), e.as_secs_f64());
    }

    let s_union = union_of(&serial.intervals);
    let c_union = union_of(&conducted.intervals);
    let c_max = max_of(&conducted.intervals);
    let c_sum = sum_of(&conducted.intervals);

    let mut t = Table::new(&["metric", "serialized", "conducted"]);
    t.row_owned(vec![
        "recoveries".into(),
        serial.intervals.len().to_string(),
        conducted.intervals.len().to_string(),
    ]);
    t.row_owned(vec![
        "downtime union (ms)".into(),
        format!("{:.0}", s_union.as_millis_f64()),
        format!("{:.0}", c_union.as_millis_f64()),
    ]);
    t.row_owned(vec![
        "sum of recovery times (ms)".into(),
        format!("{:.0}", sum_of(&serial.intervals).as_millis_f64()),
        format!("{:.0}", c_sum.as_millis_f64()),
    ]);
    t.row_owned(vec![
        "slowest single recovery (ms)".into(),
        format!("{:.0}", max_of(&serial.intervals).as_millis_f64()),
        format!("{:.0}", c_max.as_millis_f64()),
    ]);
    t.row_owned(vec![
        "failed requests (bad ops)".into(),
        serial.taw.bad_ops.to_string(),
        conducted.taw.bad_ops.to_string(),
    ]);
    t.row_owned(vec![
        "failed actions".into(),
        serial.taw.bad_actions.to_string(),
        conducted.taw.bad_actions.to_string(),
    ]);
    t.row_owned(vec![
        "good ops".into(),
        serial.taw.good_ops.to_string(),
        conducted.taw.good_ops.to_string(),
    ]);
    t.print();

    println!(
        "\nunavailability compression: serialized/conducted = {}",
        ratio(s_union.as_millis_f64(), c_union.as_millis_f64())
    );
    println!(
        "conducted union vs slowest single recovery: {:.0} ms vs {:.0} ms ({:+.1}%)",
        c_union.as_millis_f64(),
        c_max.as_millis_f64(),
        100.0 * (c_union.as_millis_f64() - c_max.as_millis_f64()) / c_max.as_millis_f64()
    );

    serial.telemetry.print("serialized telemetry");
    conducted.telemetry.print("conducted telemetry");

    // Full JSONL traces for `urb-trace` inspection, plus the
    // machine-readable BENCH report accumulating the perf trajectory.
    let _ = std::fs::create_dir_all("target");
    for (name, arm) in [
        ("parallel_recovery_serialized", &serial),
        ("parallel_recovery_conducted", &conducted),
    ] {
        let path = format!("target/TRACE_{name}.jsonl");
        match arm.trace.write_to(std::path::Path::new(&path)) {
            Ok(()) => println!(
                "\ntrace: {} events, digest {:016x} -> {path}",
                arm.trace.events.len(),
                arm.trace.digest
            ),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    let mut json = JsonReport::new("parallel_recovery");
    json.metric_f64("serialized_downtime_union_ms", s_union.as_millis_f64());
    json.metric_f64("conducted_downtime_union_ms", c_union.as_millis_f64());
    json.metric_f64("conducted_slowest_single_ms", c_max.as_millis_f64());
    json.metric("serialized_failed_requests", serial.taw.bad_ops);
    json.metric("conducted_failed_requests", conducted.taw.bad_ops);
    json.metric("serialized_recoveries", serial.intervals.len() as u64);
    json.metric("conducted_recoveries", conducted.intervals.len() as u64);
    json.text(
        "serialized_digest",
        &format!("{:016x}", serial.trace.digest),
    );
    json.digest(conducted.trace.digest);
    json.metric_f64(
        "conducted_des_events_per_wall_second",
        conducted.kernel.gauge("des_events_per_wall_second"),
    );
    json.metric_f64(
        "conducted_sim_seconds_per_wall_second",
        conducted.kernel.gauge("sim_seconds_per_wall_second"),
    );
    json.telemetry(&conducted.telemetry);
    match json.write() {
        Ok(path) => println!("machine-readable report -> {path}"),
        Err(e) => eprintln!("could not write BENCH report: {e}"),
    }

    // Machine-checkable acceptance criteria.
    let within_25 = c_union.as_millis_f64() <= 1.25 * c_max.as_millis_f64();
    let serial_is_sum = s_union.as_millis_f64() >= 0.9 * sum_of(&serial.intervals).as_millis_f64();
    let fewer_failures = conducted.taw.bad_ops < serial.taw.bad_ops;
    println!("\nacceptance:");
    println!("  conducted union ≈ max (within 25%): {within_25}");
    println!("  serialized union ≈ sum:             {serial_is_sum}");
    println!("  conducted fails fewer requests:     {fewer_failures}");
    assert!(
        conducted.intervals.len() >= 3,
        "three faults must yield at least three recoveries"
    );
    assert!(
        within_25,
        "parallel recovery must approach the slowest-single bound"
    );
    assert!(serial_is_sum, "the baseline must pay the serial sum");
    assert!(
        fewer_failures,
        "quarantined parallel recovery must fail fewer requests"
    );
}
