//! Section 6.1 — alternative failover schemes and the six-nines budget.
//!
//! Measures the average failed requests per recovery event in three
//! regimes on a cluster:
//!
//! * JVM restart with node failover (today's standard practice),
//! * microreboot with node failover,
//! * microreboot **without** failover (requests keep flowing to the
//!   recovering node and simply retry) — the paper's recommendation.
//!
//! Then reruns the paper's six-nines arithmetic: a 24-node cluster serving
//! what our 8-node cluster serves, extrapolated to a year, may fail at
//! most 0.0001% of requests; the failure budget divided by the per-event
//! cost gives how many failures per year each regime tolerates
//! (paper: 23 restarts vs 329 failovers+uRBs vs 683 uRBs).

use bench::report::banner;
use bench::Table;
use cluster::{Sim, SimConfig};
use faults::Fault;
use recovery::{PolicyLevel, RmConfig};
use simcore::SimTime;

struct Regime {
    label: &'static str,
    start_level: PolicyLevel,
    failover: bool,
    retry: bool,
}

fn run(regime: &Regime, events: u32) -> (f64, u64) {
    let mut sim = Sim::new(SimConfig {
        nodes: 8,
        failover: regime.failover,
        retry_enabled: regime.retry,
        rm: Some(RmConfig {
            start_level: regime.start_level,
            ..RmConfig::default()
        }),
        ..SimConfig::default()
    });
    for i in 0..events {
        sim.schedule_fault(
            SimTime::from_secs(120 + 90 * i as u64),
            0,
            Fault::TransientException {
                component: "BrowseCategories",
                calls: 4000,
            },
        );
    }
    sim.run_until(SimTime::from_secs(120 + 90 * events as u64 + 120));
    let world = sim.finish();
    let s = world.pool.taw_ref().summary();
    (s.bad_ops as f64 / events as f64, s.good_ops + s.bad_ops)
}

fn main() {
    banner("Section 6.1: pre-failover microreboots and the six-nines budget");
    let regimes = [
        Regime {
            label: "JVM restart + failover",
            start_level: PolicyLevel::Process,
            failover: true,
            retry: false,
        },
        Regime {
            label: "uRB + failover",
            start_level: PolicyLevel::Ejb,
            failover: true,
            retry: false,
        },
        Regime {
            label: "uRB, no failover, retries",
            start_level: PolicyLevel::Ejb,
            failover: false,
            retry: true,
        },
    ];
    let mut t = Table::new(&[
        "regime",
        "failed req / recovery",
        "allowed failures/yr @ six nines",
        "paper",
    ]);
    let mut total_served = 0u64;
    let mut per_event = Vec::new();
    for regime in &regimes {
        let (avg_failed, served) = run(regime, 4);
        total_served = total_served.max(served);
        per_event.push(avg_failed);
        t.row_owned(vec![
            regime.label.to_string(),
            format!("{avg_failed:.0}"),
            String::new(),
            String::new(),
        ]);
    }
    // Six-nines arithmetic, following the paper: extrapolate the 8-node
    // cluster's request volume to 24 nodes over a year; the budget is
    // 0.0001% of that.
    let run_secs = 120.0 + 90.0 * 4.0 + 120.0;
    let rps_8node = total_served as f64 / run_secs;
    let yearly_24node = rps_8node * 3.0 * 365.25 * 24.0 * 3600.0;
    let budget = yearly_24node * 1e-6;
    let paper = ["23", "329", "683"];
    let mut t2 = Table::new(&[
        "regime",
        "failed req / recovery",
        "allowed failures/yr @ six nines",
        "paper",
    ]);
    for (i, regime) in regimes.iter().enumerate() {
        t2.row_owned(vec![
            regime.label.to_string(),
            format!("{:.0}", per_event[i]),
            format!("{:.0}", budget / per_event[i].max(1.0)),
            paper[i].to_string(),
        ]);
    }
    let _ = t;
    t2.print();
    println!(
        "\n(24-node cluster serving ~{:.1}e9 requests/year; six-nines budget {:.0}k failures)",
        yearly_24node / 1e9,
        budget / 1e3
    );
    println!("\nPaper's conclusion: writing microrebootable software that may fail almost");
    println!("twice a day beats writing software that must not fail more than once every");
    println!("two weeks.");
}
