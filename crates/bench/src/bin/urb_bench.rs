//! `urb-bench`: pinned kernel performance measurements.
//!
//! The `kernel` subcommand measures the DES kernel four ways and writes
//! `target/BENCH_kernel.json` (CI copies it to the repo root and fails on
//! structural drift):
//!
//! * **events_per_sec** — slot-arena kernel throughput over the chain
//!   workload of [`bench::kernel`], next to **legacy_events_per_sec**, the
//!   same workload on a faithful replica of the seed kernel (boxed
//!   closures + HashSet cancellation), and their ratio
//!   **speedup_vs_legacy** — the honest measure of what the arena
//!   refactor bought on this machine, in this build.
//! * **allocs_per_1k_events** — heap allocations per 1000 events at
//!   steady state, via a counting global allocator. The arena target is
//!   0.000: once the slot pool is warm, schedule/fire allocates nothing.
//! * **p99_dispatch_ns** — 99th percentile of individually timed
//!   schedule+fire steps.
//! * **sim_seconds_per_wall_second** — the full cluster simulation
//!   (seed-7 RM configuration), simulated seconds advanced per wall
//!   second: the end-to-end number the microbenchmarks exist to serve.
//!
//! Usage: `urb-bench kernel [--events N] [--json PATH]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bench::kernel::{self, percentile};
use bench::report::JsonReport;
use cluster::{Sim, SimConfig};
use recovery::RmConfig;
use simcore::SimTime;

/// A pass-through allocator that counts allocations, so the bench can
/// assert the arena kernel's zero-allocation steady state.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Allocation count over one measured arena window, after warmup.
fn arena_allocs_per_1k(warmup: u64, events: u64) -> f64 {
    use simcore::EventQueue;
    let mut queue: EventQueue<kernel::BenchWorld, kernel::ChainEvent> = EventQueue::new();
    let mut world = kernel::BenchWorld::default();
    kernel::seed_arena(&mut queue);
    while world.fired < warmup {
        queue.step(&mut world);
    }
    let before = allocs_now();
    let fired_before = world.fired;
    while world.fired < warmup + events {
        queue.step(&mut world);
    }
    let allocs = allocs_now() - before;
    allocs as f64 * 1000.0 / (world.fired - fired_before) as f64
}

/// Simulated seconds advanced per wall second on the real cluster sim.
fn cluster_sim_rate() -> f64 {
    let config = SimConfig {
        rm: Some(RmConfig::default()),
        seed: 7,
        ..SimConfig::default()
    };
    let mut sim = Sim::new(config);
    let sim_secs = 120u64;
    let start = std::time::Instant::now();
    sim.run_until(SimTime::from_secs(sim_secs));
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    sim_secs as f64 / wall
}

fn run_kernel(events: u64, json_path: Option<&str>) -> std::io::Result<()> {
    let warmup = (events / 10).max(10_000);
    println!(
        "urb-bench kernel: {events} events/kernel (+{warmup} warmup), {} chains",
        kernel::CHAINS
    );

    let (pair, _, _) = kernel::run_pair(warmup, events, 32);
    let arena = pair.arena;
    let arena_eps = pair.arena.events_per_sec();
    let legacy_eps = pair.legacy.events_per_sec();
    let speedup = pair.speedup();

    let allocs_per_1k = arena_allocs_per_1k(warmup, events.min(500_000));

    let mut samples = kernel::arena_dispatch_samples(warmup, 100_000);
    let p99 = percentile(&mut samples, 99.0);
    let p50 = percentile(&mut samples, 50.0);

    let sim_rate = cluster_sim_rate();

    println!("  arena   {arena_eps:>14.0} events/s");
    println!("  legacy  {legacy_eps:>14.0} events/s   (seed kernel replica)");
    println!("  speedup {speedup:>14.2}x");
    println!("  allocs  {allocs_per_1k:>14.3} per 1k events (steady state)");
    println!("  dispatch p50 {p50} ns, p99 {p99} ns");
    println!("  cluster sim {sim_rate:>10.1} sim-seconds/wall-second (seed 7, RM on)");

    let mut report = JsonReport::new("kernel");
    report.metric("events", arena.events);
    report.metric_f64("events_per_sec", arena_eps);
    report.metric_f64("legacy_events_per_sec", legacy_eps);
    report.metric_f64("speedup_vs_legacy", speedup);
    report.metric_f64("allocs_per_1k_events", allocs_per_1k);
    report.metric("p50_dispatch_ns", p50);
    report.metric("p99_dispatch_ns", p99);
    report.metric_f64("sim_seconds_per_wall_second", sim_rate);
    let path = match json_path {
        Some(p) => {
            std::fs::write(p, report.render())?;
            p.to_string()
        }
        None => report.write()?,
    };
    println!("wrote {path}");
    Ok(())
}

fn usage() -> ! {
    eprintln!("usage: urb-bench kernel [--events N] [--json PATH]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    if cmd != "kernel" {
        usage();
    }
    let mut events = 2_000_000u64;
    let mut json_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--events" => {
                i += 1;
                events = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    if let Err(e) = run_kernel(events, json_path.as_deref()) {
        eprintln!("urb-bench: {e}");
        std::process::exit(1);
    }
}
