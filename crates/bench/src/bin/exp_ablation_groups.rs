//! Ablation (extension): recovery-group density (Section 8, "Isolation").
//!
//! "Dependencies between components need to be minimized, because a dense
//! dependency graph increases the size of recovery groups, making µRBs
//! take longer and be more disruptive." This experiment quantifies that:
//! synthetic applications with increasingly dense hard-reference graphs,
//! measuring recovery-group size, microreboot duration, and the number of
//! requests a microreboot kills.

use bench::report::banner;
use bench::Table;
use components::descriptor::{ComponentDescriptor, ComponentKind};
use components::graph::DependencyGraph;
use simcore::{SimDuration, SimTime};
use statestore::FastS;
use urb_core::app::{Application, CallError};
use urb_core::context::CallContext;
use urb_core::server::make_request;
use urb_core::testkit::ToyApp;
use urb_core::{share_db, AppServer, OpCode, Request, ServerConfig, SessionBackend, SubmitOutcome};

/// A synthetic app with N entity beans chained by hard references up to a
/// configurable depth (`density` = how many consecutive beans each bean
/// links to).
struct ChainApp {
    block_size: usize,
}

const N: usize = 16;

fn bean_names() -> Vec<&'static str> {
    // Static names for the 16 beans.
    vec![
        "B00", "B01", "B02", "B03", "B04", "B05", "B06", "B07", "B08", "B09", "B10", "B11", "B12",
        "B13", "B14", "B15",
    ]
}

/// Hard-reference slices: beans are partitioned into blocks of
/// `block_size`; each bean hard-links its successor within the block, so
/// the recovery groups are exactly the blocks.
fn refs_for(i: usize, block_size: usize) -> &'static [&'static str] {
    static NAMES: [&str; 16] = [
        "B00", "B01", "B02", "B03", "B04", "B05", "B06", "B07", "B08", "B09", "B10", "B11", "B12",
        "B13", "B14", "B15",
    ];
    if block_size <= 1 || (i % block_size) == block_size - 1 || i + 1 >= NAMES.len() {
        &[]
    } else {
        &NAMES[i + 1..i + 2]
    }
}

impl Application for ChainApp {
    fn descriptors(&self) -> Vec<ComponentDescriptor> {
        let mut d = vec![ComponentDescriptor::new("Web", ComponentKind::Web)
            .with_costs(SimDuration::from_millis(71), SimDuration::from_millis(957))];
        for (i, name) in bean_names().into_iter().enumerate() {
            d.push(
                ComponentDescriptor::new(name, ComponentKind::EntityBean)
                    .with_group_refs(refs_for(i, self.block_size))
                    .with_costs(SimDuration::from_millis(10), SimDuration::from_millis(450)),
            );
        }
        d
    }

    fn methods_of(&self, _component: &str) -> &'static [&'static str] {
        &["op"]
    }

    fn web_component(&self) -> &'static str {
        "Web"
    }

    fn base_cost(&self, _op: OpCode) -> SimDuration {
        SimDuration::from_millis(10)
    }

    fn handle(&mut self, ctx: &mut CallContext<'_>, req: &Request) -> Result<(), CallError> {
        // Each request touches one bean, chosen by its argument.
        let names = bean_names();
        let bean = names[(req.arg as usize) % names.len()];
        ctx.call(bean, "op", |_| Ok(()))
    }

    fn session_valid(&self, _obj: &statestore::session::SessionObject) -> bool {
        true
    }

    fn on_component_reinit(&mut self, _component: &str) {}

    fn on_process_restart(&mut self) {}
}

fn measure(block_size: usize) -> (usize, SimDuration, u64, usize) {
    let app = ChainApp { block_size };
    let graph = DependencyGraph::build(&app.descriptors()).unwrap();
    let b0 = graph.id_of("B00").unwrap();
    let group_size = graph.recovery_group(b0).len();

    let db = share_db(ToyApp::seeded_db(10));
    let mut srv = AppServer::new(
        app,
        ServerConfig::default(),
        db,
        SessionBackend::FastS(FastS::new()),
    );
    // Saturate with in-flight requests touching every bean, then µRB B00.
    let t = SimTime::from_secs(1);
    for i in 0..N as u64 {
        let req = make_request(i, OpCode(0), None, true, i as i64, t);
        if let SubmitOutcome::Admitted = srv.submit(req, t) {
            srv.pump(t);
        }
    }
    let ticket = srv.begin_microreboot(&["B00"], t, None).unwrap();
    let killed = srv.microreboot_crash(ticket.id, t).len() as u64;
    // Probe every bean while the group reboots: how much of the app is
    // unavailable?
    let mut blocked = 0;
    let probe_t = t + SimDuration::from_millis(50);
    for i in 0..N as u64 {
        let req = make_request(1000 + i, OpCode(0), None, true, i as i64, probe_t);
        if let SubmitOutcome::Admitted = srv.submit(req, probe_t) {
            for started in srv.pump(probe_t) {
                if let Some(resp) = srv.complete(started.req, started.cpu_done_at) {
                    // Count only the probes; earlier queued load drains
                    // through the same pump.
                    if resp.req.0 >= 1000 && resp.status != urb_core::Status::Ok {
                        blocked += 1;
                    }
                }
            }
        }
    }
    srv.microreboot_complete(ticket.id, ticket.done_at);
    (group_size, ticket.done_at - t, killed, blocked)
}

fn main() {
    banner("Ablation: dependency density vs microreboot cost (Section 8)");
    println!("(16 entity beans partitioned into recovery groups of varying size;");
    println!(" B00 microreboots while requests touch every bean)\n");
    let mut t = Table::new(&[
        "group size",
        "uRB duration",
        "in-flight killed",
        "ops blocked during uRB (of 16)",
    ]);
    for block in [1usize, 2, 4, 8, 16] {
        let (group, dur, killed, blocked) = measure(block);
        t.row_owned(vec![
            format!("{group}"),
            format!("{dur}"),
            format!("{killed}"),
            format!("{blocked}"),
        ]);
    }
    t.print();
    println!("\nas the paper warns: hard references chain recovery groups together;");
    println!("with one giant group a 'micro' reboot takes 4x longer and blocks the");
    println!("whole application — exactly why crash-only design minimizes coupling.");
}
