//! Table 2 — recovery from injected faults: worst-case scenarios.
//!
//! For every row of the paper's fault catalogue: inject the fault into a
//! loaded single-node system, observe failures with the comparison-based
//! detector, and apply the recursive recovery policy — EJB microreboot,
//! then WAR, application restart, JVM restart, OS reboot — escalating
//! whenever user-visible failures persist after a recovery action. The
//! reported level is the rung that achieved *resuscitation* (no more
//! user-visible failures); the ≈ column reports whether state corruption
//! survived recovery and required manual repair (database repair / tainted
//! session data) for 100% correctness.

use bench::report::banner;
use bench::Table;
use cluster::{Sim, SimConfig};
use faults::{microreboot_curable, table2_catalogue, CatalogueRow, Fault};
use recovery::RecoveryAction;
use simcore::{SimDuration, SimTime};

/// The EJB the recursive policy's first rung targets for each fault (the
/// component the paper's scoring diagnosis would name).
fn ejb_target(fault: &Fault) -> Option<&'static str> {
    match fault {
        Fault::Deadlock { component }
        | Fault::InfiniteLoop { component }
        | Fault::AppMemoryLeak { component, .. }
        | Fault::TransientException { component, .. }
        | Fault::CorruptJndi { component, .. }
        | Fault::CorruptTxnMap { component, .. }
        | Fault::CorruptBeanAttrs { component, .. } => Some(component),
        Fault::CorruptPrimaryKeys { .. } => Some("IdentityManager"),
        _ => None,
    }
}

/// The recovery ladder, as `(label, action)` pairs.
fn ladder(fault: &Fault) -> Vec<(&'static str, RecoveryAction)> {
    let mut steps = Vec::new();
    if let Some(target) = ejb_target(fault) {
        steps.push(("EJB", RecoveryAction::microreboot(&[target])));
    }
    steps.push(("WAR", RecoveryAction::microreboot(&["WAR"])));
    steps.push(("eBid", RecoveryAction::RestartApp));
    steps.push(("JVM/JBoss", RecoveryAction::RestartProcess));
    steps.push(("OS kernel", RecoveryAction::RebootOs));
    steps
}

/// Damage snapshot used to separate *active* faults from residual data
/// damage awaiting manual repair.
///
/// Session taint only counts for FastS: SSM's checksums guarantee that a
/// tainted object is discarded on its next access, so it never needs
/// manual repair.
fn damage(sim: &Sim) -> (usize, usize) {
    let world = sim.world();
    // Only the database counts toward the ≈ (manual repair) column:
    // tainted session objects are either actively failing (the ladder
    // keeps escalating) or orphaned cookies nobody will ever present —
    // and wrong session data that matters shows up as database damage
    // through the writes it causes.
    let db_tainted = world.nodes[0].db().borrow().tainted_rows();
    (db_tainted, 0)
}

/// Counts failures relevant to *resuscitation* in `[now, until)`.
///
/// The paper distinguishes resuscitation (service resumes for all users)
/// from full recovery (100% correct data). Comparison-detector hits caused
/// purely by residual, no-longer-growing data damage count toward the ≈
/// column, not against resuscitation.
fn observe(sim: &mut Sim, until: SimTime, ignore_session_loss: bool) -> usize {
    let before = damage(sim);
    sim.run_until(until);
    let after = damage(sim);
    // Database damage is residual once it stops growing (reads of bad rows
    // keep tripping the comparison detector until a manual repair).
    // Session damage stays *active*: the wronged users keep getting wrong
    // answers until the object is evicted.
    let db_damage_grew = after.0 > before.0;
    let reports = sim.world_mut().pool.drain_reports();
    reports
        .iter()
        .filter(|r| {
            if ignore_session_loss && r.kind == workload::detect::FailureKind::SessionLoss {
                return false;
            }
            r.kind != workload::detect::FailureKind::Comparison || db_damage_grew || after.0 == 0
        })
        .count()
}

struct Outcome {
    level: String,
    manual: bool,
    resuscitated: bool,
}

fn run_row(row: &CatalogueRow) -> Outcome {
    let store = if matches!(row.fault, Fault::CorruptSsm) {
        cluster::StoreChoice::Ssm
    } else {
        cluster::StoreChoice::FastS
    };
    let mut sim = Sim::new(SimConfig {
        store,
        ..SimConfig::default()
    });
    let warm = SimTime::from_secs(90);
    sim.run_until(warm);
    sim.world_mut().pool.drain_reports(); // discard background noise
    sim.schedule_fault(warm, 0, row.fault);

    // Adaptive detection: poll in 2-second steps until the fault
    // manifests (leaks need a minute or two; most faults bite at once).
    let mut detected = false;
    for _ in 0..150 {
        let step_until = sim.now() + SimDuration::from_secs(2);
        if observe(&mut sim, step_until, false) > 0 {
            detected = true;
            break;
        }
    }

    let mut level = String::from("unnecessary");
    let mut resuscitated = true;
    if detected {
        // Does it heal with no recovery at all (naturally expunged /
        // checksum discard)? Healed = 32 consecutive clean seconds —
        // longer than the server's 30 s request TTL, so the bursty
        // silence of a hung component (timeouts fire in TTL-spaced
        // clumps) cannot masquerade as healing.
        let mut clean_streak = 0;
        let mut fail_streak = 0;
        for _ in 0..30 {
            let step_until = sim.now() + SimDuration::from_secs(2);
            if observe(&mut sim, step_until, false) == 0 {
                clean_streak += 1;
                fail_streak = 0;
                if clean_streak >= 16 {
                    break;
                }
            } else {
                clean_streak = 0;
                fail_streak += 1;
                // Sustained failure: it is clearly not healing on its
                // own; start the recovery ladder promptly (a leak-sick
                // JVM may not have long to live).
                if fail_streak >= 6 {
                    break;
                }
            }
        }
        let more = if clean_streak >= 16 { 0 } else { 1 };
        if more == 0 {
            level = "unnecessary".into();
        } else {
            resuscitated = false;
            let mut t = sim.now();
            for (label, action) in ladder(&row.fault) {
                sim.schedule_recovery(t, 0, action);
                // Let the action complete and aftershocks settle, then
                // observe. OS reboots take ~2 minutes.
                let settle = SimDuration::from_secs(match label {
                    "EJB" | "WAR" => 10,
                    "eBid" => 25,
                    "JVM/JBoss" => 130,
                    _ => 240,
                });
                sim.run_until(t + settle);
                sim.world_mut().pool.drain_reports(); // recovery collateral
                let watch_until = sim.now() + SimDuration::from_secs(25);
                // Session-loss echoes (evicted/lost sessions re-logging)
                // are the recovery's expected aftermath, not the fault.
                let after = observe(&mut sim, watch_until, true);
                if after == 0 {
                    level = label.to_string();
                    resuscitated = true;
                    break;
                }
                t = sim.now();
            }
        }
    }

    // Did recovery leave damage that needs manual repair (≈)?
    let (db_tainted, sess_tainted) = damage(&sim);
    let db_damaged = db_tainted > 0;
    let manual = db_damaged || sess_tainted > 0;

    // Special Table 2 labels.
    if level == "unnecessary" {
        if matches!(row.fault, Fault::CorruptSsm) {
            let discards = sim.world().nodes[0]
                .session()
                .ssm_handle()
                .map(|s| s.borrow().stats().checksum_discards)
                .unwrap_or(0);
            if discards > 0 {
                level = "checksum discard".into();
            }
        }
        if db_damaged && matches!(row.fault, Fault::CorruptDb { .. }) {
            level = "table repair".into();
        }
    }
    if !resuscitated {
        level = "manual".into();
    }
    Outcome {
        level,
        manual,
        resuscitated,
    }
}

fn main() {
    banner("Table 2: recovery from injected faults — worst-case scenarios");
    println!("(recursive policy driven by the comparison-based detector)\n");
    let mut t = Table::new(&[
        "injected fault",
        "paper level",
        "paper ~",
        "measured level",
        "measured ~",
    ]);
    let mut curable_measured = 0;
    let rows = table2_catalogue();
    for row in &rows {
        let outcome = run_row(row);
        let measured_curable =
            matches!(outcome.level.as_str(), "unnecessary" | "EJB" | "WAR") && outcome.resuscitated;
        if measured_curable {
            curable_measured += 1;
        }
        t.row_owned(vec![
            row.label.to_string(),
            row.expected.label().to_string(),
            if row.manual_repair { "yes" } else { "" }.to_string(),
            outcome.level.clone(),
            if outcome.manual { "yes" } else { "" }.to_string(),
        ]);
    }
    t.print();
    let curable_paper = rows.iter().filter(|r| microreboot_curable(r)).count();
    println!(
        "\nmicroreboot-curable rows: paper {curable_paper}/26, measured {curable_measured}/26"
    );
    println!("(the SSM row counts as curable: the checksum discards the bad object");
    println!("with no reboot; DB corruption and sub-JVM faults need more, as in the paper)");
}
