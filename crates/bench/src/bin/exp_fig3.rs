//! Figure 3 — failover under normal load, clusters of 2/4/6/8 nodes.
//!
//! A µRB-recoverable fault (a persistent transient exception in
//! `BrowseCategories`, the most frequently called component) is injected
//! into one node; the load balancer fails traffic over to the good nodes
//! during recovery. The experiment reports, per cluster size, the number
//! of failed requests and failed-over sessions for JVM-restart recovery
//! vs EJB microreboot, over a 10-minute interval with 500 clients/node —
//! plus the relative failure percentages (Figure 3's right graph).
//!
//! Paper: with JVM restarts failed requests are dominated by the sessions
//! on the failed node (avg 2,280); with microreboots they stay roughly
//! constant (~162) regardless of cluster size.

use bench::report::banner;
use bench::Table;
use cluster::{Sim, SimConfig, StoreChoice};
use faults::Fault;
use recovery::{PolicyLevel, RmConfig};
use simcore::SimTime;

struct RunResult {
    failed_requests: u64,
    total_requests: u64,
    sessions_failed_over: usize,
    over_8s: u64,
    peak_rt_ms: f64,
}

fn run(nodes: usize, start_level: PolicyLevel) -> RunResult {
    run_with_store(nodes, start_level, StoreChoice::FastS)
}

fn run_with_store(nodes: usize, start_level: PolicyLevel, store: StoreChoice) -> RunResult {
    let mut sim = Sim::new(SimConfig {
        nodes,
        store,
        failover: true,
        rm: Some(RmConfig {
            start_level,
            ..RmConfig::default()
        }),
        ..SimConfig::default()
    });
    sim.schedule_fault(
        SimTime::from_mins(3),
        0,
        Fault::TransientException {
            component: "BrowseCategories",
            calls: u32::MAX,
        },
    );
    sim.run_until(SimTime::from_mins(10));
    let mut world = sim.finish();
    let s = world.pool.taw_ref().summary();
    let over_8s = world.pool.taw_ref().over_8s();
    let peak_rt_ms = world.pool.taw().response_ms().percentile(1.0);
    RunResult {
        failed_requests: s.bad_ops,
        total_requests: s.bad_ops + s.good_ops,
        sessions_failed_over: world.lb.failed_over(),
        over_8s,
        peak_rt_ms,
    }
}

fn main() {
    banner("Figure 3: failover under normal load (500 clients/node, FastS)");
    let mut t = Table::new(&[
        "nodes",
        "restart: failed",
        "restart: sessions",
        "restart: % of total",
        "uRB: failed",
        "uRB: sessions",
        "uRB: % of total",
    ]);
    let mut restart_failed = Vec::new();
    let mut urb_failed = Vec::new();
    for nodes in [2usize, 4, 6, 8] {
        let restart = run(nodes, PolicyLevel::Process);
        let urb = run(nodes, PolicyLevel::Ejb);
        restart_failed.push(restart.failed_requests);
        urb_failed.push(urb.failed_requests);
        t.row_owned(vec![
            format!("{nodes}"),
            format!("{}", restart.failed_requests),
            format!("{}", restart.sessions_failed_over),
            format!(
                "{:.2}%",
                100.0 * restart.failed_requests as f64 / restart.total_requests as f64
            ),
            format!("{}", urb.failed_requests),
            format!("{}", urb.sessions_failed_over),
            format!(
                "{:.2}%",
                100.0 * urb.failed_requests as f64 / urb.total_requests as f64
            ),
        ]);
    }
    t.print();
    let avg = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
    println!(
        "\naverages: restart {:.0} failed requests, uRB {:.0} (paper: 2,280 vs 162)",
        avg(&restart_failed),
        avg(&urb_failed)
    );
    println!("shape: restart failures scale with the failed node's sessions; uRB");
    println!("failures stay roughly constant with cluster size, so the relative");
    println!("benefit shrinks as the cluster grows but never disappears.");

    // Section 5.3's SSM repeat: session state survives failover, but the
    // good nodes absorb the failed node's load *and* repopulate their
    // session caches — the paper saw response times exceed 8 s with JVM
    // restarts, while microreboots were too fast for the effect to be
    // observable.
    banner("Figure 3 (repeat with SSM): failover without session loss");
    let mut t2 = Table::new(&[
        "nodes",
        "restart: failed",
        "restart: >8s",
        "restart: peak rt",
        "uRB: failed",
        "uRB: >8s",
    ]);
    for nodes in [2usize, 4] {
        let restart = run_with_store(nodes, PolicyLevel::Process, StoreChoice::Ssm);
        let urb = run_with_store(nodes, PolicyLevel::Ejb, StoreChoice::Ssm);
        t2.row_owned(vec![
            format!("{nodes}"),
            format!("{}", restart.failed_requests),
            format!("{}", restart.over_8s),
            format!("{:.0} ms", restart.peak_rt_ms),
            format!("{}", urb.failed_requests),
            format!("{}", urb.over_8s),
        ]);
    }
    t2.print();
    println!("\nwith SSM the restart no longer strands sessions (failed counts drop)");
    println!("but the redirected load + cache repopulation still hurts; the uRB is");
    println!("over before the cluster notices (paper: >8 s responses vs unobservable).");
}
