//! Table 1 — the client workload mix.
//!
//! Drives the 25-state Markov client emulator against a live single-node
//! eBid server for 20 simulated minutes and reports the observed request
//! mix by class, next to the paper's Table 1.

use bench::report::banner;
use bench::Table;
use cluster::{Sim, SimConfig};
use simcore::SimTime;
use workload::catalog::MixClass;

fn main() {
    banner("Table 1: client workload used in evaluating microreboot-based recovery");
    let mut sim = Sim::new(SimConfig::default());
    sim.run_until(SimTime::from_mins(20));
    let world = sim.finish();

    let mut t = Table::new(&[
        "user operation results mostly in...",
        "paper %",
        "measured %",
    ]);
    for class in MixClass::ALL {
        t.row_owned(vec![
            class.label().to_string(),
            format!("{:.0}", class.paper_percent()),
            format!("{:.1}", world.pool.mix().percent(class)),
        ]);
    }
    t.print();
    println!("\ntotal requests issued: {}", world.pool.mix().total());
}
