//! Figure 6 — averting failure with microrejuvenation.
//!
//! Injects the paper's leaks — a slow per-invocation leak in the `Item`
//! entity bean and a fast one in `ViewItem` — and runs the Section 6.4
//! rejuvenation service: when free heap drops below `M_alarm` (350 MB of
//! the 1 GB heap), components are microrebooted in a rolling fashion until
//! free memory exceeds `M_sufficient` (800 MB), learning which components
//! release the most memory. The baseline run rejuvenates with whole JVM
//! restarts instead.
//!
//! Paper: over 30 minutes, whole-JVM rejuvenation failed 11,915 requests;
//! microrejuvenation failed 1,383 — an order of magnitude — and good Taw
//! never dropped to zero.

use bench::report::{banner, ratio};
use bench::Table;
use cluster::{LogEvent, Sim, SimConfig};
use faults::Fault;
use simcore::{SimDuration, SimTime};

const MALARM: u64 = 350 << 20;
const MSUFFICIENT: u64 = 800 << 20;
const RUN: u64 = 30; // minutes

fn inject_leaks(sim: &mut Sim) {
    // The paper leaks 2 KB/invocation in Item and 250 KB/invocation in
    // ViewItem; our scaled call rates need proportionally larger leaks to
    // reproduce the ~7-minute first alarm on a 1 GB heap.
    sim.schedule_fault(
        SimTime::from_secs(5),
        0,
        Fault::AppMemoryLeak {
            component: "Item",
            bytes_per_call: 16 << 10,
            persistent: true,
        },
    );
    sim.schedule_fault(
        SimTime::from_secs(5),
        0,
        Fault::AppMemoryLeak {
            component: "ViewItem",
            bytes_per_call: 300 << 10,
            persistent: true,
        },
    );
}

fn microrejuvenation() -> (u64, Vec<(u64, f64)>, usize, bool) {
    let mut sim = Sim::new(SimConfig::default());
    inject_leaks(&mut sim);
    sim.enable_rejuvenation(0, MALARM, MSUFFICIENT, SimDuration::from_secs(5));
    let mut memory = Vec::new();
    for minute in 0..RUN {
        for tick in 0..6 {
            sim.run_until(SimTime::from_secs(minute * 60 + tick * 10));
            let free = sim.world().nodes[0].available_memory();
            memory.push((minute * 60 + tick * 10, free as f64 / (1 << 20) as f64));
        }
    }
    sim.run_until(SimTime::from_mins(RUN));
    let world = sim.finish();
    let rejuvs = world
        .log
        .iter()
        .filter(|e| {
            matches!(e, LogEvent::RecoveryFinished { action, .. } if action.contains("rejuvenation"))
        })
        .count();
    let taw = world.pool.taw_ref();
    // "Good Taw never dropped to zero": check every 10 s window has some
    // goodput.
    let mut never_zero = true;
    for w in 1..(RUN * 6 - 1) {
        if taw.good_in(w * 10, w * 10 + 9) == 0.0 {
            never_zero = false;
        }
    }
    (taw.summary().bad_ops, memory, rejuvs, never_zero)
}

fn jvm_rejuvenation() -> (u64, usize, bool) {
    let mut sim = Sim::new(SimConfig::default());
    inject_leaks(&mut sim);
    // Whole-JVM rejuvenation: poll free memory, restart when it drops
    // below the alarm.
    fn poll(w: &mut cluster::World, q: &mut cluster::SimQueue) {
        use cluster::ScheduleFn;
        let now = q.now();
        if w.nodes[0].is_up() && w.nodes[0].available_memory() < MALARM {
            w.execute_action(0, recovery::RecoveryAction::RestartProcess, q);
        }
        let _ = now;
        q.schedule_fn_in(SimDuration::from_secs(5), poll);
    }
    sim.schedule_fn(SimTime::from_secs(5), poll);
    sim.run_until(SimTime::from_mins(RUN));
    let world = sim.finish();
    let restarts = world.nodes[0].stats().process_restarts as usize;
    let taw = world.pool.taw_ref();
    let mut never_zero = true;
    for w in 1..(RUN * 6 - 1) {
        if taw.good_in(w * 10, w * 10 + 9) == 0.0 {
            never_zero = false;
        }
    }
    (taw.summary().bad_ops, restarts, never_zero)
}

fn main() {
    banner("Figure 6: available memory under microrejuvenation (30-minute run)");
    let (urb_bad, memory, rejuv_events, urb_never_zero) = microrejuvenation();
    let (jvm_bad, jvm_restarts, jvm_never_zero) = jvm_rejuvenation();

    println!("free-heap timeline (MB, sampled every 10 s; alarm 350 MB, target 800 MB):");
    let mut spark = String::new();
    for (t, mb) in &memory {
        if t % 60 == 0 {
            spark.push_str(&format!("\n  min {:>2}: ", t / 60));
        }
        let c = match *mb as u64 {
            0..=349 => '!',
            350..=549 => '-',
            550..=749 => '+',
            _ => '#',
        };
        spark.push(c);
    }
    println!("{spark}");
    println!("\n  legend: '#' >750 MB free, '+' >550, '-' >350, '!' below alarm\n");

    let mut t = Table::new(&["metric", "JVM rejuvenation", "microrejuvenation", "paper"]);
    t.row_owned(vec![
        "failed requests (30 min)".into(),
        format!("{jvm_bad}"),
        format!("{urb_bad}"),
        "11,915 vs 1,383".into(),
    ]);
    t.row_owned(vec![
        "rejuvenation events".into(),
        format!("{jvm_restarts} restarts"),
        format!("{rejuv_events} microreboots"),
        "-".into(),
    ]);
    t.row_owned(vec![
        "good Taw ever zero?".into(),
        format!("{}", if jvm_never_zero { "no" } else { "yes" }),
        format!("{}", if urb_never_zero { "no" } else { "yes" }),
        "yes vs no".into(),
    ]);
    t.print();
    println!(
        "\nmicrorejuvenation reduces rejuvenation downtime cost {} (paper: ~8.6x),",
        ratio(jvm_bad as f64, urb_bad.max(1) as f64)
    );
    println!("turning planned total downtime into planned partial downtime.");
}
