//! `urb-chaos` — deterministic fault-injection campaigns and policy
//! tournaments.
//!
//! **Campaign mode** (the default) sweeps a seeded scenario space (fault
//! kind × target × injection time × optional second fault mid-recovery ×
//! flapping schedule × detector kind × recovery-manager concurrency),
//! runs each scenario through the cluster simulation with the hardened
//! recovery policy, and asserts the recovery-convergence invariants on
//! every run:
//!
//! * the failure episode terminates — no recovery left in flight, no
//!   conductor ticket active or queued, the node back up, no hung
//!   requests surviving the run;
//! * every begun reboot finished, and every manager decision was
//!   acknowledged exactly once (`in_flight == 0` at quiescence);
//! * quarantine is always lifted once recovery converges;
//! * goodput returns to a fraction of its pre-fault rate, for every
//!   fault class whose damage a reboot can actually undo;
//! * with `--strict`, each scenario re-runs and must reproduce its trace
//!   digest bit-for-bit.
//!
//! Each run folds into a `CampaignRunDone` telemetry event; the campaign
//! digest is the FNV fold of those events, so the whole campaign is
//! reproducible from `(seed, runs)` alone.
//!
//! **Tournament mode** (`urb-chaos tournament`) runs the full fault
//! matrix under every registered recovery policy on a two-node failover
//! cluster, scores each policy on downtime / failed requests / reboot
//! cost / pages, marks the Pareto frontier, and writes
//! `target/BENCH_policy_tournament.json`.

use std::collections::BTreeMap;
use std::process::ExitCode;

use bench::chaos::{
    self, depth_label, describe, fault_kind, run_scenario, RunOptions, TournamentOptions,
};
use bench::netstate::run_netstate_scenario;
use bench::report::JsonReport;
use bench::Table;
use faults::campaign::{self, CampaignConfig};
use recovery::PolicyChoice;
use simcore::telemetry::{TelemetrySink, TraceHashSink};
use simcore::{MetricsRegistry, TelemetryEvent};

fn usage() {
    eprintln!("usage: urb-chaos [--seed N] [--runs M] [--strict] [--verbose] [--only RUN]");
    eprintln!("       urb-chaos tournament [--seed N] [--runs M] [--policies a,b,..] [--strict] [--verbose] [--json]");
    eprintln!("       urb-chaos degraded [--seed N] [--runs M] [--strict] [--verbose] [--json] [--only RUN]");
    eprintln!("       urb-chaos netstate [--seed N] [--runs M] [--strict] [--verbose] [--json] [--only RUN]");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("tournament") => tournament_main(&args[1..]),
        Some("degraded") => degraded_main(&args[1..]),
        Some("netstate") => netstate_main(&args[1..]),
        _ => campaign_main(&args),
    }
}

/// The netstate (state-plane & network fault) campaign: every run
/// injects one store-tier or link-tier fault against a two-node
/// failover cluster on the SSM backend with the session-integrity
/// ledger armed, and convergence additionally requires the end-to-end
/// integrity invariants — no committed write lost, no write applied
/// twice, no stale lease served, no reboot drawn onto a healthy
/// component by store-tier evidence, goodput recovered.
fn netstate_main(args: &[String]) -> ExitCode {
    let mut seed = 7u64;
    let mut runs = 100u64;
    let mut only: Option<u64> = None;
    let mut strict = false;
    let mut verbose = false;
    let mut write_json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let parsed = match a.as_str() {
            "--seed" => it.next().map(|v| v.parse().map(|n| seed = n)),
            "--runs" => it.next().map(|v| v.parse().map(|n| runs = n)),
            "--only" => it.next().map(|v| v.parse().map(|n| only = Some(n))),
            "--strict" => {
                strict = true;
                continue;
            }
            "--verbose" => {
                verbose = true;
                continue;
            }
            "--json" => {
                write_json = true;
                continue;
            }
            _ => None,
        };
        match parsed {
            Some(Ok(())) => {}
            _ => {
                usage();
                return ExitCode::from(2);
            }
        }
    }

    let mut scenarios = campaign::netstate_scenarios(&CampaignConfig { seed, runs });
    if let Some(run) = only {
        scenarios.retain(|s| s.run == run);
    }
    let mut campaign_hash = TraceHashSink::new();
    let mut campaign_metrics = MetricsRegistry::new();
    let mut coverage: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut failures: Vec<(u64, String, Vec<String>)> = Vec::new();
    let mut commit_intents = 0u64;
    let mut dupes_discarded = 0u64;
    let mut store_evidence = 0u64;
    let mut retries_issued = 0u64;
    let mut downtime_ms = 0u64;
    let mut retry_runs = 0u64;

    for s in &scenarios {
        let mut out = run_netstate_scenario(s);
        if strict {
            let again = run_netstate_scenario(s);
            if again.digest != out.digest {
                out.violations.push(format!(
                    "nondeterministic: digest {:016x} vs {:016x} on re-run",
                    out.digest, again.digest
                ));
            }
        }
        *coverage.entry(fault_kind(&s.fault)).or_insert(0) += 1;
        commit_intents += out.commit_intents;
        dupes_discarded += out.dupes_discarded;
        store_evidence += out.store_evidence;
        retries_issued += out.retries_issued;
        downtime_ms += out.downtime_ms;
        retry_runs += u64::from(s.budgeted_retry);
        let done = TelemetryEvent::CampaignRunDone {
            run: s.run,
            digest: out.digest,
            violations: out.violations.len() as u32,
        };
        campaign_hash.on_event(&done);
        campaign_metrics.on_event(&done);
        if verbose {
            println!(
                "run {:>3}  {:<38} intents {:>5}  dupes {:>4}  evidence {:>3}  retries {:>4}  digest {:016x}  {}",
                s.run,
                describe(s),
                out.commit_intents,
                out.dupes_discarded,
                out.store_evidence,
                out.retries_issued,
                out.digest,
                if out.violations.is_empty() {
                    "ok".into()
                } else {
                    format!("VIOLATIONS: {}", out.violations.join("; "))
                }
            );
        }
        if !out.violations.is_empty() {
            failures.push((s.run, describe(s), out.violations));
        }
    }

    println!(
        "urb-chaos netstate: seed {seed}, {runs} run(s){}",
        if strict { ", strict" } else { "" }
    );
    let mut t = Table::new(&["fault kind", "runs"]);
    for (kind, n) in &coverage {
        t.row_owned(vec![(*kind).to_string(), n.to_string()]);
    }
    t.print();
    println!(
        "\ncommit intents: {commit_intents}; dupes discarded: {dupes_discarded}; \
         store evidence withheld: {store_evidence}; client retries: {retries_issued} \
         ({retry_runs} budgeted run(s)); degraded time: {downtime_ms} ms"
    );
    println!(
        "netstate campaign digest {:016x} over {} run(s), {} violation(s)",
        campaign_hash.value(),
        campaign_metrics.counter("campaign_runs_done"),
        campaign_metrics.counter("campaign_violations"),
    );

    if write_json {
        let mut r = JsonReport::new("netstate_integrity");
        r.metric("seed", seed);
        r.metric("runs", runs);
        r.metric(
            "violations",
            campaign_metrics.counter("campaign_violations"),
        );
        r.metric("commit_intents", commit_intents);
        r.metric("dupes_discarded", dupes_discarded);
        r.metric("store_evidence_withheld", store_evidence);
        r.metric("retries_issued", retries_issued);
        r.metric("budgeted_retry_runs", retry_runs);
        r.metric("downtime_ms", downtime_ms);
        r.metric("fault_kinds_covered", coverage.len() as u64);
        r.digest(campaign_hash.value());
        match r.write() {
            Ok(path) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write report: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if failures.is_empty() {
        println!("all session-integrity invariants held");
        ExitCode::SUCCESS
    } else {
        for (run, desc, violations) in &failures {
            eprintln!("run {run} ({desc}):");
            for v in violations {
                eprintln!("  - {v}");
            }
        }
        ExitCode::FAILURE
    }
}

/// The degraded (fail-slow) campaign: every run injects `Fault::Degraded`
/// with the performance plane armed, and convergence additionally
/// requires the performance-parity invariants — baseline frozen before
/// injection, the anomaly detected, the ladder escalating past warm
/// restarts, and post-recovery latency/throughput back within tolerance
/// of the frozen baseline.
fn degraded_main(args: &[String]) -> ExitCode {
    let mut seed = 7u64;
    let mut runs = 12u64;
    let mut only: Option<u64> = None;
    let mut strict = false;
    let mut verbose = false;
    let mut write_json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let parsed = match a.as_str() {
            "--seed" => it.next().map(|v| v.parse().map(|n| seed = n)),
            "--runs" => it.next().map(|v| v.parse().map(|n| runs = n)),
            "--only" => it.next().map(|v| v.parse().map(|n| only = Some(n))),
            "--strict" => {
                strict = true;
                continue;
            }
            "--verbose" => {
                verbose = true;
                continue;
            }
            "--json" => {
                write_json = true;
                continue;
            }
            _ => None,
        };
        match parsed {
            Some(Ok(())) => {}
            _ => {
                usage();
                return ExitCode::from(2);
            }
        }
    }

    let mut scenarios = campaign::degraded_scenarios(&CampaignConfig { seed, runs });
    if let Some(run) = only {
        scenarios.retain(|s| s.run == run);
    }
    let opts = RunOptions {
        perf: Some(workload::PerfConfig::default()),
        // Three times the classic client load: fail-slow detection is
        // statistical, and the degraded targets' ops need enough traffic
        // per judgement window (>= min_window_ops) to earn verdicts. The
        // classic campaigns keep the lighter load their digests pin.
        clients: 180,
        debug: only.is_some() && verbose,
        ..RunOptions::default()
    };
    let mut campaign_hash = TraceHashSink::new();
    let mut campaign_metrics = MetricsRegistry::new();
    let mut failures: Vec<(u64, String, Vec<String>)> = Vec::new();
    let mut depth_counts = [0u64; 5];
    let mut detection_ms: Vec<u64> = Vec::new();
    let mut parity_ms: Vec<u64> = Vec::new();
    let mut anomaly_windows = 0u64;

    for s in &scenarios {
        let mut out = run_scenario(s, &opts);
        if strict {
            let again = run_scenario(s, &opts);
            if again.digest != out.digest {
                out.violations.push(format!(
                    "nondeterministic: digest {:016x} vs {:016x} on re-run",
                    out.digest, again.digest
                ));
            }
        }
        let perf = out.perf.unwrap_or_default();
        depth_counts[usize::from(perf.escalation_depth.min(4))] += 1;
        detection_ms.extend(perf.detection_latency_ms);
        parity_ms.extend(perf.parity_after_ms);
        anomaly_windows += perf.anomalies;
        let done = TelemetryEvent::CampaignRunDone {
            run: s.run,
            digest: out.digest,
            violations: out.violations.len() as u32,
        };
        campaign_hash.on_event(&done);
        campaign_metrics.on_event(&done);
        if verbose {
            println!(
                "run {:>3}  {:<36} detect {:>6} ms  parity {:>7} ms  depth {:<15} digest {:016x}  {}",
                s.run,
                describe(s),
                perf.detection_latency_ms
                    .map_or("-".into(), |v| v.to_string()),
                perf.parity_after_ms.map_or("-".into(), |v| v.to_string()),
                depth_label(perf.escalation_depth),
                out.digest,
                if out.violations.is_empty() {
                    "ok".into()
                } else {
                    format!("VIOLATIONS: {}", out.violations.join("; "))
                }
            );
        }
        if !out.violations.is_empty() {
            failures.push((s.run, describe(s), out.violations));
        }
    }

    let mean = |v: &[u64]| {
        if v.is_empty() {
            0
        } else {
            v.iter().sum::<u64>() / v.len() as u64
        }
    };
    let max = |v: &[u64]| v.iter().copied().max().unwrap_or(0);
    println!(
        "urb-chaos degraded: seed {seed}, {runs} run(s){}",
        if strict { ", strict" } else { "" }
    );
    let mut t = Table::new(&["metric", "value"]);
    t.row_owned(vec![
        "detection latency (ms, mean/max)".into(),
        format!("{} / {}", mean(&detection_ms), max(&detection_ms)),
    ]);
    t.row_owned(vec![
        "parity restoration (ms, mean/max)".into(),
        format!("{} / {}", mean(&parity_ms), max(&parity_ms)),
    ]);
    t.row_owned(vec!["anomaly windows".into(), anomaly_windows.to_string()]);
    for (i, count) in depth_counts.iter().enumerate() {
        t.row_owned(vec![
            format!("escalation depth: {}", depth_label(i as u8)),
            count.to_string(),
        ]);
    }
    t.print();
    println!(
        "degraded campaign digest {:016x} over {} run(s), {} violation(s)",
        campaign_hash.value(),
        campaign_metrics.counter("campaign_runs_done"),
        campaign_metrics.counter("campaign_violations"),
    );

    if write_json {
        let mut r = JsonReport::new("degraded_parity");
        r.metric("seed", seed);
        r.metric("runs", runs);
        r.metric(
            "violations",
            campaign_metrics.counter("campaign_violations"),
        );
        r.metric("anomaly_windows", anomaly_windows);
        r.metric("detection_latency_ms_mean", mean(&detection_ms));
        r.metric("detection_latency_ms_max", max(&detection_ms));
        r.metric("parity_restore_ms_mean", mean(&parity_ms));
        r.metric("parity_restore_ms_max", max(&parity_ms));
        for (i, count) in depth_counts.iter().enumerate() {
            r.metric(&format!("escalation.{}", depth_label(i as u8)), *count);
        }
        r.digest(campaign_hash.value());
        match r.write() {
            Ok(path) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write report: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if failures.is_empty() {
        println!("all parity invariants held");
        ExitCode::SUCCESS
    } else {
        for (run, desc, violations) in &failures {
            eprintln!("run {run} ({desc}):");
            for v in violations {
                eprintln!("  - {v}");
            }
        }
        ExitCode::FAILURE
    }
}

fn campaign_main(args: &[String]) -> ExitCode {
    let mut seed = 7u64;
    let mut runs = 64u64;
    let mut only: Option<u64> = None;
    let mut strict = false;
    let mut verbose = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let parsed = match a.as_str() {
            "--seed" => it.next().map(|v| v.parse().map(|n| seed = n)),
            "--runs" => it.next().map(|v| v.parse().map(|n| runs = n)),
            "--only" => it.next().map(|v| v.parse().map(|n| only = Some(n))),
            "--strict" => {
                strict = true;
                continue;
            }
            "--verbose" => {
                verbose = true;
                continue;
            }
            _ => None,
        };
        match parsed {
            Some(Ok(())) => {}
            _ => {
                usage();
                return ExitCode::from(2);
            }
        }
    }

    let mut scenarios = campaign::scenarios(&CampaignConfig { seed, runs });
    if let Some(run) = only {
        scenarios.retain(|s| s.run == run);
    }
    let mut campaign_hash = TraceHashSink::new();
    let mut campaign_metrics = MetricsRegistry::new();
    let mut coverage: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut failures: Vec<(u64, String, Vec<String>)> = Vec::new();

    for s in &scenarios {
        let opts = RunOptions {
            debug: only.is_some() && verbose,
            ..RunOptions::default()
        };
        let mut out = run_scenario(s, &opts);
        if strict {
            let again = run_scenario(s, &RunOptions::default());
            if again.digest != out.digest {
                out.violations.push(format!(
                    "nondeterministic: digest {:016x} vs {:016x} on re-run",
                    out.digest, again.digest
                ));
            }
        }
        *coverage.entry(fault_kind(&s.fault)).or_insert(0) += 1;
        if let Some(second) = s.second {
            *coverage.entry(fault_kind(&second.fault)).or_insert(0) += 1;
        }
        let done = TelemetryEvent::CampaignRunDone {
            run: s.run,
            digest: out.digest,
            violations: out.violations.len() as u32,
        };
        campaign_hash.on_event(&done);
        campaign_metrics.on_event(&done);
        if verbose {
            println!(
                "run {:>4}  {:<44}  digest {:016x}  {}",
                s.run,
                describe(s),
                out.digest,
                if out.violations.is_empty() {
                    "ok".into()
                } else {
                    format!("VIOLATIONS: {}", out.violations.join("; "))
                }
            );
        }
        if !out.violations.is_empty() {
            failures.push((s.run, describe(s), out.violations));
        }
    }

    println!(
        "urb-chaos: seed {seed}, {runs} run(s){}",
        if strict { ", strict" } else { "" }
    );
    let mut t = Table::new(&["fault kind", "runs"]);
    for (kind, n) in &coverage {
        t.row_owned(vec![(*kind).to_string(), n.to_string()]);
    }
    t.print();
    println!(
        "\nfault kinds covered: {}; flapping runs: {}; second-fault runs: {}",
        coverage.len(),
        scenarios.iter().filter(|s| s.flap.is_some()).count(),
        scenarios.iter().filter(|s| s.second.is_some()).count(),
    );
    println!(
        "campaign digest {:016x} over {} run(s), {} violation(s)",
        campaign_hash.value(),
        campaign_metrics.counter("campaign_runs_done"),
        campaign_metrics.counter("campaign_violations"),
    );

    if failures.is_empty() {
        println!("all invariants held");
        ExitCode::SUCCESS
    } else {
        for (run, desc, violations) in &failures {
            eprintln!("run {run} ({desc}):");
            for v in violations {
                eprintln!("  - {v}");
            }
        }
        ExitCode::FAILURE
    }
}

fn tournament_main(args: &[String]) -> ExitCode {
    let mut opts = TournamentOptions {
        seed: 7,
        runs: 18,
        policies: PolicyChoice::ALL.to_vec(),
        strict: false,
        verbose: false,
    };
    let mut write_json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let parsed = match a.as_str() {
            "--seed" => it.next().map(|v| v.parse().map(|n| opts.seed = n)),
            "--runs" => it.next().map(|v| v.parse().map(|n| opts.runs = n)),
            "--policies" => match it.next() {
                Some(list) => {
                    let mut chosen = Vec::new();
                    for label in list.split(',') {
                        match PolicyChoice::from_label(label) {
                            Some(p) => chosen.push(p),
                            None => {
                                eprintln!("unknown policy {label:?}; known: {}", known_labels());
                                return ExitCode::from(2);
                            }
                        }
                    }
                    opts.policies = chosen;
                    Some(Ok(()))
                }
                None => None,
            },
            "--strict" => {
                opts.strict = true;
                continue;
            }
            "--verbose" => {
                opts.verbose = true;
                continue;
            }
            "--json" => {
                write_json = true;
                continue;
            }
            _ => None,
        };
        match parsed {
            Some(Ok(())) => {}
            _ => {
                usage();
                return ExitCode::from(2);
            }
        }
    }

    println!(
        "urb-chaos tournament: seed {}, {} run(s) x {} policies{}",
        opts.seed,
        opts.runs,
        opts.policies.len(),
        if opts.strict { ", strict" } else { "" }
    );
    let scores = chaos::tournament(&opts);

    let mut t = Table::new(&[
        "policy",
        "downtime (s)",
        "failed reqs",
        "reboot cost (s)",
        "pages",
        "violations",
        "digest",
        "pareto",
    ]);
    for s in &scores {
        t.row_owned(vec![
            s.policy.label().to_string(),
            format!("{:.1}", s.downtime_ms as f64 / 1000.0),
            s.failed_requests.to_string(),
            format!("{:.1}", s.reboot_cost_s),
            s.pages.to_string(),
            s.violations.to_string(),
            format!("{:016x}", s.digest),
            if s.pareto { "*" } else { "" }.to_string(),
        ]);
    }
    t.print();
    let frontier: Vec<&str> = scores
        .iter()
        .filter(|s| s.pareto)
        .map(|s| s.policy.label())
        .collect();
    println!("\nPareto frontier: {}", frontier.join(", "));

    if write_json {
        let mut r = JsonReport::new("policy_tournament");
        r.metric("seed", opts.seed);
        r.metric("runs_per_policy", opts.runs);
        r.metric("policies", opts.policies.len() as u64);
        for s in &scores {
            let l = s.policy.label();
            r.metric(&format!("{l}.downtime_ms"), s.downtime_ms);
            r.metric(&format!("{l}.failed_requests"), s.failed_requests);
            r.metric_f64(&format!("{l}.reboot_cost_s"), s.reboot_cost_s);
            r.metric(&format!("{l}.pages"), s.pages);
            r.metric(&format!("{l}.violations"), s.violations);
            r.text(&format!("{l}.digest"), &format!("{:016x}", s.digest));
            r.metric(&format!("{l}.pareto"), u64::from(s.pareto));
        }
        r.text("pareto_frontier", &frontier.join(","));
        match r.write() {
            Ok(path) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write report: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn known_labels() -> String {
    PolicyChoice::ALL
        .iter()
        .map(|p| p.label())
        .collect::<Vec<_>>()
        .join(", ")
}
