//! `urb-chaos` — deterministic fault-injection campaigns.
//!
//! Sweeps a seeded scenario space (fault kind × target × injection time ×
//! optional second fault mid-recovery × flapping schedule × detector kind
//! × recovery-manager concurrency), runs each scenario through the
//! cluster simulation with the hardened recovery policy, and asserts the
//! recovery-convergence invariants on every run:
//!
//! * the failure episode terminates — no recovery left in flight, no
//!   conductor ticket active or queued, the node back up, no hung
//!   requests surviving the run;
//! * every begun reboot finished, and every manager decision was
//!   acknowledged exactly once (`in_flight == 0` at quiescence);
//! * quarantine is always lifted once recovery converges;
//! * goodput returns to a fraction of its pre-fault rate, for every
//!   fault class whose damage a reboot can actually undo;
//! * with `--strict`, each scenario re-runs and must reproduce its trace
//!   digest bit-for-bit.
//!
//! Each run folds into a `CampaignRunDone` telemetry event; the campaign
//! digest is the FNV fold of those events, so the whole campaign is
//! reproducible from `(seed, runs)` alone.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::rc::Rc;

use bench::Table;
use cluster::{LogEvent, Sim, SimConfig, StoreChoice};
use faults::campaign::{self, CampaignConfig, Scenario};
use faults::Fault;
use recovery::conductor::ConductorConfig;
use recovery::RmConfig;
use simcore::telemetry::{shared_bus, TelemetrySink, TraceHashSink};
use simcore::{MetricsRegistry, SimDuration, SimTime, TelemetryEvent};
use workload::DetectorKind;

/// Emulated clients per node. Smaller than the paper's 500 so a
/// multi-hundred-run campaign stays fast; plenty for the detectors.
const CLIENTS: usize = 60;
/// Quiet tail after the last scheduled injection before invariants are
/// checked. Sized for the slowest legitimate convergence: a low-level
/// fault that burns up the whole ladder (several useless microreboots
/// and process restarts, each followed by a fresh OOM) before the 109 s
/// OS reboot finally cures it, plus the 30 s request TTL.
const TAIL_S: u64 = 300;
/// Extra grace, stepped through in 5 s slices, for runs still converging
/// at the horizon. Exhausting it is an invariant violation.
const GRACE_S: u64 = 600;
/// Consecutive 5 s samples that must all report quiescence before the
/// run is declared converged — a node mid leak-OOM-restart cycle looks
/// healthy in any single sample.
const STABLE_SAMPLES: u32 = 6;

fn usage() {
    eprintln!("usage: urb-chaos [--seed N] [--runs M] [--strict] [--verbose] [--only RUN]");
}

fn main() -> ExitCode {
    let mut seed = 7u64;
    let mut runs = 64u64;
    let mut only: Option<u64> = None;
    let mut strict = false;
    let mut verbose = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let parsed = match a.as_str() {
            "--seed" => it.next().map(|v| v.parse().map(|n| seed = n)),
            "--runs" => it.next().map(|v| v.parse().map(|n| runs = n)),
            "--only" => it.next().map(|v| v.parse().map(|n| only = Some(n))),
            "--strict" => {
                strict = true;
                continue;
            }
            "--verbose" => {
                verbose = true;
                continue;
            }
            _ => None,
        };
        match parsed {
            Some(Ok(())) => {}
            _ => {
                usage();
                return ExitCode::from(2);
            }
        }
    }

    let mut scenarios = campaign::scenarios(&CampaignConfig { seed, runs });
    if let Some(run) = only {
        scenarios.retain(|s| s.run == run);
    }
    let mut campaign_hash = TraceHashSink::new();
    let mut campaign_metrics = MetricsRegistry::new();
    let mut coverage: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut failures: Vec<(u64, String, Vec<String>)> = Vec::new();

    for s in &scenarios {
        let debug = only.is_some() && verbose;
        let mut out = run_scenario(s, debug);
        if strict {
            let again = run_scenario(s, false);
            if again.digest != out.digest {
                out.violations.push(format!(
                    "nondeterministic: digest {:016x} vs {:016x} on re-run",
                    out.digest, again.digest
                ));
            }
        }
        *coverage.entry(fault_kind(&s.fault)).or_insert(0) += 1;
        if let Some(second) = s.second {
            *coverage.entry(fault_kind(&second.fault)).or_insert(0) += 1;
        }
        let done = TelemetryEvent::CampaignRunDone {
            run: s.run,
            digest: out.digest,
            violations: out.violations.len() as u32,
        };
        campaign_hash.on_event(&done);
        campaign_metrics.on_event(&done);
        if verbose {
            println!(
                "run {:>4}  {:<44}  digest {:016x}  {}",
                s.run,
                describe(s),
                out.digest,
                if out.violations.is_empty() {
                    "ok".into()
                } else {
                    format!("VIOLATIONS: {}", out.violations.join("; "))
                }
            );
        }
        if !out.violations.is_empty() {
            failures.push((s.run, describe(s), out.violations));
        }
    }

    println!(
        "urb-chaos: seed {seed}, {runs} run(s){}",
        if strict { ", strict" } else { "" }
    );
    let mut t = Table::new(&["fault kind", "runs"]);
    for (kind, n) in &coverage {
        t.row_owned(vec![(*kind).to_string(), n.to_string()]);
    }
    t.print();
    println!(
        "\nfault kinds covered: {}; flapping runs: {}; second-fault runs: {}",
        coverage.len(),
        scenarios.iter().filter(|s| s.flap.is_some()).count(),
        scenarios.iter().filter(|s| s.second.is_some()).count(),
    );
    println!(
        "campaign digest {:016x} over {} run(s), {} violation(s)",
        campaign_hash.value(),
        campaign_metrics.counter("campaign_runs_done"),
        campaign_metrics.counter("campaign_violations"),
    );

    if failures.is_empty() {
        println!("all invariants held");
        ExitCode::SUCCESS
    } else {
        for (run, desc, violations) in &failures {
            eprintln!("run {run} ({desc}):");
            for v in violations {
                eprintln!("  - {v}");
            }
        }
        ExitCode::FAILURE
    }
}

/// Short scenario description for reports.
fn describe(s: &Scenario) -> String {
    format!(
        "{}{}{} [{}{}]",
        fault_kind(&s.fault),
        s.second
            .map(|sf| format!("+2nd({})", fault_kind(&sf.fault)))
            .unwrap_or_default(),
        if s.flap.is_some() { "+flap" } else { "" },
        if s.comparison_detector {
            "cmp"
        } else {
            "simple"
        },
        if s.parallel_rm { ",par" } else { "" },
    )
}

/// Stable label for coverage accounting.
fn fault_kind(f: &Fault) -> &'static str {
    match f {
        Fault::Deadlock { .. } => "deadlock",
        Fault::InfiniteLoop { .. } => "infinite-loop",
        Fault::AppMemoryLeak { .. } => "app-memory-leak",
        Fault::TransientException { .. } => "transient-exception",
        Fault::Intermittent { .. } => "intermittent",
        Fault::SpuriousReports { .. } => "spurious-reports",
        Fault::CorruptPrimaryKeys { .. } => "corrupt-primary-keys",
        Fault::CorruptJndi { .. } => "corrupt-jndi",
        Fault::CorruptTxnMap { .. } => "corrupt-txn-map",
        Fault::CorruptBeanAttrs { .. } => "corrupt-bean-attrs",
        Fault::CorruptFastS { .. } => "corrupt-fasts",
        Fault::CorruptSsm => "corrupt-ssm",
        Fault::CorruptDb { .. } => "corrupt-db",
        Fault::MemLeakIntraJvm { .. } => "memleak-intra-jvm",
        Fault::MemLeakExtraJvm { .. } => "memleak-extra-jvm",
        Fault::BitFlipMemory => "bitflip-memory",
        Fault::BitFlipRegisters => "bitflip-registers",
        Fault::BadSyscalls => "bad-syscalls",
    }
}

/// The hardened recovery-manager configuration every campaign run uses:
/// storm damper, flap escalation and convergence watchdog all armed.
fn hardened_rm(parallel: bool) -> RmConfig {
    RmConfig {
        max_concurrent: if parallel { 4 } else { 1 },
        // A fault on a rarely-exercised op produces evidence at well under
        // one report per default window; a wider window lets sparse
        // evidence aggregate. Safe against self-flapping: scores are
        // cleared when an episode closes, and aftershocks are
        // settle-suppressed on ingest.
        score_window: SimDuration::from_secs(90),
        storm_limit: 3,
        storm_backoff: SimDuration::from_secs(10),
        flap_limit: 3,
        flap_window: SimDuration::from_secs(300),
        watchdog_bound: Some(SimDuration::from_secs(180)),
        ..RmConfig::default()
    }
}

struct RunOutcome {
    digest: u64,
    violations: Vec<String>,
}

/// How long a request may stay hung before it counts as stuck: the
/// server's TTL lease plus a couple of maintenance sweeps of slack. A
/// fault on a rarely-exercised component can legitimately outlive the
/// campaign horizon undetected (too few failures to cross the score
/// threshold — the Figure 5 sensitivity tradeoff); the system guarantee
/// is that the lease sweep still reaps every stuck thread on time.
fn hung_bound() -> SimDuration {
    urb_core::calib::REQUEST_TTL + SimDuration::from_secs(5)
}

/// True while recovery machinery is still busy on node 0.
fn quiesced(sim: &Sim) -> bool {
    let w = sim.world();
    w.rm.as_ref().is_none_or(|rm| rm.in_flight(0) == 0)
        && w.conductor
            .as_ref()
            .is_none_or(|c| c.active_count(0) == 0 && c.queued_count(0) == 0)
        && w.nodes[0].is_up()
        && w.nodes[0]
            .oldest_hung_age(sim.now())
            .is_none_or(|age| age <= hung_bound())
}

fn run_scenario(s: &Scenario, debug: bool) -> RunOutcome {
    // SSM corruption needs the SSM backend to exist; everything else runs
    // on the default node-private FastS store.
    let wants_ssm = matches!(s.fault, Fault::CorruptSsm)
        || s.second
            .is_some_and(|sf| matches!(sf.fault, Fault::CorruptSsm));
    let mut sim = Sim::new(SimConfig {
        nodes: 1,
        clients_per_node: CLIENTS,
        store: if wants_ssm {
            StoreChoice::Ssm
        } else {
            StoreChoice::FastS
        },
        detector: if s.comparison_detector {
            DetectorKind::Comparison
        } else {
            DetectorKind::Simple
        },
        rm: Some(hardened_rm(s.parallel_rm)),
        conductor: s.parallel_rm.then(ConductorConfig::default),
        seed: s.sim_seed,
        ..SimConfig::default()
    });
    let bus = shared_bus();
    let hash = Rc::new(RefCell::new(TraceHashSink::new()));
    let metrics = Rc::new(RefCell::new(MetricsRegistry::new()));
    bus.borrow_mut().add_sink(Box::new(hash.clone()));
    bus.borrow_mut().add_sink(Box::new(metrics.clone()));
    sim.attach_telemetry(bus);

    sim.schedule_fault(SimTime::from_secs(s.inject_at_s), 0, s.fault);
    let mut last_injection_s = s.inject_at_s;
    if let Some(second) = s.second {
        sim.schedule_fault(SimTime::from_secs(second.at_s), 0, second.fault);
        last_injection_s = last_injection_s.max(second.at_s);
    }
    if let Some(flap) = s.flap {
        let fault = s.fault;
        for k in 1..=u64::from(flap.recurrences) {
            let at_s = s.inject_at_s + k * flap.gap_s;
            last_injection_s = last_injection_s.max(at_s);
            // Re-arm through the escape hatch: a flapping fault recurs
            // only on a live server (re-injecting into a mid-reboot node
            // would be cured by the reboot's own state teardown anyway).
            sim.schedule_fn(SimTime::from_secs(at_s), move |w, q| {
                if !w.nodes[0].is_up() {
                    return;
                }
                let now = q.now();
                w.log.push(LogEvent::FaultInjected {
                    at: now,
                    node: 0,
                    label: format!("flap re-arm {fault:?}"),
                });
                let killed = faults::inject(&mut w.nodes[0], &fault, now);
                debug_assert!(
                    killed.is_empty(),
                    "flappable faults kill nothing on injection"
                );
            });
        }
    }

    let horizon_s = last_injection_s + TAIL_S;
    sim.run_until(SimTime::from_secs(horizon_s));
    let mut end_s = horizon_s;
    let mut stable = if quiesced(&sim) { 1 } else { 0 };
    while stable < STABLE_SAMPLES && end_s < horizon_s + GRACE_S {
        end_s += 5;
        sim.run_until(SimTime::from_secs(end_s));
        stable = if quiesced(&sim) { stable + 1 } else { 0 };
    }

    let mut violations = Vec::new();
    {
        let w = sim.world();
        if let Some(rm) = &w.rm {
            let in_flight = rm.in_flight(0);
            if in_flight != 0 {
                violations.push(format!(
                    "{in_flight} recovery decision(s) never acknowledged"
                ));
            }
        }
        if let Some(c) = &w.conductor {
            let (active, queued) = (c.active_count(0), c.queued_count(0));
            if active + queued != 0 {
                violations.push(format!(
                    "conductor not idle: {active} active, {queued} queued ticket(s)"
                ));
            }
            let quarantined = c.quarantined(0);
            if !quarantined.is_empty() {
                violations.push(format!("quarantine never lifted: {quarantined:?}"));
            }
        }
        if !w.nodes[0].is_up() {
            violations.push(format!("node down at end: {:?}", w.nodes[0].state()));
        }
        if let Some(age) = w.nodes[0].oldest_hung_age(sim.now()) {
            if age > hung_bound() {
                violations.push(format!(
                    "request stuck in pipeline for {:.1}s, past the TTL sweep bound",
                    age.as_secs_f64()
                ));
            }
        }
    }
    let m = metrics.borrow();
    let (begun, finished) = (m.counter("reboots_begun"), m.counter("reboots_finished"));
    if begun != finished {
        violations.push(format!("{begun} reboot(s) begun but {finished} finished"));
    }

    let world = sim.finish();
    if debug {
        for ev in &world.log {
            println!("  {ev:?}");
        }
    }
    if expect_goodput_recovery(s) && s.inject_at_s > 4 && violations.is_empty() {
        let taw = world.pool.taw_ref();
        let pre_window = s.inject_at_s - 3;
        let pre_rate = taw.good_in(3, s.inject_at_s) / pre_window as f64;
        let post_rate = taw.good_in(end_s - 30, end_s) / 30.0;
        if pre_rate > 0.0 && post_rate < 0.5 * pre_rate {
            violations.push(format!(
                "goodput never recovered: {post_rate:.1} op/s at end vs {pre_rate:.1} op/s pre-fault"
            ));
        }
    }

    let digest = hash.borrow().value();
    RunOutcome { digest, violations }
}

/// Whether the availability invariant applies: reboot-curable damage
/// only. Structural invariants (termination, ack conservation, lifted
/// quarantine) apply to every run regardless.
fn expect_goodput_recovery(s: &Scenario) -> bool {
    campaign::goodput_recovers(&s.fault)
        && s.second
            .is_none_or(|sf| campaign::goodput_recovers(&sf.fault))
}
