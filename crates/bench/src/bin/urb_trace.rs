//! `urb-trace` — inspect deterministic JSONL telemetry traces.
//!
//! Turns the opaque FNV trace digest into an actionable view of what a
//! run's recovery actually looked like, per episode and per second:
//!
//! * `urb-trace record <out.jsonl> [--seed N]` — run the standard seeded
//!   fault scenario (two simulated minutes, a transient exception in
//!   `BrowseCategories` at t=60 s, automatic recovery) and write its
//!   full trace, so CI and the other subcommands have a cheap input;
//!   `--degraded` records the fail-slow scenario instead (performance
//!   plane armed, a 4x slowdown injected at t=40 s) so the summary and
//!   timeline views have anomaly and parity marks to show;
//! * `urb-trace summary <trace.jsonl>` — one row per recovery episode:
//!   trigger, rung, duration, lost work, paper-style Taw dip;
//! * `urb-trace timeline <trace.jsonl>` — per-second availability in the
//!   style of the paper's Figures 1/2/4/6;
//! * `urb-trace diff <a.jsonl> <b.jsonl>` — first diverging event plus
//!   per-kind count deltas (exit 1 when the traces diverge);
//! * `urb-trace verify <trace.jsonl> [--strict]` — recompute the FNV
//!   digest and check it against the `meta` line (exit 1 on mismatch);
//!   with `--strict`, also re-run episode assembly and fail unless every
//!   event is attributed to an episode or to steady state.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;
use std::rc::Rc;

use bench::Table;
use cluster::{Sim, SimConfig};
use faults::Fault;
use recovery::RmConfig;
use simcore::metrics::level_suffix;
use simcore::telemetry::shared_bus;
use simcore::trace::{
    assemble_episodes, availability_timeline, event_kind, event_to_json, taw_dip, KernelGauges,
    Trace, TraceRecorder,
};
use simcore::{MetricsRegistry, QuantileSketch, SimTime, TelemetryEvent};
use workload::FunctionalGroup;

fn usage() {
    eprintln!(
        "usage:\n  \
         urb-trace record <out.jsonl> [--seed N] [--degraded]\n  \
         urb-trace summary <trace.jsonl>\n  \
         urb-trace timeline <trace.jsonl>\n  \
         urb-trace diff <a.jsonl> <b.jsonl>\n  \
         urb-trace verify <trace.jsonl> [--strict]"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("record") => cmd_record(&args[1..]),
        Some("summary") => cmd_summary(&args[1..]),
        Some("timeline") => cmd_timeline(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        _ => {
            usage();
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("urb-trace: {msg}");
            ExitCode::from(2)
        }
    }
}

fn load(path: &str) -> Result<Trace, String> {
    Trace::read_from(Path::new(path))
}

// ---------------------------------------------------------------------------
// record
// ---------------------------------------------------------------------------

/// The standard seeded scenario (mirrors the `telemetry_trace` digest-pin
/// test): two simulated minutes, 500 clients on one node, a transient
/// exception injected into `BrowseCategories` at t=60 s, recovery via the
/// default recovery-manager policy.
fn cmd_record(args: &[String]) -> Result<ExitCode, String> {
    let out = args.first().ok_or("record needs an output path")?;
    let mut seed = 7;
    let mut degraded = false;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--degraded" => degraded = true,
            other => return Err(format!("unknown record flag {other}")),
        }
    }

    let mut sim = if degraded {
        // The fail-slow scenario (mirrors the `degraded_episode` golden
        // test): triple client load for window density, the performance
        // plane armed, a 4x slowdown on the hot search path at t=40 s.
        Sim::new(SimConfig {
            seed,
            clients_per_node: 180,
            detector: workload::DetectorKind::LatencyAnomaly,
            perf: Some(workload::PerfConfig::default()),
            rm: Some(RmConfig::default()),
            ..SimConfig::default()
        })
    } else {
        Sim::new(SimConfig {
            seed,
            rm: Some(RmConfig::default()),
            ..SimConfig::default()
        })
    };
    let bus = shared_bus();
    let recorder = Rc::new(RefCell::new(TraceRecorder::new()));
    bus.borrow_mut().add_sink(Box::new(recorder.clone()));
    sim.attach_telemetry(bus);
    if degraded {
        sim.schedule_fault(
            SimTime::from_secs(40),
            0,
            Fault::Degraded {
                component: "SearchItemsByCategory",
                factor_permille: 4000,
            },
        );
        sim.run_until(SimTime::from_secs(420));
    } else {
        sim.schedule_fault(
            SimTime::from_mins(1),
            0,
            Fault::TransientException {
                component: "BrowseCategories",
                calls: 30,
            },
        );
        sim.run_until(SimTime::from_mins(2));
    }

    // Stamp the kernel's end-of-run health onto the meta line so
    // `summary` can surface it offline. Only the deterministic gauges go
    // in; wall-clock throughput stays a live-run concern.
    let mut reg = MetricsRegistry::new();
    sim.record_kernel_gauges(&mut reg, None);
    sim.finish();
    let mut trace = Trace::from_events(recorder.borrow().events().to_vec());
    trace.kernel = Some(KernelGauges {
        events_fired: reg.gauge("des_events_fired") as u64,
        queue_depth: reg.gauge("des_queue_depth") as u64,
        sim_micros: (reg.gauge("sim_seconds") * 1e6).round() as u64,
    });
    trace
        .write_to(Path::new(out))
        .map_err(|e| format!("{out}: {e}"))?;
    println!(
        "recorded {} events (seed {seed}, digest {:016x}, {} episodes) to {out}",
        trace.events.len(),
        trace.digest,
        assemble_episodes(&trace.events).len()
    );
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------
// summary
// ---------------------------------------------------------------------------

fn cmd_summary(args: &[String]) -> Result<ExitCode, String> {
    let path = args.first().ok_or("summary needs a trace path")?;
    let trace = load(path)?;
    let episodes = assemble_episodes(&trace.events);
    let timeline = availability_timeline(&trace.events);

    println!(
        "{path}: {} events, digest {:016x}, {} recovery episode(s)\n",
        trace.events.len(),
        trace.digest,
        episodes.len()
    );
    if let Some(k) = trace.kernel {
        let sim_s = k.sim_micros as f64 / 1e6;
        let rate = if sim_s > 0.0 {
            k.events_fired as f64 / sim_s
        } else {
            0.0
        };
        println!(
            "DES kernel: {} events fired, {} pending at exit, {sim_s:.1} sim-seconds \
             ({rate:.0} events/sim-second)\n",
            k.events_fired, k.queue_depth
        );
    }
    print_latency_table(&trace.events);
    print_perf_marks(&trace.events);
    if episodes.is_empty() {
        return Ok(ExitCode::SUCCESS);
    }

    let mut t = Table::new(&[
        "#",
        "node",
        "trigger",
        "rung",
        "begun (s)",
        "reboot (ms)",
        "detect->ok (ms)",
        "killed",
        "failed",
        "retried",
        "lost",
        "Taw dip",
    ]);
    for (i, ep) in episodes.iter().enumerate() {
        t.row_owned(vec![
            i.to_string(),
            ep.node.to_string(),
            ep.trigger(),
            level_suffix(ep.level).to_string(),
            format!("{:.3}", ep.begun_at.as_secs_f64()),
            format!("{:.1}", ep.duration.as_millis_f64()),
            ep.detection_to_recovery()
                .map(|d| format!("{:.1}", d.as_millis_f64()))
                .unwrap_or_else(|| "-".into()),
            ep.killed.to_string(),
            ep.failed.to_string(),
            ep.retried.to_string(),
            ep.lost_work().to_string(),
            format!("{:.1}%", 100.0 * taw_dip(&timeline, ep)),
        ]);
    }
    t.print();
    Ok(ExitCode::SUCCESS)
}

/// Client-observed latency quantiles per functional group, replayed from
/// the trace's `ClientOp` events through the same streaming sketch the
/// live performance plane uses.
fn print_latency_table(events: &[simcore::TelemetryEvent]) {
    let mut sketches: BTreeMap<u8, QuantileSketch> = BTreeMap::new();
    for ev in events {
        if let TelemetryEvent::ClientOp {
            group,
            started_at,
            finished_at,
            ok: true,
            ..
        } = *ev
        {
            sketches
                .entry(group)
                .or_default()
                .observe((finished_at - started_at).as_micros());
        }
    }
    if sketches.is_empty() {
        return;
    }
    println!("client-observed latency by functional group (successful ops):\n");
    let mut t = Table::new(&["group", "ops", "p50 (ms)", "p95 (ms)", "p99 (ms)"]);
    for (code, sketch) in &sketches {
        let label = FunctionalGroup::from_code(*code)
            .map(|g| g.label().to_string())
            .unwrap_or_else(|| format!("group {code}"));
        t.row_owned(vec![
            label,
            sketch.count().to_string(),
            format!("{:.1}", sketch.quantile(0.50) as f64 / 1000.0),
            format!("{:.1}", sketch.quantile(0.95) as f64 / 1000.0),
            format!("{:.1}", sketch.quantile(0.99) as f64 / 1000.0),
        ]);
    }
    t.print();
    println!();
}

/// The performance plane's marks, when the trace contains any: baseline
/// freezes, degraded injections, confirmed anomalies and parity
/// restorations — when performance, not just liveness, recovered.
fn print_perf_marks(events: &[simcore::TelemetryEvent]) {
    let mut lines = Vec::new();
    let mut anomalies = 0u64;
    let mut first_anomaly: Option<(SimTime, usize, u32)> = None;
    for ev in events {
        match *ev {
            TelemetryEvent::PerfBaselineFrozen {
                node,
                components,
                at,
            } => lines.push(format!(
                "baseline frozen at {:.3} s (node {node}, {components} ops)",
                at.as_secs_f64()
            )),
            TelemetryEvent::DegradedInjected {
                node,
                factor_permille,
                at,
            } => lines.push(format!(
                "degraded injected at {:.3} s (node {node}, {:.1}x service time)",
                at.as_secs_f64(),
                f64::from(factor_permille) / 1000.0
            )),
            TelemetryEvent::LatencyAnomaly {
                node,
                op,
                ratio_permille,
                at,
            } => {
                anomalies += 1;
                if first_anomaly.is_none() {
                    first_anomaly = Some((at, node, ratio_permille));
                    lines.push(format!(
                        "first latency anomaly at {:.3} s (node {node}, op {op}, {:.1}x baseline)",
                        at.as_secs_f64(),
                        f64::from(ratio_permille) / 1000.0
                    ));
                }
            }
            TelemetryEvent::ParityRestored { node, after, at } => lines.push(format!(
                "parity restored at {:.3} s (node {node}, {:.1} s after first anomaly)",
                at.as_secs_f64(),
                after.as_secs_f64()
            )),
            _ => {}
        }
    }
    if lines.is_empty() {
        return;
    }
    println!("performance plane ({anomalies} anomaly window(s)):");
    for line in &lines {
        println!("  {line}");
    }
    println!();
}

// ---------------------------------------------------------------------------
// timeline
// ---------------------------------------------------------------------------

fn cmd_timeline(args: &[String]) -> Result<ExitCode, String> {
    let path = args.first().ok_or("timeline needs a trace path")?;
    let trace = load(path)?;
    let timeline = availability_timeline(&trace.events);
    if timeline.is_empty() {
        println!("{path}: no client operations in trace");
        return Ok(ExitCode::SUCCESS);
    }
    // One annotation set per second: reboot boundaries (liveness
    // recovery) plus the performance plane's marks (fail-slow injection,
    // anomaly confirmation, parity restoration). A `BTreeSet` dedups the
    // several per-op anomaly events a single window close can emit.
    let mut marks_by_second: BTreeMap<u64, std::collections::BTreeSet<&'static str>> =
        BTreeMap::new();
    for ev in &trace.events {
        let mark = match *ev {
            simcore::TelemetryEvent::RebootBegun { at, .. } => Some((at, "<reboot begun")),
            simcore::TelemetryEvent::RebootFinished { at, .. } => Some((at, "<reboot done")),
            simcore::TelemetryEvent::DegradedInjected { at, .. } => {
                Some((at, "<degraded injected"))
            }
            simcore::TelemetryEvent::LatencyAnomaly { at, .. } => Some((at, "<latency anomaly")),
            simcore::TelemetryEvent::ParityRestored { at, .. } => Some((at, "<parity restored")),
            // The netstate plane's marks: store bricks dying and coming
            // back, leases expiring en masse, link faults arming/healing.
            simcore::TelemetryEvent::BrickFailed { at, .. } => Some((at, "<brick failed")),
            simcore::TelemetryEvent::BrickRestored { at, .. } => Some((at, "<brick restored")),
            simcore::TelemetryEvent::LeaseExpired { at, .. } => Some((at, "<lease expired")),
            simcore::TelemetryEvent::NetFaultInjected { at, .. } => {
                Some((at, "<net fault injected"))
            }
            simcore::TelemetryEvent::NetFaultHealed { at, .. } => Some((at, "<net fault healed")),
            _ => None,
        };
        if let Some((at, label)) = mark {
            marks_by_second
                .entry(at.second_index())
                .or_default()
                .insert(label);
        }
    }
    println!("{path}: per-second client-observed availability (idle seconds omitted)\n");
    println!(
        "{:>5}  {:>5}  {:>5}  {:>6}  {:<40}",
        "sec", "ok", "fail", "avail", ""
    );
    for cell in timeline.iter().filter(|c| c.ok + c.fail > 0) {
        let avail = cell.availability();
        let bar = "#".repeat((avail * 40.0).round() as usize);
        let marks: String = marks_by_second
            .get(&cell.second)
            .map(|set| {
                set.iter()
                    .map(|label| format!(" {label}"))
                    .collect::<String>()
            })
            .unwrap_or_default();
        println!(
            "{:>5}  {:>5}  {:>5}  {:>5.1}%  {bar}{marks}",
            cell.second,
            cell.ok,
            cell.fail,
            avail * 100.0
        );
    }
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let [a_path, b_path] = args else {
        return Err("diff needs exactly two trace paths".into());
    };
    let a = load(a_path)?;
    let b = load(b_path)?;

    println!(
        "a: {a_path} ({} events, digest {:016x})",
        a.events.len(),
        a.digest
    );
    println!(
        "b: {b_path} ({} events, digest {:016x})",
        b.events.len(),
        b.digest
    );

    if a.digest == b.digest && a.events == b.events {
        println!("\ntraces are identical: zero divergence");
        return Ok(ExitCode::SUCCESS);
    }

    // First diverging event, by position in emission order.
    let first = a
        .events
        .iter()
        .zip(&b.events)
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.events.len().min(b.events.len()));
    println!("\nfirst divergence at event index {first}:");
    match (a.events.get(first), b.events.get(first)) {
        (Some(x), Some(y)) => {
            println!("  a: {}", event_to_json(x));
            println!("  b: {}", event_to_json(y));
        }
        (Some(x), None) => println!("  a: {}\n  b: <end of trace>", event_to_json(x)),
        (None, Some(y)) => println!("  a: <end of trace>\n  b: {}", event_to_json(y)),
        (None, None) => println!("  (event streams equal; digests differ in meta only)"),
    }

    // Per-kind count deltas.
    let mut kinds: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for ev in &a.events {
        kinds.entry(event_kind(ev)).or_insert((0, 0)).0 += 1;
    }
    for ev in &b.events {
        kinds.entry(event_kind(ev)).or_insert((0, 0)).1 += 1;
    }
    println!("\nper-kind event counts:");
    let mut t = Table::new(&["kind", "a", "b", "delta"]);
    for (kind, (na, nb)) in &kinds {
        t.row_owned(vec![
            (*kind).to_string(),
            na.to_string(),
            nb.to_string(),
            if na == nb {
                "=".into()
            } else {
                format!("{:+}", *nb as i64 - *na as i64)
            },
        ]);
    }
    t.print();
    Ok(ExitCode::FAILURE)
}

// ---------------------------------------------------------------------------
// verify
// ---------------------------------------------------------------------------

fn cmd_verify(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut strict = false;
    for arg in args {
        match arg.as_str() {
            "--strict" => strict = true,
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("verify: unexpected argument {other:?}")),
        }
    }
    let path = path.ok_or("verify needs a trace path")?;
    let trace = load(&path)?;
    let recomputed = trace.recomputed_digest();
    if recomputed != trace.digest {
        eprintln!(
            "{path}: DIGEST MISMATCH — meta declares {:016x}, events hash to {recomputed:016x}",
            trace.digest
        );
        return Ok(ExitCode::FAILURE);
    }
    if strict {
        let report = simcore::trace::strict_attribution(&trace.events);
        if !report.is_fully_attributed() {
            eprintln!(
                "{path}: STRICT FAILURE — {} event(s) belong to neither an episode nor steady state:",
                report.unattributed.len()
            );
            for (idx, kind) in report.unattributed.iter().take(10) {
                eprintln!("  event #{idx}: {kind}");
            }
            if report.unattributed.len() > 10 {
                eprintln!("  … and {} more", report.unattributed.len() - 10);
            }
            return Ok(ExitCode::FAILURE);
        }
        let attributed: u64 = report.per_episode.iter().sum();
        println!(
            "{path}: OK — {} events, digest {:016x} matches; strict: {} episode(s), {} episode-attributed, {} steady",
            trace.events.len(),
            trace.digest,
            report.episodes.len(),
            attributed,
            report.steady
        );
    } else {
        println!(
            "{path}: OK — {} events, digest {:016x} matches",
            trace.events.len(),
            trace.digest
        );
    }
    Ok(ExitCode::SUCCESS)
}
