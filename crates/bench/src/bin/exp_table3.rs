//! Table 3 — average recovery times under load.
//!
//! Microreboots each eBid component 10 times on a single-node system under
//! sustained load from 500 concurrent clients and reports the average
//! total/crash/reinit times, then does the same for the whole application,
//! the JVM process, and (beyond the paper's table) the OS.

use bench::report::banner;
use bench::Table;
use cluster::{LogEvent, Sim, SimConfig};
use recovery::RecoveryAction;
use simcore::{SimDuration, SimTime};

/// The paper's Table 3 rows: (component, µRB ms, crash ms, reinit ms).
const PAPER: [(&str, u64, u64, u64); 23] = [
    ("AboutMe", 551, 9, 542),
    ("Authenticate", 491, 12, 479),
    ("BrowseCategories", 411, 11, 400),
    ("BrowseRegions", 416, 15, 401),
    ("BuyNow", 471, 9, 462),
    ("CommitBid", 533, 8, 525),
    ("CommitBuyNow", 471, 9, 462),
    ("CommitUserFeedback", 531, 9, 522),
    ("DoBuyNow", 427, 10, 417),
    ("Item", 825, 36, 789), // EntityGroup, reached via any member
    ("IdentityManager", 461, 10, 451),
    ("LeaveUserFeedback", 484, 10, 474),
    ("MakeBid", 514, 9, 505),
    ("OldItem", 529, 10, 519),
    ("RegisterNewItem", 447, 13, 434),
    ("RegisterNewUser", 601, 13, 588),
    ("SearchItemsByCategory", 442, 14, 428),
    ("SearchItemsByRegion", 572, 8, 564),
    ("UserFeedback", 483, 11, 472),
    ("ViewBidHistory", 507, 11, 496),
    ("ViewUserInfo", 415, 10, 405),
    ("ViewItem", 446, 10, 436),
    ("WAR", 1028, 71, 957),
];

fn measure_microreboots(component: &'static str, trials: u32) -> (f64, f64, f64) {
    let mut sim = Sim::new(SimConfig::default());
    // One microreboot every 20 s, under steady 500-client load.
    for i in 0..trials {
        sim.schedule_recovery(
            SimTime::from_secs(60 + 20 * i as u64),
            0,
            RecoveryAction::microreboot(&[component]),
        );
    }
    sim.run_until(SimTime::from_secs(60 + 20 * trials as u64));
    let world = sim.finish();
    let mut total_ms = 0.0;
    let mut n = 0u32;
    for e in &world.log {
        if let LogEvent::RecoveryFinished {
            at,
            started,
            action,
            ..
        } = e
        {
            if action.starts_with("microreboot") {
                total_ms += (*at - *started).as_millis_f64();
                n += 1;
            }
        }
    }
    let avg = if n > 0 { total_ms / n as f64 } else { 0.0 };
    // Crash time is the calibrated group cost; reinit is the (jittered)
    // remainder.
    let crash = {
        let server = &world.nodes[0];
        let graph = server.graph();
        let id = graph.id_of(component).expect("known component");
        let group = graph.recovery_group(id);
        let max_crash = group
            .iter()
            .map(|m| {
                server
                    .container(graph.name_of(*m))
                    .expect("container exists")
                    .descriptor
                    .crash_cost
            })
            .fold(SimDuration::ZERO, SimDuration::max);
        (max_crash + urb_core::calib::GROUP_EXTRA_CRASH * (group.len() as u64 - 1)).as_millis_f64()
    };
    (avg, crash, avg - crash)
}

fn measure_restart(action: RecoveryAction, label: &str, trials: u32) -> f64 {
    let mut sim = Sim::new(SimConfig::default());
    for i in 0..trials {
        sim.schedule_recovery(SimTime::from_secs(60 + 60 * i as u64), 0, action.clone());
    }
    sim.run_until(SimTime::from_secs(60 + 60 * trials as u64));
    let world = sim.finish();
    let mut total_ms = 0.0;
    let mut n = 0u32;
    for e in &world.log {
        if let LogEvent::RecoveryFinished {
            at,
            started,
            action,
            ..
        } = e
        {
            if action.contains(label) {
                total_ms += (*at - *started).as_millis_f64();
                n += 1;
            }
        }
    }
    if n > 0 {
        total_ms / n as f64
    } else {
        0.0
    }
}

fn main() {
    banner("Table 3: average recovery times under load (10 trials per component)");
    let mut t = Table::new(&[
        "component",
        "paper uRB (ms)",
        "measured uRB (ms)",
        "crash (ms)",
        "reinit (ms)",
    ]);
    for (component, paper_total, _, _) in PAPER.iter().take(22) {
        let (avg, crash, reinit) = measure_microreboots(component, 10);
        let shown = if *component == "Item" {
            "EntityGroup (via Item)"
        } else {
            component
        };
        t.row_owned(vec![
            shown.to_string(),
            format!("{paper_total}"),
            format!("{avg:.0}"),
            format!("{crash:.0}"),
            format!("{reinit:.0}"),
        ]);
    }
    let (war, war_crash, war_reinit) = measure_microreboots("WAR", 10);
    t.row_owned(vec![
        "WAR (Web component)".into(),
        "1028".into(),
        format!("{war:.0}"),
        format!("{war_crash:.0}"),
        format!("{war_reinit:.0}"),
    ]);
    let app = measure_restart(RecoveryAction::RestartApp, "app restart", 5);
    t.row_owned(vec![
        "Entire eBid application".into(),
        "7699".into(),
        format!("{app:.0}"),
        "33".into(),
        format!("{:.0}", app - 33.0),
    ]);
    let jvm = measure_restart(RecoveryAction::RestartProcess, "process restart", 5);
    t.row_owned(vec![
        "JVM/JBoss process restart".into(),
        "19083".into(),
        format!("{jvm:.0}"),
        "~0".into(),
        format!("{jvm:.0}"),
    ]);
    let os = measure_restart(RecoveryAction::RebootOs, "OS reboot", 2);
    t.row_owned(vec![
        "OS reboot (not in paper's table)".into(),
        "-".into(),
        format!("{os:.0}"),
        "-".into(),
        "-".into(),
    ]);
    t.print();
    println!("\nEJB microreboots are ~13-46x faster than a JVM restart (paper: 411-825 ms vs 19,083 ms).");
}
