//! Table 6 — masking microreboots with HTTP/1.1 `Retry-After`.
//!
//! Microreboots four different components 10 times each under load, in
//! three configurations:
//!
//! * **no retry** — sentinel hits answer 503 and fail,
//! * **retry** — idempotent requests hitting the sentinel get
//!   `Retry-After 2s` and transparently re-issue (Section 6.2),
//! * **delay & retry** — additionally, a 200 ms drain between the
//!   sentinel rebind and the crash phase lets in-flight requests finish.
//!
//! The paper found transparent retry masks roughly half the failures and
//! the drain removes most of the rest (failures left: ViewItem 23→16→8,
//! BrowseCategories 20→8→0, SearchItemsByCategory 31→15→0,
//! Authenticate 20→9→1).

use bench::report::banner;
use bench::Table;
use cluster::{Sim, SimConfig};
use recovery::RecoveryAction;
use simcore::{SimDuration, SimTime};

const TRIALS: u32 = 10;

/// Returns total failed requests attributable to 10 microreboots of
/// `component` (bad Taw over the run minus a fault-free baseline of the
/// same seed).
fn run(component: &'static str, retry: bool, drain: bool) -> f64 {
    let drain = if drain {
        Some(urb_core::calib::DRAIN_DELAY)
    } else {
        None
    };
    let mut sim = Sim::new(SimConfig {
        retry_enabled: retry,
        drain,
        ..SimConfig::default()
    });
    for i in 0..TRIALS {
        sim.schedule_recovery(
            SimTime::from_secs(60 + 30 * i as u64),
            0,
            RecoveryAction::microreboot(&[component]),
        );
    }
    let end = SimTime::from_secs(60 + 30 * TRIALS as u64 + 60);
    sim.run_until(end);
    let world = sim.finish();
    world.pool.taw_ref().summary().bad_ops as f64
}

/// Fault-free baseline failures for the same interval (background noise).
fn baseline() -> f64 {
    let mut sim = Sim::new(SimConfig::default());
    sim.run_until(SimTime::from_secs(60 + 30 * TRIALS as u64 + 60));
    let world = sim.finish();
    world.pool.taw_ref().summary().bad_ops as f64
}

fn main() {
    banner("Table 6: masking microreboots with HTTP/1.1 Retry-After");
    println!("(total failed requests across 10 microreboots of each component)\n");
    let base = baseline();
    let components = [
        ("ViewItem", (23, 16, 8)),
        ("BrowseCategories", (20, 8, 0)),
        ("SearchItemsByCategory", (31, 15, 0)),
        ("Authenticate", (20, 9, 1)),
    ];
    let mut t = Table::new(&[
        "component",
        "paper (no/retry/delay)",
        "no retry",
        "retry",
        "delay & retry",
    ]);
    for (component, (p_no, p_retry, p_delay)) in components {
        let no_retry = (run(component, false, false) - base).max(0.0);
        let retry = (run(component, true, false) - base).max(0.0);
        let delay = (run(component, true, true) - base).max(0.0);
        t.row_owned(vec![
            component.to_string(),
            format!("{p_no} / {p_retry} / {p_delay}"),
            format!("{no_retry:.0}"),
            format!("{retry:.0}"),
            format!("{delay:.0}"),
        ]);
    }
    t.print();
    println!(
        "\n(the 200 ms delay adds {} to each microreboot; the paper did not",
        {
            let d: SimDuration = urb_core::calib::DRAIN_DELAY;
            format!("{d}")
        }
    );
    println!("analyze that trade-off further — exp_ablation_drain does)");
}
