//! Ablation (extension): the drain-delay trade-off of Section 6.2.
//!
//! The paper introduces a 200 ms delay between the sentinel rebind and the
//! microreboot so in-flight requests can complete, and notes: "We did not
//! analyze the tradeoff between number of saved requests and the 200-msec
//! increase in recovery time." This experiment does: it sweeps the drain
//! delay and reports failed requests per microreboot against the recovery
//! time added.

use bench::report::banner;
use bench::Table;
use cluster::{Sim, SimConfig};
use recovery::RecoveryAction;
use simcore::{SimDuration, SimTime};

const TRIALS: u32 = 20;

fn run(drain_ms: u64, retry: bool) -> f64 {
    let drain = if drain_ms == 0 {
        None
    } else {
        Some(SimDuration::from_millis(drain_ms))
    };
    let mut sim = Sim::new(SimConfig {
        retry_enabled: retry,
        drain,
        ..SimConfig::default()
    });
    for i in 0..TRIALS {
        sim.schedule_recovery(
            SimTime::from_secs(60 + 20 * i as u64),
            0,
            RecoveryAction::microreboot(&["ViewItem"]),
        );
    }
    sim.run_until(SimTime::from_secs(60 + 20 * TRIALS as u64 + 60));
    let world = sim.finish();
    world.pool.taw_ref().summary().bad_ops as f64 / TRIALS as f64
}

fn main() {
    banner("Ablation: drain delay vs saved requests (extends Table 6's footnote)");
    println!("(20 microreboots of BrowseCategories under load)\n");
    let mut t = Table::new(&[
        "drain (ms)",
        "failed/uRB (no retry)",
        "failed/uRB (retry)",
        "recovery time added",
    ]);
    for drain in [0u64, 50, 100, 200, 400, 800] {
        let no_retry = run(drain, false);
        let retry = run(drain, true);
        t.row_owned(vec![
            format!("{drain}"),
            format!("{no_retry:.1}"),
            format!("{retry:.1}"),
            format!("+{drain} ms on ~410 ms ({:.0}%)", drain as f64 / 4.1),
        ]);
    }
    t.print();
    println!("\nthe trade-off the paper's footnote left open: the drain saves the few");
    println!("in-flight requests (visible in the retry column's already-tiny counts),");
    println!("but WITHOUT retries it lengthens the sentinel window, so every extra");
    println!("millisecond of drain turns new arrivals into failures — drain only pays");
    println!("when transparent retries are on, and saturates past ~100-200 ms.");
}
