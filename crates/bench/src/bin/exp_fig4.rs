//! Figure 4 + Table 4 — failover under doubled load.
//!
//! 1,000 clients per node (double the normal population), clusters of
//! 2/4/6/8 nodes, FastS. After the system stabilizes, a µRB-recoverable
//! fault hits one node and the LB fails its traffic over during recovery.
//! With a JVM restart the redirected load overwhelms the good nodes for
//! ~19 s (the 2-node case spikes to many seconds of queueing delay); a
//! microreboot is over too quickly to disturb the load dynamics.
//!
//! Table 4 counts requests exceeding the 8-second Web-abandonment
//! threshold during failover (paper: 3,227/530/55/9 for restarts on
//! 2/4/6/8 nodes vs 3/0/0/0 for microreboots).

use bench::report::banner;
use bench::Table;
use cluster::{Sim, SimConfig};
use faults::Fault;
use recovery::{PolicyLevel, RmConfig};
use simcore::SimTime;

struct RunResult {
    over_8s: u64,
    peak_rt_ms: f64,
    series: Vec<(u64, Option<f64>)>,
}

fn run(nodes: usize, start_level: PolicyLevel) -> RunResult {
    let mut sim = Sim::new(SimConfig {
        nodes,
        clients_per_node: 1000,
        failover: true,
        rm: Some(RmConfig {
            start_level,
            ..RmConfig::default()
        }),
        ..SimConfig::default()
    });
    // Let the doubled load stabilize before injecting (paper: the 13-min
    // interval exists for exactly this).
    sim.schedule_fault(
        SimTime::from_secs(400),
        0,
        Fault::TransientException {
            component: "BrowseCategories",
            calls: u32::MAX,
        },
    );
    sim.run_until(SimTime::from_secs(780));
    let world = sim.finish();
    let taw = world.pool.taw_ref();
    let mut series = Vec::new();
    let mut peak: f64 = 0.0;
    for s in 100..780 {
        let rt = taw.mean_rt_in_second(s);
        if let Some(v) = rt {
            peak = peak.max(v);
        }
        if s % 20 == 0 {
            series.push((s, rt));
        }
    }
    RunResult {
        over_8s: taw.over_8s(),
        peak_rt_ms: peak,
        series,
    }
}

fn main() {
    banner("Figure 4 + Table 4: failover under doubled load (1000 clients/node)");

    let mut t4 = Table::new(&[
        "nodes",
        "paper restart >8s",
        "measured restart >8s",
        "paper uRB >8s",
        "measured uRB >8s",
        "restart peak rt",
        "uRB peak rt",
    ]);
    let paper = [(2usize, 3227u64, 3u64), (4, 530, 0), (6, 55, 0), (8, 9, 0)];
    let mut two_node_series = None;
    for (nodes, p_restart, p_urb) in paper {
        let restart = run(nodes, PolicyLevel::Process);
        let urb = run(nodes, PolicyLevel::Ejb);
        t4.row_owned(vec![
            format!("{nodes}"),
            format!("{p_restart}"),
            format!("{}", restart.over_8s),
            format!("{p_urb}"),
            format!("{}", urb.over_8s),
            format!("{:.0} ms", restart.peak_rt_ms),
            format!("{:.0} ms", urb.peak_rt_ms),
        ]);
        if nodes == 2 {
            two_node_series = Some((restart.series, urb.series));
        }
    }
    t4.print();

    if let Some((restart_series, urb_series)) = two_node_series {
        println!("\n2-node response-time timeline (mean ms in 20 s samples; fault at t=400):");
        let mut ts = Table::new(&["t (s)", "restart rt (ms)", "uRB rt (ms)"]);
        for (i, (s, r)) in restart_series.iter().enumerate() {
            let u = urb_series[i].1;
            let in_window = (380..=560).contains(s);
            if in_window {
                ts.row_owned(vec![
                    format!("{s}"),
                    r.map(|v| format!("{v:.0}")).unwrap_or("-".into()),
                    u.map(|v| format!("{v:.0}")).unwrap_or("-".into()),
                ]);
            }
        }
        ts.print();
    }
    println!("\npaper shape: the restart's 19 s outage dumps a whole node's load on the");
    println!("survivors — on 2 nodes response times blow past the 8 s abandonment");
    println!("threshold; microreboots leave response time flat at every cluster size.");
}
