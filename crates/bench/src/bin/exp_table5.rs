//! Table 5 — fault-free performance impact.
//!
//! Measures steady-state throughput and mean latency in the four
//! configurations of Table 5: original JBoss vs the microreboot-enabled
//! server (whose hooks — sentinel binding, retry interception — are the
//! only additions on the fast path), each with FastS and with SSM.

use bench::report::banner;
use bench::Table;
use cluster::{Sim, SimConfig, StoreChoice};
use simcore::SimTime;

fn run(store: StoreChoice, urb_enabled: bool) -> (f64, f64) {
    let mut sim = Sim::new(SimConfig {
        store,
        // The µRB-enabled server's fast-path additions are the retry
        // interceptor and sentinel checks; the plain configuration runs
        // without them.
        retry_enabled: urb_enabled,
        ..SimConfig::default()
    });
    let mins = 10;
    sim.run_until(SimTime::from_mins(mins));
    let mut world = sim.finish();
    let s = world.pool.taw_ref().summary();
    let rps = (s.good_ops + s.bad_ops) as f64 / (mins as f64 * 60.0);
    let latency = world.pool.taw().response_ms().mean();
    (rps, latency)
}

fn main() {
    banner("Table 5: performance comparison (steady state, fault-free, 500 clients)");
    let paper = [
        ("JBoss + eBid/FastS", 72.09, 15.02),
        ("JBossuRB + eBid/FastS", 72.42, 16.08),
        ("JBoss + eBid/SSM", 71.63, 28.43),
        ("JBossuRB + eBid/SSM", 70.86, 27.69),
    ];
    let configs = [
        (StoreChoice::FastS, false),
        (StoreChoice::FastS, true),
        (StoreChoice::Ssm, false),
        (StoreChoice::Ssm, true),
    ];
    let mut t = Table::new(&[
        "configuration",
        "paper thr (req/s)",
        "measured thr",
        "paper lat (ms)",
        "measured lat",
    ]);
    for ((label, p_thr, p_lat), (store, urb)) in paper.iter().zip(configs.iter()) {
        let (rps, lat) = run(*store, *urb);
        t.row_owned(vec![
            label.to_string(),
            format!("{p_thr:.2}"),
            format!("{rps:.2}"),
            format!("{p_lat:.2}"),
            format!("{lat:.2}"),
        ]);
    }
    t.print();
    println!("\nShape check: throughput within ~2% across configurations; SSM adds");
    println!("marshalling + network latency (paper: +70-90% latency).");
}
