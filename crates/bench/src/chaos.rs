//! The chaos-campaign runner: executes one [`Scenario`] against the
//! cluster simulation and checks the recovery-convergence invariants.
//!
//! Extracted from the `urb-chaos` binary so the policy tournament and the
//! conformance tests can drive the same runner. The default
//! [`RunOptions`] reproduce the classic campaign bit-for-bit (one node,
//! the paper's recursive ladder, no failover); the tournament sweeps the
//! same scenarios across every [`PolicyChoice`] in the registry on a
//! two-node failover cluster and scores each policy on a
//! downtime / failed-requests / reboot-cost / pages frontier.

use std::cell::RefCell;
use std::rc::Rc;

use cluster::{LogEvent, Sim, SimConfig, StoreChoice};
use faults::campaign::{self, Scenario};
use faults::Fault;
use recovery::conductor::ConductorConfig;
use recovery::{PolicyChoice, RmConfig};
use simcore::telemetry::{shared_bus, TelemetrySink, TraceHashSink};
use simcore::{MetricsRegistry, SimDuration, SimTime, TelemetryEvent};
use workload::DetectorKind;

/// Emulated clients per node. Smaller than the paper's 500 so a
/// multi-hundred-run campaign stays fast; plenty for the detectors.
pub const CLIENTS: usize = 60;
/// Quiet tail after the last scheduled injection before invariants are
/// checked. Sized for the slowest legitimate convergence: a low-level
/// fault that burns up the whole ladder (several useless microreboots
/// and process restarts, each followed by a fresh OOM) before the 109 s
/// OS reboot finally cures it, plus the 30 s request TTL.
pub const TAIL_S: u64 = 300;
/// Extra grace, stepped through in 5 s slices, for runs still converging
/// at the horizon. Exhausting it is an invariant violation.
pub const GRACE_S: u64 = 600;
/// Consecutive 5 s samples that must all report quiescence before the
/// run is declared converged — a node mid leak-OOM-restart cycle looks
/// healthy in any single sample.
pub const STABLE_SAMPLES: u32 = 6;

/// How a scenario is executed: cluster shape and recovery policy. The
/// default is the classic campaign configuration, pinned by the strict
/// campaign digests — changing it moves them.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Cluster size (faults always land on node 0).
    pub nodes: usize,
    /// The recovery policy under test.
    pub policy: PolicyChoice,
    /// Whether the LB fails traffic over during recovery.
    pub failover: bool,
    /// Emulated clients per node.
    pub clients: usize,
    /// Performance-observability plane (degraded campaigns); `None`
    /// keeps the classic configuration the pinned digests expect. When
    /// set, the monitors run [`DetectorKind::LatencyAnomaly`] and the run
    /// additionally checks the performance-parity invariants.
    pub perf: Option<workload::PerfConfig>,
    /// Dump the run's log to stdout.
    pub debug: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            nodes: 1,
            policy: PolicyChoice::Ladder,
            failover: false,
            clients: CLIENTS,
            perf: None,
            debug: false,
        }
    }
}

/// What one scenario run produced.
pub struct RunOutcome {
    /// FNV trace digest over every telemetry event of the run.
    pub digest: u64,
    /// Invariant violations (empty on a clean run).
    pub violations: Vec<String>,
    /// Degraded-goodput wall time after injection, in milliseconds: Σ
    /// over one-second windows in which goodput fell below half the
    /// pre-fault rate (below 1 op when there was no pre-fault traffic).
    pub downtime_ms: u64,
    /// Client operations that failed outright.
    pub failed_requests: u64,
    /// Total seconds of reboot activity (histogram mean × count).
    pub reboot_cost_s: f64,
    /// Humans paged.
    pub pages: u64,
    /// Performance-parity measurements; `Some` only when the run had the
    /// performance plane armed ([`RunOptions::perf`]).
    pub perf: Option<PerfOutcome>,
}

/// What the performance plane observed over one degraded run.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfOutcome {
    /// `(node, op)` baselines frozen before injection.
    pub baselines_frozen: u64,
    /// Latency-anomaly windows raised.
    pub anomalies: u64,
    /// Injection → first anomaly, in milliseconds (detection latency).
    pub detection_latency_ms: Option<u64>,
    /// Longest out-of-parity stretch a `ParityRestored` closed, in
    /// milliseconds.
    pub parity_after_ms: Option<u64>,
    /// Deepest reboot level the ladder reached (0 none, 1 component,
    /// 2 application, 3 process, 4 OS).
    pub escalation_depth: u8,
}

/// Label for a [`PerfOutcome::escalation_depth`] value.
pub fn depth_label(depth: u8) -> &'static str {
    match depth {
        0 => "none",
        1 => "microreboot",
        2 => "app-restart",
        3 => "process-restart",
        _ => "os-reboot",
    }
}

/// Telemetry sink recording the performance plane's marks: when the
/// baseline froze, when the first anomaly fired, and every parity
/// restoration.
#[derive(Default)]
struct PerfMarks {
    baselines_frozen: u64,
    anomalies: u64,
    first_anomaly_at_us: Option<u64>,
    parity_restorations: u64,
    parity_after_us_max: Option<u64>,
    debug: bool,
}

impl TelemetrySink for PerfMarks {
    fn on_event(&mut self, event: &TelemetryEvent) {
        if self.debug
            && matches!(
                event,
                TelemetryEvent::PerfBaselineFrozen { .. }
                    | TelemetryEvent::LatencyAnomaly { .. }
                    | TelemetryEvent::ParityRestored { .. }
                    | TelemetryEvent::DegradedInjected { .. }
            )
        {
            eprintln!("    [perf] {event:?}");
        }
        match event {
            TelemetryEvent::PerfBaselineFrozen { components, .. } => {
                self.baselines_frozen += u64::from(*components);
            }
            TelemetryEvent::LatencyAnomaly { at, .. } => {
                self.anomalies += 1;
                self.first_anomaly_at_us.get_or_insert(at.as_micros());
            }
            TelemetryEvent::ParityRestored { after, .. } => {
                self.parity_restorations += 1;
                let us = after.as_micros();
                self.parity_after_us_max = Some(self.parity_after_us_max.map_or(us, |m| m.max(us)));
            }
            _ => {}
        }
    }
}

/// Short scenario description for reports.
pub fn describe(s: &Scenario) -> String {
    format!(
        "{}{}{}{} [{}{}]",
        fault_kind(&s.fault),
        s.second
            .map(|sf| format!("+2nd({})", fault_kind(&sf.fault)))
            .unwrap_or_default(),
        if s.flap.is_some() { "+flap" } else { "" },
        if s.rm_crash.is_some() { "+rmcrash" } else { "" },
        if s.comparison_detector {
            "cmp"
        } else {
            "simple"
        },
        if s.parallel_rm { ",par" } else { "" },
    )
}

/// Stable label for coverage accounting.
pub fn fault_kind(f: &Fault) -> &'static str {
    match f {
        Fault::Deadlock { .. } => "deadlock",
        Fault::InfiniteLoop { .. } => "infinite-loop",
        Fault::AppMemoryLeak { .. } => "app-memory-leak",
        Fault::TransientException { .. } => "transient-exception",
        Fault::Intermittent { .. } => "intermittent",
        Fault::SpuriousReports { .. } => "spurious-reports",
        Fault::CorruptPrimaryKeys { .. } => "corrupt-primary-keys",
        Fault::CorruptJndi { .. } => "corrupt-jndi",
        Fault::CorruptTxnMap { .. } => "corrupt-txn-map",
        Fault::CorruptBeanAttrs { .. } => "corrupt-bean-attrs",
        Fault::CorruptFastS { .. } => "corrupt-fasts",
        Fault::CorruptSsm => "corrupt-ssm",
        Fault::CorruptDb { .. } => "corrupt-db",
        Fault::MemLeakIntraJvm { .. } => "memleak-intra-jvm",
        Fault::MemLeakExtraJvm { .. } => "memleak-extra-jvm",
        Fault::BitFlipMemory => "bitflip-memory",
        Fault::BitFlipRegisters => "bitflip-registers",
        Fault::BadSyscalls => "bad-syscalls",
        Fault::Degraded { .. } => "degraded",
        Fault::BrickCrash { .. } => "brick-crash",
        Fault::BrickCorrupt { .. } => "brick-corrupt",
        Fault::LeaseStorm => "lease-storm",
        Fault::StoreSlow { .. } => "store-slow",
        Fault::LinkPartition { .. } => "link-partition",
        Fault::LinkLossy { .. } => "link-lossy",
        Fault::LinkDelay { .. } => "link-delay",
        Fault::LinkDupe { .. } => "link-dupe",
    }
}

/// The hardened recovery-manager configuration every campaign run uses:
/// storm damper, flap escalation and convergence watchdog all armed.
pub fn hardened_rm(parallel: bool) -> RmConfig {
    RmConfig {
        max_concurrent: if parallel { 4 } else { 1 },
        // A fault on a rarely-exercised op produces evidence at well under
        // one report per default window; a wider window lets sparse
        // evidence aggregate. Safe against self-flapping: scores are
        // cleared when an episode closes, and aftershocks are
        // settle-suppressed on ingest.
        score_window: SimDuration::from_secs(90),
        storm_limit: 3,
        storm_backoff: SimDuration::from_secs(10),
        flap_limit: 3,
        flap_window: SimDuration::from_secs(300),
        watchdog_bound: Some(SimDuration::from_secs(180)),
        ..RmConfig::default()
    }
}

/// How long a request may stay hung before it counts as stuck: the
/// server's TTL lease plus a couple of maintenance sweeps of slack. A
/// fault on a rarely-exercised component can legitimately outlive the
/// campaign horizon undetected (too few failures to cross the score
/// threshold — the Figure 5 sensitivity tradeoff); the system guarantee
/// is that the lease sweep still reaps every stuck thread on time.
pub(crate) fn hung_bound() -> SimDuration {
    urb_core::calib::REQUEST_TTL + SimDuration::from_secs(5)
}

/// True while recovery machinery is still busy on any node. With the
/// performance plane armed, a node out of latency parity counts as busy:
/// convergence means performance recovered, not merely liveness.
pub(crate) fn quiesced(sim: &Sim) -> bool {
    let w = sim.world();
    w.pool.perf().is_none_or(|p| p.anomalous_nodes().is_empty())
        && (0..w.nodes.len()).all(|n| {
            w.rm.as_ref().is_none_or(|rm| rm.in_flight(n) == 0)
                && w.conductor
                    .as_ref()
                    .is_none_or(|c| c.active_count(n) == 0 && c.queued_count(n) == 0)
                && w.nodes[n].is_up()
                && w.nodes[n]
                    .oldest_hung_age(sim.now())
                    .is_none_or(|age| age <= hung_bound())
        })
}

/// Structural convergence invariants shared by every campaign flavor:
/// the episode terminated (no decision in flight, no conductor ticket
/// active or queued), quarantine and failover redirects lifted, every
/// node back up, and no request stuck past the TTL sweep bound.
pub(crate) fn structural_violations(sim: &Sim) -> Vec<String> {
    let mut violations = Vec::new();
    let w = sim.world();
    for n in 0..w.nodes.len() {
        if let Some(rm) = &w.rm {
            let in_flight = rm.in_flight(n);
            if in_flight != 0 {
                violations.push(format!(
                    "node {n}: {in_flight} recovery decision(s) never acknowledged"
                ));
            }
        }
        if let Some(c) = &w.conductor {
            let (active, queued) = (c.active_count(n), c.queued_count(n));
            if active + queued != 0 {
                violations.push(format!(
                    "node {n}: conductor not idle: {active} active, {queued} queued ticket(s)"
                ));
            }
            let quarantined = c.quarantined(n);
            if !quarantined.is_empty() {
                violations.push(format!(
                    "node {n}: quarantine never lifted: {quarantined:?}"
                ));
            }
        }
        let lb_quarantined = w.lb.quarantined(n);
        if !lb_quarantined.is_empty() {
            violations.push(format!(
                "node {n}: LB quarantine never lifted: {lb_quarantined:?}"
            ));
        }
        if w.lb.is_redirecting(n) {
            violations.push(format!("node {n}: failover redirect never lifted"));
        }
        if !w.nodes[n].is_up() {
            violations.push(format!("node {n} down at end: {:?}", w.nodes[n].state()));
        }
        if let Some(age) = w.nodes[n].oldest_hung_age(sim.now()) {
            if age > hung_bound() {
                violations.push(format!(
                    "node {n}: request stuck in pipeline for {:.1}s, past the TTL sweep bound",
                    age.as_secs_f64()
                ));
            }
        }
    }
    violations
}

/// Executes one scenario under `opts` and checks every invariant.
pub fn run_scenario(s: &Scenario, opts: &RunOptions) -> RunOutcome {
    // SSM corruption needs the SSM backend to exist; everything else runs
    // on the default node-private FastS store.
    let wants_ssm = matches!(s.fault, Fault::CorruptSsm)
        || s.second
            .is_some_and(|sf| matches!(sf.fault, Fault::CorruptSsm));
    let mut sim = Sim::new(SimConfig {
        nodes: opts.nodes,
        clients_per_node: opts.clients,
        store: if wants_ssm {
            StoreChoice::Ssm
        } else {
            StoreChoice::FastS
        },
        detector: if opts.perf.is_some() {
            DetectorKind::LatencyAnomaly
        } else if s.comparison_detector {
            DetectorKind::Comparison
        } else {
            DetectorKind::Simple
        },
        perf: opts.perf,
        rm: Some(hardened_rm(s.parallel_rm)),
        conductor: s.parallel_rm.then(ConductorConfig::default),
        policy: opts.policy,
        failover: opts.failover,
        seed: s.sim_seed,
        ..SimConfig::default()
    });
    let bus = shared_bus();
    let hash = Rc::new(RefCell::new(TraceHashSink::new()));
    let metrics = Rc::new(RefCell::new(MetricsRegistry::new()));
    let marks = Rc::new(RefCell::new(PerfMarks {
        debug: opts.debug,
        ..PerfMarks::default()
    }));
    bus.borrow_mut().add_sink(Box::new(hash.clone()));
    bus.borrow_mut().add_sink(Box::new(metrics.clone()));
    if opts.perf.is_some() {
        bus.borrow_mut().add_sink(Box::new(marks.clone()));
    }
    sim.attach_telemetry(bus);

    sim.schedule_fault(SimTime::from_secs(s.inject_at_s), 0, s.fault);
    let mut last_injection_s = s.inject_at_s;
    if let Some(second) = s.second {
        sim.schedule_fault(SimTime::from_secs(second.at_s), 0, second.fault);
        last_injection_s = last_injection_s.max(second.at_s);
    }
    if let Some(crash) = s.rm_crash {
        sim.schedule_rm_crash(
            SimTime::from_secs(crash.at_s),
            SimDuration::from_secs(crash.outage_s),
        );
        last_injection_s = last_injection_s.max(crash.at_s + crash.outage_s);
    }
    if let Some(flap) = s.flap {
        let fault = s.fault;
        for k in 1..=u64::from(flap.recurrences) {
            let at_s = s.inject_at_s + k * flap.gap_s;
            last_injection_s = last_injection_s.max(at_s);
            // Re-arm through the escape hatch: a flapping fault recurs
            // only on a live server (re-injecting into a mid-reboot node
            // would be cured by the reboot's own state teardown anyway).
            sim.schedule_fn(SimTime::from_secs(at_s), move |w, q| {
                if !w.nodes[0].is_up() {
                    return;
                }
                let now = q.now();
                w.log.push(LogEvent::FaultInjected {
                    at: now,
                    node: 0,
                    label: format!("flap re-arm {fault:?}"),
                });
                let killed = faults::inject(&mut w.nodes[0], &fault, now);
                debug_assert!(
                    killed.is_empty(),
                    "flappable faults kill nothing on injection"
                );
            });
        }
    }

    let horizon_s = last_injection_s + TAIL_S;
    sim.run_until(SimTime::from_secs(horizon_s));
    let mut end_s = horizon_s;
    let mut stable = if quiesced(&sim) { 1 } else { 0 };
    while stable < STABLE_SAMPLES && end_s < horizon_s + GRACE_S {
        end_s += 5;
        sim.run_until(SimTime::from_secs(end_s));
        stable = if quiesced(&sim) { stable + 1 } else { 0 };
    }

    let mut violations = structural_violations(&sim);
    let (failed_requests, reboot_cost_s, pages) = {
        let m = metrics.borrow();
        let (begun, finished) = (m.counter("reboots_begun"), m.counter("reboots_finished"));
        if begun != finished {
            violations.push(format!("{begun} reboot(s) begun but {finished} finished"));
        }
        let reboot_cost_s = m
            .histogram("reboot_ms")
            .map_or(0.0, |h| h.mean().as_secs_f64() * h.count() as f64);
        (
            m.counter("client_ops_failed"),
            reboot_cost_s,
            m.counter("decisions_notify_human"),
        )
    };

    let world = sim.finish();
    if opts.debug {
        for ev in &world.log {
            println!("  {ev:?}");
        }
    }
    let taw = world.pool.taw_ref();
    let pre_rate = if s.inject_at_s > 3 {
        taw.good_in(3, s.inject_at_s) / (s.inject_at_s - 3) as f64
    } else {
        0.0
    };
    let degraded_below = (0.5 * pre_rate).max(1.0);
    let mut downtime_ms = 0u64;
    for t in s.inject_at_s..end_s {
        if taw.good_in(t, t + 1) < degraded_below {
            downtime_ms += 1000;
        }
    }
    if expect_goodput_recovery(s) && s.inject_at_s > 4 && violations.is_empty() {
        let pre_window = s.inject_at_s - 3;
        let pre_rate = taw.good_in(3, s.inject_at_s) / pre_window as f64;
        let post_rate = taw.good_in(end_s - 30, end_s) / 30.0;
        if pre_rate > 0.0 && post_rate < 0.5 * pre_rate {
            violations.push(format!(
                "goodput never recovered: {post_rate:.1} op/s at end vs {pre_rate:.1} op/s pre-fault"
            ));
        }
    }

    // Performance-parity invariants (degraded campaigns): the fail-slow
    // fault must be *detected* (baseline frozen pre-injection, at least
    // one anomaly raised) and *cured* (parity restored, no node still
    // out of parity at quiescence) — the ladder has to climb out of slow
    // states, not just dead ones.
    let perf = opts.perf.map(|_| {
        let m = marks.borrow();
        let reg = metrics.borrow();
        if m.baselines_frozen == 0 {
            violations.push("perf baseline never froze before injection".into());
        }
        if m.anomalies == 0 {
            violations.push("fail-slow fault never raised a latency anomaly".into());
        }
        // A detector that fires before any fault exists is crying wolf;
        // the statistical guards (absolute-delta floor, confirmation
        // debounce) exist precisely so this cannot happen.
        if let Some(first) = m.first_anomaly_at_us {
            if first < s.inject_at_s * 1_000_000 {
                violations.push(format!(
                    "latency anomaly at {first} us predates the fault (false positive)"
                ));
            }
        }
        if m.parity_restorations == 0 {
            violations.push("performance parity never restored".into());
        }
        if let Some(p) = world.pool.perf() {
            let still = p.anomalous_nodes();
            if !still.is_empty() {
                violations.push(format!("node(s) {still:?} still out of parity at end"));
            }
        }
        let depth_counters = [
            "reboots_begun_component",
            "reboots_begun_application",
            "reboots_begun_process",
            "reboots_begun_os",
        ];
        let escalation_depth = depth_counters
            .iter()
            .enumerate()
            .filter(|(_, name)| reg.counter(name) > 0)
            .map(|(i, _)| i as u8 + 1)
            .max()
            .unwrap_or(0);
        PerfOutcome {
            baselines_frozen: m.baselines_frozen,
            anomalies: m.anomalies,
            detection_latency_ms: m
                .first_anomaly_at_us
                .map(|us| us.saturating_sub(s.inject_at_s * 1_000_000) / 1000),
            parity_after_ms: m.parity_after_us_max.map(|us| us / 1000),
            escalation_depth,
        }
    });

    let digest = hash.borrow().value();
    RunOutcome {
        digest,
        violations,
        downtime_ms,
        failed_requests,
        reboot_cost_s,
        pages,
        perf,
    }
}

/// Whether the availability invariant applies: reboot-curable damage
/// only. Structural invariants (termination, ack conservation, lifted
/// quarantine) apply to every run regardless.
pub fn expect_goodput_recovery(s: &Scenario) -> bool {
    campaign::goodput_recovers(&s.fault)
        && s.second
            .is_none_or(|sf| campaign::goodput_recovers(&sf.fault))
}

// ---- policy tournament ---------------------------------------------------

/// Tournament parameters.
#[derive(Clone, Debug)]
pub struct TournamentOptions {
    /// Master seed for [`campaign::tournament_scenarios`].
    pub seed: u64,
    /// Scenarios per policy (18 covers every fault kind once).
    pub runs: u64,
    /// The competing policies.
    pub policies: Vec<PolicyChoice>,
    /// Re-run every scenario and require digest equality.
    pub strict: bool,
    /// Print per-run lines.
    pub verbose: bool,
}

/// One policy's aggregate score over the full scenario matrix. All four
/// frontier metrics are minimized.
#[derive(Clone, Debug)]
pub struct PolicyScore {
    /// The policy.
    pub policy: PolicyChoice,
    /// Scenarios executed.
    pub runs: u64,
    /// Total invariant violations across the matrix.
    pub violations: u64,
    /// Frontier metric: Σ zero-goodput milliseconds post-injection.
    pub downtime_ms: u64,
    /// Frontier metric: Σ failed client operations.
    pub failed_requests: u64,
    /// Frontier metric: Σ seconds of reboot activity.
    pub reboot_cost_s: f64,
    /// Frontier metric: Σ humans paged.
    pub pages: u64,
    /// FNV fold of every run's `CampaignRunDone` event.
    pub digest: u64,
    /// On the Pareto frontier (not dominated on all four metrics).
    pub pareto: bool,
}

/// Runs the full scenario matrix under every policy and scores the
/// Pareto frontier over (downtime, failed requests, reboot cost, pages).
pub fn tournament(opts: &TournamentOptions) -> Vec<PolicyScore> {
    let scenarios = campaign::tournament_scenarios(&campaign::CampaignConfig {
        seed: opts.seed,
        runs: opts.runs,
    });
    let mut scores: Vec<PolicyScore> = opts
        .policies
        .iter()
        .map(|&policy| {
            let run_opts = RunOptions {
                nodes: 2,
                policy,
                failover: true,
                clients: CLIENTS,
                perf: None,
                debug: false,
            };
            let mut hash = TraceHashSink::new();
            let mut score = PolicyScore {
                policy,
                runs: scenarios.len() as u64,
                violations: 0,
                downtime_ms: 0,
                failed_requests: 0,
                reboot_cost_s: 0.0,
                pages: 0,
                digest: 0,
                pareto: false,
            };
            for s in &scenarios {
                let mut out = run_scenario(s, &run_opts);
                if opts.strict {
                    let again = run_scenario(s, &run_opts);
                    if again.digest != out.digest {
                        out.violations.push(format!(
                            "nondeterministic: digest {:016x} vs {:016x} on re-run",
                            out.digest, again.digest
                        ));
                    }
                }
                hash.on_event(&TelemetryEvent::CampaignRunDone {
                    run: s.run,
                    digest: out.digest,
                    violations: out.violations.len() as u32,
                });
                if opts.verbose {
                    println!(
                        "  {:<16} run {:>3}  {:<48} downtime {:>7} ms  {}",
                        policy.label(),
                        s.run,
                        describe(s),
                        out.downtime_ms,
                        if out.violations.is_empty() {
                            "ok".into()
                        } else {
                            format!("VIOLATIONS: {}", out.violations.join("; "))
                        }
                    );
                }
                score.violations += out.violations.len() as u64;
                score.downtime_ms += out.downtime_ms;
                score.failed_requests += out.failed_requests;
                score.reboot_cost_s += out.reboot_cost_s;
                score.pages += out.pages;
            }
            score.digest = hash.value();
            score
        })
        .collect();
    mark_pareto(&mut scores);
    scores
}

/// Marks each score's `pareto` flag: a policy is on the frontier iff no
/// other policy is at-least-as-good on all four metrics and strictly
/// better on one.
pub fn mark_pareto(scores: &mut [PolicyScore]) {
    let dominated = |a: &PolicyScore, b: &PolicyScore| {
        // b dominates a?
        let le = b.downtime_ms <= a.downtime_ms
            && b.failed_requests <= a.failed_requests
            && b.reboot_cost_s <= a.reboot_cost_s + f64::EPSILON
            && b.pages <= a.pages;
        let lt = b.downtime_ms < a.downtime_ms
            || b.failed_requests < a.failed_requests
            || b.reboot_cost_s + f64::EPSILON < a.reboot_cost_s
            || b.pages < a.pages;
        le && lt
    };
    let snapshot: Vec<PolicyScore> = scores.to_vec();
    for s in scores.iter_mut() {
        s.pareto = !snapshot
            .iter()
            .any(|other| other.policy != s.policy && dominated(s, other));
    }
}
