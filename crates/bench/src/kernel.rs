//! Kernel micro-benchmark workloads: the slot-arena event queue versus a
//! faithful replica of the seed kernel.
//!
//! The arena refactor's throughput claim (`BENCH_kernel.json`,
//! DESIGN.md §9) has to be measured against the *pre-refactor* kernel in
//! the same build, same machine, same workload — not against a number
//! written down once. [`LegacyQueue`] is that baseline: a line-faithful
//! replica of the seed `simcore::event` implementation (one
//! `Box<dyn FnOnce>` per event in the heap entries, lazy cancellation via
//! a `HashSet` of sequence numbers). Both kernels run the same
//! self-rescheduling chain workload with periodic cancellations, so the
//! ratio isolates exactly what the refactor changed: event storage,
//! allocation traffic and cancellation bookkeeping.
//!
//! This module lives in `bench` (outside the lint's `SIM_CRATES`) on
//! purpose: the replica *wants* the HashSet and the boxed closures the
//! determinism and hot-path rules ban from the simulation crates.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::time::{Duration, Instant};

use std::collections::BTreeMap;

use simcore::stats::Histogram;
use simcore::{symbol, EventPayload, EventQueue, MetricsRegistry, SimDuration, SimTime};

// ---------------------------------------------------------------------------
// The legacy kernel replica
// ---------------------------------------------------------------------------

/// Handler invoked when a legacy event fires.
pub type LegacyFn<W> = Box<dyn FnOnce(&mut W, &mut LegacyQueue<W>)>;

struct Entry<W> {
    at: SimTime,
    seq: u64,
    label: &'static str,
    f: LegacyFn<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<W> Eq for Entry<W> {}

impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The seed kernel, preserved as a benchmark baseline: boxed closures in
/// the heap entries, lazy cancellation through a set of sequence numbers.
pub struct LegacyQueue<W> {
    heap: BinaryHeap<Entry<W>>,
    cancelled: HashSet<u64>,
    now: SimTime,
    next_seq: u64,
    fired: u64,
}

impl<W> Default for LegacyQueue<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> LegacyQueue<W> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        LegacyQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            fired: 0,
        }
    }

    /// Returns the current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Schedules `f` at absolute time `at`; returns its sequence number.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        label: &'static str,
        f: impl FnOnce(&mut W, &mut LegacyQueue<W>) + 'static,
    ) -> u64 {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            label,
            f: Box::new(f),
        });
        seq
    }

    /// Schedules `f` after `delay`.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        label: &'static str,
        f: impl FnOnce(&mut W, &mut LegacyQueue<W>) + 'static,
    ) -> u64 {
        self.schedule_at(self.now + delay, label, f)
    }

    /// Cancels a scheduled event (lazily, exactly like the seed kernel).
    pub fn cancel(&mut self, seq: u64) -> bool {
        if seq >= self.next_seq || self.cancelled.contains(&seq) {
            return false;
        }
        self.cancelled.insert(seq);
        true
    }

    /// Fires the earliest pending event; returns its label.
    pub fn step(&mut self, world: &mut W) -> Option<&'static str> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.now = entry.at;
            self.fired += 1;
            (entry.f)(world, self);
            return Some(entry.label);
        }
        None
    }

    /// Runs events with firing time `<= deadline`, then advances the
    /// clock to `deadline` — a line-faithful copy of the seed kernel's
    /// driver loop, including its peek-then-pop double probe of the
    /// cancelled set per delivered event.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        loop {
            let next_at = loop {
                match self.heap.peek() {
                    Some(e) if self.cancelled.contains(&e.seq) => {
                        let e = self.heap.pop().expect("peeked entry exists");
                        self.cancelled.remove(&e.seq);
                    }
                    Some(e) => break Some(e.at),
                    None => break None,
                }
            };
            match next_at {
                Some(at) if at <= deadline => {
                    self.step(world);
                }
                _ => break,
            }
        }
        self.now = self.now.max(deadline);
    }
}

// ---------------------------------------------------------------------------
// The shared workload
// ---------------------------------------------------------------------------

/// How many independent self-rescheduling chains the workload keeps live.
pub const CHAINS: u64 = 256;
/// Every `CANCEL_EVERY`-th chain step also schedules-then-cancels a decoy
/// event, exercising the cancellation path at a realistic (~14%) rate.
pub const CANCEL_EVERY: u64 = 7;

/// The seed metrics store: canonical counters in an ordered map probed by
/// string key on every bump — exactly what the symbol table replaced.
/// Like a warm seed registry mid-run, it holds the full canonical
/// vocabulary (every name in [`symbol::NAMES`]), so each probe walks a
/// realistically sized tree rather than a single node.
pub struct LegacyRegistry {
    counters: BTreeMap<&'static str, u64>,
    /// Seed histogram store: name-probed ordered map (two canonical
    /// histograms installed, as `MetricsRegistry::new` does).
    histograms: BTreeMap<&'static str, Histogram>,
    /// Seed per-second series: `(second, name)`-keyed ordered map, the
    /// pre-refactor `SecondSeries` cell storage.
    series: BTreeMap<(u64, &'static str), f64>,
}

impl Default for LegacyRegistry {
    fn default() -> Self {
        let mut histograms = BTreeMap::new();
        histograms.insert(
            "client_op_ms",
            Histogram::new(
                SimDuration::from_millis(100),
                100,
                SimDuration::from_secs(8),
            ),
        );
        histograms.insert(
            "reboot_ms",
            Histogram::new(SimDuration::from_millis(50), 100, SimDuration::from_secs(1)),
        );
        LegacyRegistry {
            counters: symbol::NAMES.iter().map(|&n| (n, 0)).collect(),
            histograms,
            series: BTreeMap::new(),
        }
    }
}

impl LegacyRegistry {
    /// Bumps `name` by 1 (the seed fold's per-event operation).
    pub fn inc(&mut self, name: &'static str) {
        *self.counters.entry(name).or_insert(0) += 1;
    }

    /// Reads a counter.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a duration sample (the seed fold's `observe`).
    pub fn observe(&mut self, name: &str, d: SimDuration) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(d);
        }
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Increments series `key` in the second containing `at` (the seed
    /// `SecondSeries::incr` cell probe).
    pub fn series_incr(&mut self, at: SimTime, key: &'static str) {
        *self.series.entry((at.second_index(), key)).or_insert(0.0) += 1.0;
    }

    /// Sums series `key` over all seconds.
    pub fn series_total(&self, key: &str) -> f64 {
        self.series
            .iter()
            .filter(|((_, k), _)| *k == key)
            .map(|(_, v)| *v)
            .sum()
    }
}

/// Counter names each fired event rotates through, mirroring the 2–3
/// registry bumps a real request-pipeline event folds.
pub const FOLD_NAMES: [&str; 4] = [
    "requests_submitted",
    "requests_completed",
    "requests_ok",
    "retries_sent",
];

/// The same counters as interned symbols (the post-refactor fold).
pub const FOLD_SYMS: [simcore::Sym; 4] = [
    symbol::REQUESTS_SUBMITTED,
    symbol::REQUESTS_COMPLETED,
    symbol::REQUESTS_OK,
    symbol::RETRIES_SENT,
];

/// The benchmark world: a deterministic mixer standing in for handler
/// work, plus both generations of the metrics store. Each fired event
/// folds the same counters into whichever store its kernel generation
/// used, so the measured ratio covers the full per-event pipeline the
/// refactor touched: event storage, dispatch and the telemetry fold.
pub struct BenchWorld {
    /// Events fired so far.
    pub fired: u64,
    /// Running checksum, so per-event work cannot be optimized away.
    pub acc: u64,
    /// Post-refactor store: dense symbol-indexed counters.
    pub metrics: MetricsRegistry,
    /// Seed store: string-probed ordered map.
    pub legacy_metrics: LegacyRegistry,
    /// Post-refactor in-flight window: id-sorted vec with monotone append
    /// (the pipeline's `running` / the client pool's `req_owner` shape).
    pub running: Vec<(u64, [u64; 4])>,
    /// Seed in-flight window: the `BTreeMap<ReqId, RunningReq>` the
    /// pipeline and client pool kept before the dense-index conversion.
    pub legacy_running: BTreeMap<u64, [u64; 4]>,
}

impl Default for BenchWorld {
    fn default() -> Self {
        BenchWorld {
            fired: 0,
            acc: 0,
            // `new`, not `default`: the canonical histograms must be
            // registered for the fold's `observe_sym` to record.
            metrics: MetricsRegistry::new(),
            legacy_metrics: LegacyRegistry::default(),
            running: Vec::new(),
            legacy_running: BTreeMap::new(),
        }
    }
}

impl BenchWorld {
    fn mix(&mut self, k: u64, payload: &[u64; 4]) -> (SimDuration, usize, u64) {
        self.fired += 1;
        // SplitMix-style mixing: cheap, but enough data dependency that
        // the event body is not dead code.
        let mut z = k
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_mul(self.acc | 1);
        z ^= z >> 31;
        self.acc = self
            .acc
            .wrapping_add(z)
            .wrapping_add(payload[0] ^ payload[3]);
        (SimDuration::from_micros(1 + (z % 16)), (z % 3) as usize, z)
    }

    fn touch_arena(&mut self, now: SimTime, k: u64, payload: &[u64; 4]) -> SimDuration {
        let (delay, which, z) = self.mix(k, payload);
        // The post-refactor per-event fold: dense Vec bumps by symbol.
        self.metrics.inc_sym(symbol::CLIENT_OPS);
        self.metrics.inc_sym(FOLD_SYMS[which]);
        self.metrics.inc_sym(FOLD_SYMS[which + 1]);
        // Post-refactor request bookkeeping, once per request lifecycle:
        // monotone append + binary-search removal on the id-sorted vec,
        // then the fold's completion arm — dense-slot histogram sample and
        // hot-row series bump.
        let id = self.fired;
        if id.is_multiple_of(EVENTS_PER_REQUEST) {
            self.running.push((id, *payload));
            if id >= INFLIGHT * EVENTS_PER_REQUEST {
                let gone = id - INFLIGHT * EVENTS_PER_REQUEST;
                if let Ok(slot) = self.running.binary_search_by_key(&gone, |&(i, _)| i) {
                    let (_, v) = self.running.remove(slot);
                    self.acc = self.acc.wrapping_add(v[1]);
                }
            }
            self.metrics
                .observe_sym(symbol::CLIENT_OP_MS, SimDuration::from_millis(z & 255));
            self.metrics.series_mut().incr_sym(now, symbol::OPS_OK);
        }
        delay
    }

    fn touch_legacy(&mut self, now: SimTime, k: u64, payload: &[u64; 4]) -> SimDuration {
        let (delay, which, z) = self.mix(k, payload);
        // The seed per-event fold: ordered-map probes by string key.
        self.legacy_metrics.inc("client_ops");
        self.legacy_metrics.inc(FOLD_NAMES[which]);
        self.legacy_metrics.inc(FOLD_NAMES[which + 1]);
        // Seed request bookkeeping, once per request lifecycle: tree-map
        // insert + remove (node churn allocates), then the fold's
        // completion arm — name-probed histogram sample and `(second,
        // name)` series cell probe.
        let id = self.fired;
        if id.is_multiple_of(EVENTS_PER_REQUEST) {
            self.legacy_running.insert(id, *payload);
            if id >= INFLIGHT * EVENTS_PER_REQUEST {
                if let Some(v) = self
                    .legacy_running
                    .remove(&(id - INFLIGHT * EVENTS_PER_REQUEST))
                {
                    self.acc = self.acc.wrapping_add(v[1]);
                }
            }
            self.legacy_metrics
                .observe("client_op_ms", SimDuration::from_millis(z & 255));
            self.legacy_metrics.series_incr(now, "ops_ok");
        }
        delay
    }
}

/// Event payload standing in for the response structs the real
/// simulation's deliver/complete events carry by value.
pub const PAYLOAD: [u64; 4] = [0x5eed, 0xbeef, 0xcafe, 0xd00d];

/// Steady-state depth of the in-flight request window, sized like the
/// pipeline's per-node worker pool.
pub const INFLIGHT: u64 = 16;
/// One request lifecycle (submit, complete, deliver, timeout check) spans
/// about this many kernel events, so the per-request map churn runs every
/// `EVENTS_PER_REQUEST`-th event.
pub const EVENTS_PER_REQUEST: u64 = 4;

/// The arena kernel's inline event payload for the chain workload.
pub enum ChainEvent {
    /// One step of chain `k`: mix, fold, reschedule, sometimes cancel a
    /// decoy.
    Step {
        /// Chain index (perturbs the per-step delay).
        k: u64,
        /// Carried-by-value event data (inline in the arena slot; a boxed
        /// closure capture in the legacy kernel).
        payload: [u64; 4],
    },
    /// A decoy event that is always cancelled before it can fire.
    Decoy,
}

impl EventPayload<BenchWorld> for ChainEvent {
    fn fire(self, world: &mut BenchWorld, queue: &mut EventQueue<BenchWorld, ChainEvent>) {
        match self {
            ChainEvent::Step { k, payload } => {
                let delay = world.touch_arena(queue.now(), k, &payload);
                if world.fired.is_multiple_of(CANCEL_EVERY) {
                    let decoy = queue.schedule_event_in(delay, "decoy", ChainEvent::Decoy);
                    queue.cancel(decoy);
                }
                queue.schedule_event_in(delay, "chain", ChainEvent::Step { k, payload });
            }
            ChainEvent::Decoy => unreachable!("decoys are always cancelled"),
        }
    }
}

/// Seeds `CHAINS` chains into an arena queue.
pub fn seed_arena(queue: &mut EventQueue<BenchWorld, ChainEvent>) {
    for k in 0..CHAINS {
        queue.schedule_event_at(
            SimTime::from_micros(k),
            "chain",
            ChainEvent::Step {
                k,
                payload: PAYLOAD,
            },
        );
    }
}

fn legacy_chain(
    k: u64,
    payload: [u64; 4],
) -> impl FnOnce(&mut BenchWorld, &mut LegacyQueue<BenchWorld>) + 'static {
    move |world, queue| {
        let delay = world.touch_legacy(queue.now(), k, &payload);
        if world.fired.is_multiple_of(CANCEL_EVERY) {
            let decoy = queue.schedule_in(delay, "decoy", |_w, _q| {
                unreachable!("decoys are cancelled")
            });
            queue.cancel(decoy);
        }
        queue.schedule_in(delay, "chain", legacy_chain(k, payload));
    }
}

/// Seeds `CHAINS` chains into a legacy queue.
pub fn seed_legacy(queue: &mut LegacyQueue<BenchWorld>) {
    for k in 0..CHAINS {
        queue.schedule_at(SimTime::from_micros(k), "chain", legacy_chain(k, PAYLOAD));
    }
}

/// Throughput of one kernel over the chain workload.
#[derive(Clone, Copy, Debug)]
pub struct Throughput {
    /// Events fired during the measured window.
    pub events: u64,
    /// Wall time of the measured window.
    pub wall: Duration,
}

impl Throughput {
    /// Events fired per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Runs the chain workload on the arena kernel for `events` fired events
/// (after a `warmup` prefix that also fills the slot pool).
pub fn run_arena(warmup: u64, events: u64) -> (Throughput, BenchWorld) {
    let mut queue: EventQueue<BenchWorld, ChainEvent> = EventQueue::new();
    let mut world = BenchWorld::default();
    seed_arena(&mut queue);
    while world.fired < warmup {
        queue.step(&mut world);
    }
    let start = Instant::now();
    let fired_before = world.fired;
    while world.fired < warmup + events {
        queue.step(&mut world);
    }
    let wall = start.elapsed();
    (
        Throughput {
            events: world.fired - fired_before,
            wall,
        },
        world,
    )
}

/// Both kernels' throughput over the identical workload, measured in
/// alternating slices.
#[derive(Clone, Copy, Debug)]
pub struct PairThroughput {
    /// Arena-kernel throughput (sum of its slices).
    pub arena: Throughput,
    /// Legacy-kernel throughput (sum of its slices).
    pub legacy: Throughput,
}

impl PairThroughput {
    /// Arena events/sec over legacy events/sec.
    pub fn speedup(&self) -> f64 {
        self.arena.events_per_sec() / self.legacy.events_per_sec().max(1e-9)
    }
}

/// Runs the chain workload on both kernels in `rounds` alternating timed
/// slices (arena slice, legacy slice, repeat), after warming each.
///
/// Interleaving makes the *ratio* robust on noisy machines: clock
/// throttling or a noisy neighbour mid-measurement slows both kernels
/// about equally instead of whichever one happened to run during the
/// slowdown.
///
/// Each slice drives its kernel through `run_until` — the loop the real
/// simulation uses — over a fixed window of simulated time, so the
/// measured path includes the driver's peek-skip-deliver logic on both
/// sides (on the seed kernel that is two probes of the cancelled set per
/// delivered event).
pub fn run_pair(warmup: u64, events: u64, rounds: u64) -> (PairThroughput, BenchWorld, BenchWorld) {
    let mut aq: EventQueue<BenchWorld, ChainEvent> = EventQueue::new();
    let mut aw = BenchWorld::default();
    seed_arena(&mut aq);
    while aw.fired < warmup {
        aq.step(&mut aw);
    }
    let mut lq: LegacyQueue<BenchWorld> = LegacyQueue::new();
    let mut lw = BenchWorld::default();
    seed_legacy(&mut lq);
    while lw.fired < warmup {
        lq.step(&mut lw);
    }
    let slice = (events / rounds.max(1)).max(1);
    // Chain steps are 1–16 µs apart (mean 8.5), so a window of
    // `slice * 8.5 / CHAINS` µs of simulated time delivers about `slice`
    // events per slice.
    let slice_sim = SimDuration::from_micros(((slice * 85) / (CHAINS * 10)).max(1));
    let mut arena_wall = Duration::ZERO;
    let mut legacy_wall = Duration::ZERO;
    let mut arena_events = 0u64;
    let mut legacy_events = 0u64;
    for _ in 0..rounds.max(1) {
        let before = aw.fired;
        let deadline = aq.now() + slice_sim;
        let t0 = Instant::now();
        aq.run_until(&mut aw, deadline);
        arena_wall += t0.elapsed();
        arena_events += aw.fired - before;

        let before = lw.fired;
        let deadline = lq.now() + slice_sim;
        let t0 = Instant::now();
        lq.run_until(&mut lw, deadline);
        legacy_wall += t0.elapsed();
        legacy_events += lw.fired - before;
    }
    (
        PairThroughput {
            arena: Throughput {
                events: arena_events,
                wall: arena_wall,
            },
            legacy: Throughput {
                events: legacy_events,
                wall: legacy_wall,
            },
        },
        aw,
        lw,
    )
}

/// Runs the identical workload on the legacy kernel.
pub fn run_legacy(warmup: u64, events: u64) -> (Throughput, BenchWorld) {
    let mut queue: LegacyQueue<BenchWorld> = LegacyQueue::new();
    let mut world = BenchWorld::default();
    seed_legacy(&mut queue);
    while world.fired < warmup {
        queue.step(&mut world);
    }
    let start = Instant::now();
    let fired_before = world.fired;
    while world.fired < warmup + events {
        queue.step(&mut world);
    }
    let wall = start.elapsed();
    (
        Throughput {
            events: world.fired - fired_before,
            wall,
        },
        world,
    )
}

/// Per-event dispatch latencies (ns) over `samples` individually timed
/// arena steps, after `warmup` untimed events.
pub fn arena_dispatch_samples(warmup: u64, samples: usize) -> Vec<u64> {
    let mut queue: EventQueue<BenchWorld, ChainEvent> = EventQueue::new();
    let mut world = BenchWorld::default();
    seed_arena(&mut queue);
    while world.fired < warmup {
        queue.step(&mut world);
    }
    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        queue.step(&mut world);
        out.push(t.elapsed().as_nanos() as u64);
    }
    out
}

/// The p-th percentile (0–100, nearest-rank) of a latency sample set.
pub fn percentile(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.saturating_sub(1).min(samples.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_kernels_run_the_same_deterministic_workload() {
        let (_, arena_world) = run_arena(1_000, 10_000);
        let (_, legacy_world) = run_legacy(1_000, 10_000);
        assert_eq!(arena_world.fired, legacy_world.fired);
        assert_eq!(
            arena_world.acc, legacy_world.acc,
            "the two kernels must execute identical event sequences"
        );
        for (name, sym) in FOLD_NAMES.iter().zip(FOLD_SYMS) {
            assert_eq!(
                arena_world.metrics.counter_sym(sym),
                legacy_world.legacy_metrics.counter(name),
                "fold mismatch for {name}"
            );
        }
        let ah = arena_world.metrics.histogram("client_op_ms").unwrap();
        let lh = legacy_world
            .legacy_metrics
            .histogram("client_op_ms")
            .unwrap();
        assert_eq!(ah.count(), lh.count(), "histogram sample counts differ");
        assert_eq!(ah.buckets(), lh.buckets(), "histogram shapes differ");
        assert_eq!(
            arena_world.metrics.series().total("ops_ok"),
            legacy_world.legacy_metrics.series_total("ops_ok"),
            "series totals differ"
        );
    }

    #[test]
    fn run_until_slices_match_the_step_driver() {
        let (pair, aw, lw) = run_pair(1_000, 20_000, 8);
        assert_eq!(aw.fired, lw.fired, "both kernels deliver the same events");
        assert_eq!(aw.acc, lw.acc);
        assert!(pair.arena.events > 0 && pair.legacy.events > 0);
    }

    #[test]
    fn percentile_picks_the_right_rank() {
        let mut s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&mut s, 99.0), 99);
        assert_eq!(percentile(&mut s, 50.0), 50);
        assert_eq!(percentile(&mut [], 99.0), 0);
    }
}
