//! Microrejuvenation — averting leak-induced failures by parts.
//!
//! Section 6.4: a server-side service periodically checks free JVM memory;
//! if it drops below `M_alarm`, components are microrebooted in a rolling
//! fashion until free memory exceeds `M_sufficient` — falling back to a
//! JVM restart if even rebooting every component is not enough. The
//! service has no knowledge of which components leak: it learns by
//! measuring how much memory each component's microreboot released and
//! keeps its candidate list sorted by expected yield.

use std::collections::BTreeMap;

use simcore::SimTime;

use crate::app::Application;
use crate::server::{AppServer, RebootTicket};

/// Default alarm threshold (paper: 35% of the 1 GB heap ≈ 350 MB free).
pub const DEFAULT_MALARM_FRACTION: f64 = 0.35;

/// Default sufficiency threshold (paper: 80% ≈ 800 MB free).
pub const DEFAULT_MSUFFICIENT_FRACTION: f64 = 0.80;

/// What the rejuvenation service decided on one check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejuvenationAction {
    /// Memory is fine; nothing to do.
    Idle,
    /// Microreboot this component next (ticket already started).
    Microreboot {
        /// The chosen component.
        component: &'static str,
        /// The in-flight microreboot.
        ticket: TicketInfo,
    },
    /// Every component was rebooted and memory is still low: the service
    /// asks for a JVM restart.
    NeedsProcessRestart,
}

/// The scheduling-relevant parts of a reboot ticket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TicketInfo {
    /// Crash-phase instant.
    pub crash_at: SimTime,
    /// Completion instant.
    pub done_at: SimTime,
    /// Raw ticket id.
    pub id: crate::server::RebootId,
}

impl From<RebootTicket> for TicketInfo {
    fn from(t: RebootTicket) -> Self {
        TicketInfo {
            crash_at: t.crash_at,
            done_at: t.done_at,
            id: t.id,
        }
    }
}

/// The rolling microrejuvenation service of Section 6.4.
#[derive(Debug)]
pub struct RejuvenationService {
    malarm: u64,
    msufficient: u64,
    /// Candidate components, kept sorted descending by last released
    /// bytes; unknown components sort last in deployment order.
    order: Vec<&'static str>,
    released: BTreeMap<&'static str, u64>,
    /// Components already rebooted in the current low-memory episode.
    done_this_round: Vec<&'static str>,
    /// Free memory observed just before the in-flight microreboot.
    before_urb: Option<(&'static str, u64)>,
    in_episode: bool,
}

impl RejuvenationService {
    /// Creates a service with explicit thresholds (bytes of free heap).
    pub fn new(components: Vec<&'static str>, malarm: u64, msufficient: u64) -> Self {
        RejuvenationService {
            malarm,
            msufficient,
            order: components,
            released: BTreeMap::new(),
            done_this_round: Vec::new(),
            before_urb: None,
            in_episode: false,
        }
    }

    /// Creates a service with the paper's thresholds for a given heap.
    pub fn with_default_thresholds(components: Vec<&'static str>, heap_capacity: u64) -> Self {
        Self::new(
            components,
            (heap_capacity as f64 * DEFAULT_MALARM_FRACTION) as u64,
            (heap_capacity as f64 * DEFAULT_MSUFFICIENT_FRACTION) as u64,
        )
    }

    /// Returns the alarm threshold.
    pub fn malarm(&self) -> u64 {
        self.malarm
    }

    /// Returns the sufficiency threshold.
    pub fn msufficient(&self) -> u64 {
        self.msufficient
    }

    /// Returns the learned bytes-released table.
    pub fn released_table(&self) -> &BTreeMap<&'static str, u64> {
        &self.released
    }

    /// Records the result of a completed rejuvenation microreboot: how
    /// much free memory it gained. Call when the µRB ticket completes.
    pub fn record_completion(&mut self, free_after: u64) {
        if let Some((component, free_before)) = self.before_urb.take() {
            let gained = free_after.saturating_sub(free_before);
            self.released.insert(component, gained);
            // Keep the list sorted by expected yield, descending.
            let released = &self.released;
            self.order
                .sort_by_key(|c| std::cmp::Reverse(released.get(c).copied().unwrap_or(0)));
        }
    }

    /// Checks memory and, if needed, starts the next rolling microreboot.
    ///
    /// The caller invokes this periodically (and again after each
    /// completed rejuvenation µRB) and schedules the returned ticket's
    /// crash/complete phases.
    pub fn check<A: Application>(
        &mut self,
        server: &mut AppServer<A>,
        now: SimTime,
    ) -> RejuvenationAction {
        if self.before_urb.is_some() {
            // A rejuvenation µRB is still in flight.
            return RejuvenationAction::Idle;
        }
        let free = server.available_memory();
        if self.in_episode {
            if free >= self.msufficient {
                // Episode over.
                self.in_episode = false;
                self.done_this_round.clear();
                return RejuvenationAction::Idle;
            }
        } else {
            if free > self.malarm {
                return RejuvenationAction::Idle;
            }
            self.in_episode = true;
            self.done_this_round.clear();
        }
        // Pick the next candidate not yet rebooted this episode.
        let next = self
            .order
            .iter()
            .find(|c| !self.done_this_round.contains(*c))
            .copied();
        let Some(component) = next else {
            self.in_episode = false;
            self.done_this_round.clear();
            return RejuvenationAction::NeedsProcessRestart;
        };
        match server.begin_microreboot(&[component], now, None) {
            Ok(ticket) => {
                self.done_this_round.push(component);
                // The whole recovery group reboots with it; count the
                // group as done so the episode does not re-reboot members.
                if let Some(id) = server.graph().id_of(component) {
                    for m in server.graph().recovery_group(id) {
                        let name = server.graph().name_of(*m);
                        if !self.done_this_round.contains(&name) {
                            self.done_this_round.push(name);
                        }
                    }
                }
                self.before_urb = Some((component, free));
                RejuvenationAction::Microreboot {
                    component,
                    ticket: ticket.into(),
                }
            }
            Err(_) => RejuvenationAction::Idle,
        }
    }
}
