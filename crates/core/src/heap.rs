//! The JVM heap model.
//!
//! Memory is the resource the rejuvenation experiments (Section 6.4) turn
//! on: components leak per invocation, the heap fills, and either the
//! rejuvenation service microreboots the leakers in time or the JVM runs
//! out of memory and crashes. The heap model also accounts for leaks
//! *outside* the application (JBoss-internal, Table 2's "intra-JVM" row),
//! which no microreboot can reclaim, and leaks outside the JVM entirely
//! ("extra-JVM"), which even a JVM restart cannot.

/// The memory picture of one node: JVM heap plus host memory.
#[derive(Clone, Copy, Debug)]
pub struct HeapModel {
    capacity: u64,
    server_base: u64,
    /// Leaked inside the JVM but outside any component (cured by JVM
    /// restart only).
    intra_jvm_leaked: u64,
    /// Leaked outside the JVM (native/kernel; cured by OS reboot only).
    extra_jvm_leaked: u64,
    /// Host memory available to the JVM process beyond its heap.
    host_headroom: u64,
}

impl HeapModel {
    /// Creates a heap of `capacity` bytes with `server_base` bytes used by
    /// the server itself.
    ///
    /// # Panics
    ///
    /// Panics if the base exceeds the capacity.
    pub fn new(capacity: u64, server_base: u64) -> Self {
        assert!(server_base < capacity, "server must fit in the heap");
        HeapModel {
            capacity,
            server_base,
            intra_jvm_leaked: 0,
            extra_jvm_leaked: 0,
            host_headroom: capacity / 2,
        }
    }

    /// Returns the heap capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Returns free heap given the bytes used by application components
    /// and in-process session state.
    pub fn free(&self, component_bytes: u64, session_bytes: u64) -> u64 {
        self.capacity.saturating_sub(
            self.server_base + self.intra_jvm_leaked + component_bytes + session_bytes,
        )
    }

    /// Returns true if the JVM would throw `OutOfMemoryError` at this
    /// usage.
    pub fn is_oom(&self, component_bytes: u64, session_bytes: u64) -> bool {
        self.free(component_bytes, session_bytes) == 0
    }

    /// Returns true if the host itself is out of memory (extra-JVM leak
    /// exceeded host headroom) — only an OS reboot helps.
    pub fn host_oom(&self) -> bool {
        self.extra_jvm_leaked >= self.host_headroom
    }

    /// Adds an intra-JVM (outside-application) leak.
    pub fn leak_intra_jvm(&mut self, bytes: u64) {
        self.intra_jvm_leaked = self.intra_jvm_leaked.saturating_add(bytes);
    }

    /// Adds an extra-JVM (native/kernel) leak.
    pub fn leak_extra_jvm(&mut self, bytes: u64) {
        self.extra_jvm_leaked = self.extra_jvm_leaked.saturating_add(bytes);
    }

    /// Returns bytes leaked intra-JVM outside the application.
    pub fn intra_jvm_leaked(&self) -> u64 {
        self.intra_jvm_leaked
    }

    /// Returns bytes leaked outside the JVM.
    pub fn extra_jvm_leaked(&self) -> u64 {
        self.extra_jvm_leaked
    }

    /// A JVM restart reclaims intra-JVM leaks (but not extra-JVM ones).
    pub fn on_process_restart(&mut self) {
        self.intra_jvm_leaked = 0;
    }

    /// An OS reboot reclaims everything.
    pub fn on_os_reboot(&mut self) {
        self.intra_jvm_leaked = 0;
        self.extra_jvm_leaked = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    #[test]
    fn free_accounts_for_all_consumers() {
        let h = HeapModel::new(GIB, 100 << 20);
        let free = h.free(200 << 20, 50 << 20);
        assert_eq!(free, GIB - (350 << 20));
    }

    #[test]
    fn oom_when_full() {
        let mut h = HeapModel::new(GIB, 100 << 20);
        assert!(!h.is_oom(0, 0));
        h.leak_intra_jvm(2 * GIB);
        assert!(h.is_oom(0, 0));
        assert_eq!(h.free(0, 0), 0);
    }

    #[test]
    fn restart_clears_intra_but_not_extra() {
        let mut h = HeapModel::new(GIB, 100 << 20);
        h.leak_intra_jvm(10 << 20);
        h.leak_extra_jvm(10 << 20);
        h.on_process_restart();
        assert_eq!(h.intra_jvm_leaked(), 0);
        assert_eq!(h.extra_jvm_leaked(), 10 << 20);
        h.on_os_reboot();
        assert_eq!(h.extra_jvm_leaked(), 0);
    }

    #[test]
    fn host_oom_needs_os_reboot() {
        let mut h = HeapModel::new(GIB, 100 << 20);
        h.leak_extra_jvm(GIB);
        assert!(h.host_oom());
        h.on_process_restart();
        assert!(h.host_oom(), "JVM restart does not reclaim native leaks");
        h.on_os_reboot();
        assert!(!h.host_oom());
    }
}
