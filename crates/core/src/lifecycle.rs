//! The reboot lifecycle: one state machine for every recovery depth.
//!
//! The paper's four recovery actions — microreboot, application restart,
//! process restart, OS reboot — are one mechanism at four
//! [`RebootLevel`]s, and this module implements them as one three-phase
//! lifecycle:
//!
//! 1. [`AppServer::begin_recovery`] validates the action, binds sentinels
//!    (component level) or flips the process state (coarse levels), and
//!    returns a [`RebootTicket`] naming the crash and completion instants;
//! 2. [`AppServer::recovery_crash`] runs the destructive phase — thread
//!    kills, transaction rollback, container teardown, and the per-level
//!    resource releases (DB connections, in-process session state, leaked
//!    heap);
//! 3. [`AppServer::recovery_complete`] reinitializes and rebinds, setting
//!    the process back up for the coarse levels.
//!
//! [`RecoveryLifecycle`] tracks the in-flight recoveries. Beginning a
//! coarse recovery cancels every finer one still in flight — the
//! subsumption order is exactly the chain [`RebootLevel::escalate`]
//! generates, so a cancelled microreboot's scheduled completion becomes a
//! harmless no-op instead of racing the restart that replaced it.
//!
//! The per-level methods (`begin_microreboot`, `begin_app_restart`, ...)
//! survive as thin wrappers over the unified API.

use components::descriptor::ComponentId;
use components::registry::Binding;
use simcore::telemetry::{KillCause, RebootLevel, TelemetryEvent};
use simcore::{SimDuration, SimTime};

use crate::app::Application;
use crate::calib;
use crate::request::{Response, Status};
use crate::server::{AppServer, RebootError};

/// Identifier of an in-flight recovery action.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RebootId(u64);

/// Whole-process availability state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProcState {
    /// Serving requests.
    Up,
    /// The application is restarting inside the live server.
    AppRestarting {
        /// When the restart completes.
        until: SimTime,
    },
    /// The JVM process is restarting.
    JvmRestarting {
        /// When the restart completes.
        until: SimTime,
    },
    /// The node's operating system is rebooting.
    OsRebooting {
        /// When the reboot (including JVM start) completes.
        until: SimTime,
    },
    /// The JVM died of heap exhaustion; waiting for a restart.
    DownOom,
    /// The JVM crashed (e.g., register bit flip); waiting for a restart.
    Crashed,
}

/// A scheduled recovery action with its phase instants.
#[derive(Clone, Copy, Debug)]
pub struct RebootTicket {
    /// Identifier for the crash/complete calls.
    pub id: RebootId,
    /// When the crash phase runs (now, or now+drain).
    pub crash_at: SimTime,
    /// When reinitialization completes.
    pub done_at: SimTime,
}

/// One in-flight recovery.
struct ActiveRecovery {
    id: RebootId,
    level: RebootLevel,
    /// Recovery-group members (component level only).
    members: Vec<ComponentId>,
    began_at: SimTime,
    crash_at: SimTime,
    crashed: bool,
    done_at: SimTime,
}

/// The recovery state machine: process availability plus every in-flight
/// recovery, keyed by [`RebootLevel`].
// urb-lint: volatile-state(recovery_crash, recovery_complete, force_state)
pub struct RecoveryLifecycle {
    state: ProcState,
    active: Vec<ActiveRecovery>,
    // urb-lint: allow(S001) — monotonic RebootId allocator: surviving reboots is what keeps ids unique across them.
    next_id: u64,
}

impl Default for RecoveryLifecycle {
    fn default() -> Self {
        RecoveryLifecycle::new()
    }
}

impl RecoveryLifecycle {
    /// Creates the lifecycle for a freshly started (up) server.
    pub fn new() -> Self {
        RecoveryLifecycle {
            state: ProcState::Up,
            active: Vec::new(),
            next_id: 0,
        }
    }

    /// Returns the process availability state.
    pub fn state(&self) -> ProcState {
        self.state
    }

    /// Returns true if the process is up and serving.
    pub fn is_up(&self) -> bool {
        self.state == ProcState::Up
    }

    /// Forces the process state (OOM death, register-flip crash).
    pub(crate) fn force_state(&mut self, state: ProcState) {
        self.state = state;
    }

    fn alloc_id(&mut self) -> RebootId {
        self.next_id += 1;
        RebootId(self.next_id)
    }

    fn find(&self, id: RebootId) -> Option<usize> {
        self.active.iter().position(|r| r.id == id)
    }

    /// Returns true if `m` is a member of any in-flight microreboot.
    fn is_member_rebooting(&self, m: ComponentId) -> bool {
        self.active.iter().any(|r| r.members.contains(&m))
    }

    /// Cancels every in-flight recovery that `level` subsumes (per
    /// [`RebootLevel::supersedes`], i.e. the escalation chain).
    fn cancel_finer(&mut self, level: RebootLevel) {
        self.active.retain(|r| !level.supersedes(r.level));
    }

    /// Returns the id of the in-flight recovery at `level`, if any.
    fn active_id_at(&self, level: RebootLevel) -> Option<RebootId> {
        self.active.iter().find(|r| r.level == level).map(|r| r.id)
    }

    /// In-flight component-level recoveries as `(members, crash_at,
    /// done_at)` for the server's query surface.
    pub(crate) fn component_reboots(
        &self,
    ) -> impl Iterator<Item = (&[ComponentId], SimTime, SimTime)> {
        self.active
            .iter()
            .filter(|r| r.level == RebootLevel::Component)
            .map(|r| (r.members.as_slice(), r.crash_at, r.done_at))
    }
}

impl<A: Application> AppServer<A> {
    // ---- the unified lifecycle API -----------------------------------

    /// Begins a recovery action at `level`.
    ///
    /// `targets` names the components to microreboot (expanded to their
    /// recovery groups; ignored at coarser levels). `drain` delays the
    /// component-level crash phase (Table 6's drain window). The caller
    /// invokes [`AppServer::recovery_crash`] at the ticket's `crash_at`
    /// and [`AppServer::recovery_complete`] at its `done_at`.
    ///
    /// Component and application levels require an up process; process
    /// and OS levels always succeed (`kill -9` needs no cooperation).
    /// Beginning a coarse recovery cancels every finer one in flight.
    pub fn begin_recovery(
        &mut self,
        level: RebootLevel,
        targets: &[&str],
        now: SimTime,
        drain: Option<SimDuration>,
    ) -> Result<RebootTicket, RebootError> {
        match level {
            RebootLevel::Component => self.begin_component(targets, now, drain),
            RebootLevel::Application => {
                if !self.lifecycle.is_up() {
                    return Err(RebootError::ProcessNotUp);
                }
                let until = now + calib::APP_RESTART_CRASH + calib::APP_RESTART_REINIT;
                Ok(self.begin_coarse(level, now, until))
            }
            RebootLevel::Process => {
                let until =
                    now + calib::JVM_CRASH + calib::JVM_SERVICES_INIT + calib::JVM_APP_DEPLOY;
                Ok(self.begin_coarse(level, now, until))
            }
            RebootLevel::OperatingSystem => {
                let until =
                    now + calib::OS_REBOOT + calib::JVM_SERVICES_INIT + calib::JVM_APP_DEPLOY;
                Ok(self.begin_coarse(level, now, until))
            }
        }
    }

    /// Runs the destructive phase of a recovery: kills the threads in its
    /// blast radius, rolls their transactions back, and tears down the
    /// per-level machinery. Returns the killed requests' failure
    /// responses (the caller delivers them). A cancelled or repeated id
    /// is a no-op.
    pub fn recovery_crash(&mut self, id: RebootId, now: SimTime) -> Vec<Response> {
        let Some(pos) = self.lifecycle.find(id) else {
            return Vec::new();
        };
        if self.lifecycle.active[pos].crashed {
            return Vec::new();
        }
        self.lifecycle.active[pos].crashed = true;
        let level = self.lifecycle.active[pos].level;
        match level {
            RebootLevel::Component => {
                let members = self.lifecycle.active[pos].members.clone();
                self.component_crash(&members, now)
            }
            RebootLevel::Application => {
                let killed = self.kill_everything(now, false);
                self.teardown_containers();
                // Redeployment rebuilds the degraded pools; a component
                // microreboot's warm restart (above) leaves them slow.
                self.inner.degraded.clear();
                killed
            }
            RebootLevel::Process => {
                let killed = self.kill_everything(now, true);
                self.teardown_containers();
                self.process_teardown();
                self.inner.degraded.clear();
                killed
            }
            RebootLevel::OperatingSystem => {
                let killed = self.kill_everything(now, true);
                self.teardown_containers();
                self.process_teardown();
                self.inner.degraded.clear();
                // Only an OS reboot reclaims native/kernel leaks.
                self.inner.heap.on_os_reboot();
                self.inner.extra_leak_rate = 0;
                killed
            }
        }
    }

    /// Completes a recovery: reinitializes and rebinds its blast radius
    /// and, at the coarse levels, brings the process back up. Returns the
    /// member names (component level) for logging. A cancelled id is a
    /// no-op.
    pub fn recovery_complete(&mut self, id: RebootId, now: SimTime) -> Vec<&'static str> {
        let Some(pos) = self.lifecycle.find(id) else {
            return Vec::new();
        };
        let rec = self.lifecycle.active.remove(pos);
        debug_assert!(rec.crashed, "crash phase must run before complete");
        let names = match rec.level {
            RebootLevel::Component => {
                let mut names = Vec::with_capacity(rec.members.len());
                for m in &rec.members {
                    let name = self.inner.graph.name_of(*m);
                    self.inner.containers[m.0].complete_start(now);
                    self.inner.registry.bind(name, Binding::Active(*m));
                    self.app.on_component_reinit(name);
                    names.push(name);
                }
                if rec.members.contains(&self.inner.web_id) {
                    // The web tier revalidates in-process session state as
                    // it reinitializes, evicting objects that fail
                    // application checks.
                    let AppServer { app, inner, .. } = self;
                    inner.session.revalidate(|obj| app.session_valid(obj));
                }
                names
            }
            RebootLevel::Application => {
                self.restart_containers(now);
                for id in self.inner.graph.all_ids() {
                    self.app.on_component_reinit(self.inner.graph.name_of(id));
                }
                let AppServer { app, inner, .. } = self;
                inner.session.revalidate(|obj| app.session_valid(obj));
                self.lifecycle.state = ProcState::Up;
                Vec::new()
            }
            RebootLevel::Process | RebootLevel::OperatingSystem => {
                self.restart_containers(now);
                self.app.on_process_restart();
                self.lifecycle.state = ProcState::Up;
                Vec::new()
            }
        };
        // A leak that is a code bug resumes in the fresh instances.
        self.inner.reapply_persistent_leaks();
        self.inner.emit(TelemetryEvent::RebootFinished {
            node: self.inner.node,
            level: rec.level,
            duration: now - rec.began_at,
            at: now,
        });
        names
    }

    // ---- per-level phases --------------------------------------------

    fn begin_component(
        &mut self,
        targets: &[&str],
        now: SimTime,
        drain: Option<SimDuration>,
    ) -> Result<RebootTicket, RebootError> {
        if !self.lifecycle.is_up() {
            return Err(RebootError::ProcessNotUp);
        }
        let mut members: Vec<ComponentId> = Vec::new();
        for t in targets {
            let id = self
                .inner
                .graph
                .id_of(t)
                .ok_or_else(|| RebootError::UnknownComponent(t.to_string()))?;
            for m in self.inner.graph.recovery_group(id) {
                if !members.contains(m) {
                    members.push(*m);
                }
            }
        }
        // Any overlap with an in-flight microreboot rejects the whole
        // action. Rebooting only the non-overlapping remainder would split
        // a recovery group (members reboot together or not at all), and
        // re-crashing an already-crashed container would double-kill its
        // requests mid-reinit. The rejection is deterministic: the
        // conductor coalesces overlapping actions before they reach this
        // API, so a caller that sees `AlreadyRebooting` bypassed it and
        // must retry after the in-flight microreboot completes.
        if members.is_empty()
            || members
                .iter()
                .any(|m| self.lifecycle.is_member_rebooting(*m))
        {
            return Err(RebootError::AlreadyRebooting);
        }
        members.sort_unstable();
        // Group cost: the slowest member plus a per-extra-member increment
        // (Table 3's EntityGroup amortization), with trial jitter.
        let n = members.len() as u64;
        let crash = members
            .iter()
            .map(|m| self.inner.containers[m.0].descriptor.crash_cost)
            .fold(SimDuration::ZERO, SimDuration::max)
            + calib::GROUP_EXTRA_CRASH * (n - 1);
        let reinit_base = members
            .iter()
            .map(|m| self.inner.containers[m.0].descriptor.reinit_cost)
            .fold(SimDuration::ZERO, SimDuration::max)
            + calib::GROUP_EXTRA_REINIT * (n - 1);
        let reinit = self.inner.rng.jittered(reinit_base, calib::REINIT_JITTER);
        let crash_at = now + drain.unwrap_or(SimDuration::ZERO);
        let done_at = crash_at + crash + reinit;
        // Bind sentinels now: new callers see Retry-After for the whole
        // window (Section 6.2 binds the sentinel before the reboot).
        for m in &members {
            let name = self.inner.graph.name_of(*m);
            self.inner.registry.bind(
                name,
                Binding::Sentinel {
                    retry_after: calib::RETRY_AFTER,
                },
            );
        }
        let id = self.lifecycle.alloc_id();
        self.inner.emit(TelemetryEvent::RebootBegun {
            node: self.inner.node,
            level: RebootLevel::Component,
            members: members.len() as u32,
            at: now,
        });
        self.lifecycle.active.push(ActiveRecovery {
            id,
            level: RebootLevel::Component,
            members,
            began_at: now,
            crash_at,
            crashed: false,
            done_at,
        });
        Ok(RebootTicket {
            id,
            crash_at,
            done_at,
        })
    }

    fn begin_coarse(&mut self, level: RebootLevel, now: SimTime, until: SimTime) -> RebootTicket {
        // A coarser recovery subsumes every finer one still in flight;
        // their scheduled crash/complete callbacks become no-ops.
        self.lifecycle.cancel_finer(level);
        self.lifecycle.state = match level {
            RebootLevel::Application => ProcState::AppRestarting { until },
            RebootLevel::Process => ProcState::JvmRestarting { until },
            RebootLevel::OperatingSystem => ProcState::OsRebooting { until },
            RebootLevel::Component => unreachable!("component level is not coarse"),
        };
        let id = self.lifecycle.alloc_id();
        self.inner.emit(TelemetryEvent::RebootBegun {
            node: self.inner.node,
            level,
            members: 0,
            at: now,
        });
        self.lifecycle.active.push(ActiveRecovery {
            id,
            level,
            members: Vec::new(),
            began_at: now,
            crash_at: now,
            crashed: false,
            done_at: until,
        });
        RebootTicket {
            id,
            crash_at: now,
            done_at: until,
        }
    }

    /// The microreboot thread kill: destroys the member containers and
    /// kills the requests in their blast radius.
    fn component_crash(&mut self, members: &[ComponentId], now: SimTime) -> Vec<Response> {
        let victims = self.pipeline.take_victims_touching(members);
        let mut killed = Vec::with_capacity(victims.len());
        for v in victims {
            if let Some(t) = v.txn {
                let mut db = self.inner.db.borrow_mut();
                if db.txn_active(t) {
                    let _ = db.rollback(t);
                }
            }
            let during = self.inner.graph.name_of(v.hung_in.unwrap_or(members[0]));
            killed.push(Self::killed_response(&v.req, now, during));
            self.inner.emit(TelemetryEvent::RequestKilled {
                node: self.inner.node,
                req: v.req.id.0,
                cause: KillCause::Microreboot,
                at: now,
            });
        }
        // Destroy the containers (reclaims leaks, discards metadata).
        for m in members {
            self.inner.containers[m.0].crash();
            self.inner.containers[m.0].begin_start();
        }
        killed
    }

    /// Kills every request in the pipeline (the coarse levels' crash).
    ///
    /// `network_level` selects connection-drop responses (process/OS
    /// death) over in-server 500s (application restart).
    pub(crate) fn kill_everything(&mut self, now: SimTime, network_level: bool) -> Vec<Response> {
        let victims = self.pipeline.take_all();
        let mut killed = Vec::with_capacity(victims.len());
        for v in victims {
            if let Some(t) = v.txn {
                let mut db = self.inner.db.borrow_mut();
                if db.txn_active(t) {
                    let _ = db.rollback(t);
                }
            }
            let resp = if network_level {
                self.instant_response(&v.req, now, Status::NetworkError, false)
            } else {
                Self::killed_response(&v.req, now, "restart")
            };
            killed.push(resp);
            self.inner.emit(TelemetryEvent::RequestKilled {
                node: self.inner.node,
                req: v.req.id.0,
                cause: KillCause::Restart,
                at: now,
            });
        }
        killed
    }

    /// Stops every container and unbinds every name.
    fn teardown_containers(&mut self) {
        for c in &mut self.inner.containers {
            c.full_stop();
        }
        for id in self.inner.graph.all_ids() {
            self.inner.registry.unbind(self.inner.graph.name_of(id));
        }
    }

    /// The `kill -9` resource release: the OS tears down the database
    /// connections (releasing any locks, Section 7), in-process session
    /// state is lost, and intra-JVM leaks (and low-level fault state) die
    /// with the process.
    fn process_teardown(&mut self) {
        if let Some(conn) = self.inner.db_conn.take() {
            let _ = self.inner.db.borrow_mut().close_conn(conn);
        }
        self.inner.session.on_process_restart();
        self.inner.heap.on_process_restart();
        self.inner.lowlevel = None;
        self.inner.intra_leak_rate = 0;
    }

    /// Restarts every container and rebinds every name (coarse completes).
    fn restart_containers(&mut self, now: SimTime) {
        for id in self.inner.graph.all_ids() {
            let c = &mut self.inner.containers[id.0];
            c.begin_start();
            c.complete_start(now);
            self.inner
                .registry
                .bind(self.inner.graph.name_of(id), Binding::Active(id));
        }
    }

    fn complete_level(&mut self, level: RebootLevel, now: SimTime) {
        if let Some(id) = self.lifecycle.active_id_at(level) {
            self.recovery_complete(id, now);
        }
    }

    // ---- legacy per-level wrappers -----------------------------------

    /// Begins a microreboot of `targets` (component names), expanded to
    /// their recovery groups. See [`AppServer::begin_recovery`].
    pub fn begin_microreboot(
        &mut self,
        targets: &[&str],
        now: SimTime,
        drain: Option<SimDuration>,
    ) -> Result<RebootTicket, RebootError> {
        self.begin_recovery(RebootLevel::Component, targets, now, drain)
    }

    /// Runs the crash phase of a microreboot. See
    /// [`AppServer::recovery_crash`].
    pub fn microreboot_crash(&mut self, id: RebootId, now: SimTime) -> Vec<Response> {
        self.recovery_crash(id, now)
    }

    /// Completes a microreboot, returning the member names. See
    /// [`AppServer::recovery_complete`].
    pub fn microreboot_complete(&mut self, id: RebootId, now: SimTime) -> Vec<&'static str> {
        self.recovery_complete(id, now)
    }

    /// Restarts the whole application in place. Returns the completion
    /// instant and the killed requests' responses.
    ///
    /// Fails when the JVM itself is down — a dead process cannot redeploy
    /// an application; the caller must escalate to a process restart.
    pub fn begin_app_restart(
        &mut self,
        now: SimTime,
    ) -> Result<(SimTime, Vec<Response>), RebootError> {
        let ticket = self.begin_recovery(RebootLevel::Application, &[], now, None)?;
        let killed = self.recovery_crash(ticket.id, now);
        Ok((ticket.done_at, killed))
    }

    /// Completes an application restart.
    pub fn app_restart_complete(&mut self, now: SimTime) {
        self.complete_level(RebootLevel::Application, now);
    }

    /// `kill -9`s the JVM and begins a process restart.
    pub fn begin_process_restart(&mut self, now: SimTime) -> (SimTime, Vec<Response>) {
        let ticket = self
            .begin_recovery(RebootLevel::Process, &[], now, None)
            .expect("process restart is always possible");
        let killed = self.recovery_crash(ticket.id, now);
        (ticket.done_at, killed)
    }

    /// Completes a process restart.
    pub fn process_restart_complete(&mut self, now: SimTime) {
        self.complete_level(RebootLevel::Process, now);
    }

    /// Reboots the node's operating system (the recursive policy's last
    /// resort). Clears even extra-JVM leaks.
    pub fn begin_os_reboot(&mut self, now: SimTime) -> (SimTime, Vec<Response>) {
        let ticket = self
            .begin_recovery(RebootLevel::OperatingSystem, &[], now, None)
            .expect("OS reboot is always possible");
        let killed = self.recovery_crash(ticket.id, now);
        (ticket.done_at, killed)
    }

    /// Completes an OS reboot.
    pub fn os_reboot_complete(&mut self, now: SimTime) {
        self.complete_level(RebootLevel::OperatingSystem, now);
    }
}
