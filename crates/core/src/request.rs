//! Requests and responses at the server boundary.
//!
//! A request is one HTTP operation issued by an emulated client; a response
//! carries everything the paper's failure detectors look at: the HTTP
//! status (network errors and 4xx/5xx), failure keywords in the body
//! ("exception", "failed", "error"), application-specific anomalies (login
//! prompt while logged in, negative item IDs), and — visible only to the
//! comparison-based detector — whether the response was influenced by
//! injected corruption (`tainted`).

use simcore::{SimDuration, SimTime};
use statestore::SessionId;

/// Identifier of a request, unique within a simulation run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ReqId(pub u64);

/// Application-defined operation code (eBid defines 25 of them).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpCode(pub u16);

/// One HTTP request entering a node.
#[derive(Clone, Debug)]
pub struct Request {
    /// Unique id.
    pub id: ReqId,
    /// The operation requested (the URL prefix analogue).
    pub op: OpCode,
    /// The client's session cookie, if it has one.
    pub session: Option<SessionId>,
    /// Whether the operation is idempotent (safe to retry transparently).
    pub idempotent: bool,
    /// Operation argument (item id, user id, ... — application-defined).
    pub arg: i64,
    /// When the request arrived at the node.
    pub submitted_at: SimTime,
}

/// HTTP-level status of a response.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// 200 OK.
    Ok,
    /// A client-side error (HTTP 4xx).
    ClientError(u16),
    /// A server-side error (HTTP 5xx).
    ServerError(u16),
    /// 503 with a `Retry-After` header: the target component is
    /// microrebooting; retry after the given interval (Section 6.2).
    RetryAfter(SimDuration),
    /// The connection failed (process down, OS rebooting, queue refused).
    NetworkError,
    /// The client gave up waiting (or the server purged a stuck request
    /// via its TTL lease). Unlike [`Status::NetworkError`], the connection
    /// was accepted: the request is attributable to its URL.
    TimedOut,
}

impl Status {
    /// Returns true if the paper's *simple* end-to-end detector flags this
    /// status (network errors, 4xx, 5xx — but not Retry-After, which the
    /// client honours transparently).
    pub fn is_error(self) -> bool {
        matches!(
            self,
            Status::ClientError(_)
                | Status::ServerError(_)
                | Status::NetworkError
                | Status::TimedOut
        )
    }
}

/// Failure keywords and anomalies scraped from the response body.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BodyMarkers {
    /// The HTML contains "exception" / "failed" / "error".
    pub exception_text: bool,
    /// The user was prompted to log in although already logged in
    /// (session lost or unreadable).
    pub login_prompt: bool,
    /// Application-visible nonsense such as a negative item id.
    pub invalid_data: bool,
    /// The error page names the session store as the culprit (the SSM was
    /// unreachable). Always accompanies `exception_text`; lets detectors
    /// attribute the failure to the state plane instead of a component.
    pub store_error: bool,
}

impl BodyMarkers {
    /// Returns true if any keyword/anomaly detector would fire.
    pub fn any(self) -> bool {
        self.exception_text || self.login_prompt || self.invalid_data
    }
}

/// A finished response.
#[derive(Clone, Debug)]
pub struct Response {
    /// The request this answers.
    pub req: ReqId,
    /// The operation that was requested.
    pub op: OpCode,
    /// HTTP status.
    pub status: Status,
    /// Body anomalies visible to end-to-end monitors.
    pub markers: BodyMarkers,
    /// True if injected corruption influenced this response. Invisible to
    /// end-to-end monitors; the comparison detector's oracle (the response
    /// would differ from a known-good instance's).
    pub tainted: bool,
    /// When the response left the node.
    pub finished_at: SimTime,
    /// The component whose failure caused an error response, when the
    /// server can attribute it (feeds recovery-manager diagnosis).
    pub failed_component: Option<&'static str>,
    /// A new session cookie for the client (set by login).
    pub set_cookie: Option<SessionId>,
    /// Instructs the client to drop its cookie (logout).
    pub clear_cookie: bool,
}

impl Response {
    /// Returns true if the simple end-to-end detector flags this response.
    pub fn simple_detector_flags(&self) -> bool {
        self.status.is_error() || self.markers.any()
    }

    /// Returns true if the comparison-based detector flags this response
    /// (everything the simple detector sees, plus silent wrong output).
    pub fn comparison_detector_flags(&self) -> bool {
        self.simple_detector_flags() || self.tainted
    }

    /// Returns true if this is a `Retry-After` answer the client should
    /// transparently honour rather than count as a failure.
    pub fn wants_retry(&self) -> Option<SimDuration> {
        match self.status {
            Status::RetryAfter(d) => Some(d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(status: Status) -> Response {
        Response {
            req: ReqId(1),
            op: OpCode(0),
            status,
            markers: BodyMarkers::default(),
            tainted: false,
            finished_at: SimTime::ZERO,
            failed_component: None,
            set_cookie: None,
            clear_cookie: false,
        }
    }

    #[test]
    fn simple_detector_sees_http_errors() {
        assert!(!resp(Status::Ok).simple_detector_flags());
        assert!(resp(Status::ServerError(500)).simple_detector_flags());
        assert!(resp(Status::ClientError(404)).simple_detector_flags());
        assert!(resp(Status::NetworkError).simple_detector_flags());
    }

    #[test]
    fn retry_after_is_not_a_failure() {
        let r = resp(Status::RetryAfter(SimDuration::from_secs(2)));
        assert!(!r.simple_detector_flags());
        assert_eq!(r.wants_retry(), Some(SimDuration::from_secs(2)));
    }

    #[test]
    fn markers_trigger_simple_detector() {
        let mut r = resp(Status::Ok);
        r.markers.login_prompt = true;
        assert!(r.simple_detector_flags());
    }

    #[test]
    fn taint_visible_only_to_comparison_detector() {
        let mut r = resp(Status::Ok);
        r.tainted = true;
        assert!(!r.simple_detector_flags());
        assert!(r.comparison_detector_flags());
    }
}
