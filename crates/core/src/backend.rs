//! Shared-tier handles: the database and the session store as seen by one
//! node.
//!
//! In the paper's three-tier deployment the persistence tier (MySQL) and
//! the external session store (SSM) are shared by every middle-tier node,
//! while FastS is private to each node's JVM. These handles encode that
//! topology: `SharedDb`/shared [`Ssm`] are `Rc<RefCell<..>>` values cloned
//! into every node of a simulated cluster, whereas a [`SessionBackend`]
//! either owns a private `FastS` or points at the shared SSM.
//!
//! The simulation is single-threaded by design (determinism), so
//! `Rc<RefCell>` is the right sharing primitive: these are *simulated*
//! machines, not OS threads.

use std::cell::RefCell;
use std::rc::Rc;

use simcore::{SimDuration, SimTime};
use statestore::session::{SessionId, SessionObject, SessionStore, StoreError};
use statestore::{Database, FastS, Ssm};

/// The shared persistence tier handle.
pub type SharedDb = Rc<RefCell<Database>>;

/// Creates a shared handle to a database.
pub fn share_db(db: Database) -> SharedDb {
    Rc::new(RefCell::new(db))
}

/// A shared handle to an SSM deployment.
pub type SharedSsm = Rc<RefCell<Ssm>>;

/// Creates a shared handle to an SSM.
pub fn share_ssm(ssm: Ssm) -> SharedSsm {
    Rc::new(RefCell::new(ssm))
}

/// Where one node keeps session state.
pub enum SessionBackend {
    /// Node-private in-process store.
    FastS(FastS),
    /// Shared external store.
    Ssm(SharedSsm),
}

impl SessionBackend {
    /// Returns the store's short name ("FastS" / "SSM").
    pub fn name(&self) -> &'static str {
        match self {
            SessionBackend::FastS(_) => "FastS",
            SessionBackend::Ssm(_) => "SSM",
        }
    }

    /// Reads the session object for `id`.
    pub fn read(&mut self, id: SessionId) -> Result<Option<SessionObject>, StoreError> {
        match self {
            SessionBackend::FastS(s) => s.read(id),
            SessionBackend::Ssm(s) => s.borrow_mut().read(id),
        }
    }

    /// Writes the session object for `id`.
    pub fn write(&mut self, id: SessionId, obj: SessionObject) -> Result<(), StoreError> {
        match self {
            SessionBackend::FastS(s) => s.write(id, obj),
            SessionBackend::Ssm(s) => s.borrow_mut().write(id, obj),
        }
    }

    /// Removes the session object for `id`.
    pub fn remove(&mut self, id: SessionId) -> Result<(), StoreError> {
        match self {
            SessionBackend::FastS(s) => s.remove(id),
            SessionBackend::Ssm(s) => s.borrow_mut().remove(id),
        }
    }

    /// CPU consumed by one store access (marshalling and the in-process
    /// part of the call). Holds a worker.
    pub fn access_cpu(&self) -> SimDuration {
        match self {
            SessionBackend::FastS(_) => SimDuration::from_micros(50),
            // SSM marshals the object and drives the network stack.
            SessionBackend::Ssm(_) => SimDuration::from_micros(1_800),
        }
    }

    /// Wire latency of one store access (time on the network, no CPU
    /// held). Zero for the in-process store. The SSM adds whatever extra
    /// RTT an armed store-slow or link-delay fault currently imposes
    /// (zero when healthy, so pinned traces are unaffected).
    pub fn access_latency(&self) -> SimDuration {
        match self {
            SessionBackend::FastS(_) => SimDuration::ZERO,
            SessionBackend::Ssm(s) => {
                SimDuration::from_micros(6_200) + s.borrow().extra_access_latency()
            }
        }
    }

    /// Returns the per-read access cost.
    pub fn read_cost(&self) -> SimDuration {
        match self {
            SessionBackend::FastS(s) => s.read_cost(),
            SessionBackend::Ssm(s) => s.borrow().read_cost(),
        }
    }

    /// Returns the per-write access cost.
    pub fn write_cost(&self) -> SimDuration {
        match self {
            SessionBackend::FastS(s) => s.write_cost(),
            SessionBackend::Ssm(s) => s.borrow().write_cost(),
        }
    }

    /// Returns true if session state survives a process restart.
    pub fn survives_process_restart(&self) -> bool {
        match self {
            SessionBackend::FastS(_) => false,
            SessionBackend::Ssm(_) => true,
        }
    }

    /// Informs the backend that this node's process restarted.
    pub fn on_process_restart(&mut self) {
        match self {
            SessionBackend::FastS(s) => s.on_process_restart(),
            SessionBackend::Ssm(_) => {}
        }
    }

    /// Advances the backend's clock (leases in SSM).
    pub fn advance_to(&mut self, now: SimTime) {
        if let SessionBackend::Ssm(s) = self {
            s.borrow_mut().advance_to(now);
        }
    }

    /// Bytes of session state held inside this node's process.
    pub fn in_process_bytes(&self) -> usize {
        match self {
            SessionBackend::FastS(s) => s.in_process_bytes(),
            SessionBackend::Ssm(_) => 0,
        }
    }

    /// Returns the number of live sessions visible through this backend.
    pub fn live_sessions(&self) -> usize {
        match self {
            SessionBackend::FastS(s) => s.live_sessions(),
            SessionBackend::Ssm(s) => s.borrow().live_sessions(),
        }
    }

    /// Revalidates in-process session objects with an application check,
    /// discarding failures; external stores are not revalidated here.
    ///
    /// Returns the number discarded. The WAR reinit path calls this.
    pub fn revalidate<F>(&mut self, valid: F) -> usize
    where
        F: Fn(&SessionObject) -> bool,
    {
        match self {
            SessionBackend::FastS(s) => s.revalidate(valid),
            SessionBackend::Ssm(_) => 0,
        }
    }

    /// Fault-injection access to the private FastS, if that is the backend.
    pub fn fasts_mut(&mut self) -> Option<&mut FastS> {
        match self {
            SessionBackend::FastS(s) => Some(s),
            SessionBackend::Ssm(_) => None,
        }
    }

    /// The shared SSM handle, if that is the backend (fault injection and
    /// cluster wiring).
    pub fn ssm_handle(&self) -> Option<SharedSsm> {
        match self {
            SessionBackend::FastS(_) => None,
            SessionBackend::Ssm(s) => Some(s.clone()),
        }
    }

    /// Returns the number of injection-tainted sessions still stored.
    pub fn tainted_sessions(&self) -> usize {
        match self {
            SessionBackend::FastS(s) => s.tainted_sessions(),
            SessionBackend::Ssm(s) => s.borrow().tainted_sessions(),
        }
    }

    /// Returns true if the stored object for `id` is injection-tainted
    /// (comparison-detector oracle).
    pub fn is_tainted(&self, id: SessionId) -> bool {
        match self {
            SessionBackend::FastS(s) => s.is_tainted(id),
            SessionBackend::Ssm(s) => s.borrow().is_tainted(id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> SessionObject {
        let mut o = SessionObject::new();
        o.set("user_id", 1i64);
        o
    }

    #[test]
    fn fasts_backend_basic_flow() {
        let mut b = SessionBackend::FastS(FastS::new());
        assert_eq!(b.name(), "FastS");
        b.write(SessionId(1), obj()).unwrap();
        assert!(b.read(SessionId(1)).unwrap().is_some());
        assert!(!b.survives_process_restart());
        b.on_process_restart();
        assert!(b.read(SessionId(1)).unwrap().is_none());
    }

    #[test]
    fn ssm_backend_shares_state_between_nodes() {
        let ssm = share_ssm(Ssm::new(2));
        let mut node_a = SessionBackend::Ssm(ssm.clone());
        let mut node_b = SessionBackend::Ssm(ssm);
        node_a.write(SessionId(1), obj()).unwrap();
        assert!(
            node_b.read(SessionId(1)).unwrap().is_some(),
            "another node sees the session"
        );
        node_a.on_process_restart();
        assert!(node_b.read(SessionId(1)).unwrap().is_some());
        assert!(node_a.survives_process_restart());
    }

    #[test]
    fn costs_reflect_store_choice() {
        let fasts = SessionBackend::FastS(FastS::new());
        let ssm = SessionBackend::Ssm(share_ssm(Ssm::new(2)));
        assert!(ssm.read_cost() > fasts.read_cost());
        assert_eq!(ssm.in_process_bytes(), 0);
    }

    #[test]
    fn revalidate_only_touches_in_process_store() {
        let mut ssm = SessionBackend::Ssm(share_ssm(Ssm::new(2)));
        ssm.write(SessionId(1), obj()).unwrap();
        assert_eq!(ssm.revalidate(|_| false), 0, "SSM not revalidated");
        let mut fasts = SessionBackend::FastS(FastS::new());
        fasts.write(SessionId(1), obj()).unwrap();
        assert_eq!(fasts.revalidate(|_| false), 1);
    }
}
