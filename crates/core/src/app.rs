//! The application-facing API of the microreboot-enabled server.
//!
//! A crash-only application plugs into the server by implementing
//! [`Application`]: it declares its components (descriptors), and handles
//! each request through a [`CallContext`] that
//! is its *only* route to components, the database and the session store.
//! The context is a capability: application code cannot keep direct
//! references across component boundaries, cannot touch state except
//! through the segregated stores, and cannot observe whether its caller is
//! a microreboot away — which is exactly the discipline Section 2
//! prescribes.

use components::descriptor::ComponentDescriptor;
use simcore::SimDuration;
use statestore::session::SessionObject;

use crate::context::CallContext;
use crate::request::{OpCode, Request};

/// Why a call (or a whole request) failed, as seen by the platform.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CallError {
    /// An exception propagated out (bad lookup, corrupted metadata, null
    /// dereference, database error, ...). The servlet renders an error
    /// page: HTTP 500 with exception text in the body.
    Exception,
    /// The callee is microrebooting: retry after the given interval
    /// (Section 2's `RetryAfter(t)`).
    Retry(SimDuration),
    /// The call entered a component that never returns (deadlock or
    /// infinite loop). The shepherding thread is stuck until a microreboot
    /// kills it or the request TTL expires.
    Hang,
}

/// A crash-only application deployable on the microreboot-enabled server.
pub trait Application {
    /// The component descriptors (one must be the web component).
    fn descriptors(&self) -> Vec<ComponentDescriptor>;

    /// The business methods of a component (used to build its transaction
    /// method map).
    fn methods_of(&self, component: &str) -> &'static [&'static str];

    /// The name of the web (WAR) component.
    fn web_component(&self) -> &'static str;

    /// Base CPU cost of an operation before store accesses are added.
    fn base_cost(&self, op: OpCode) -> SimDuration;

    /// Handles one request. All component, database and session access
    /// goes through `ctx`.
    fn handle(&mut self, ctx: &mut CallContext<'_>, req: &Request) -> Result<(), CallError>;

    /// Application-level validity check for a session object, run by the
    /// web tier when it revalidates in-process session state after a WAR
    /// microreboot. Detects null/invalid corruption; *wrong* values pass.
    fn session_valid(&self, obj: &SessionObject) -> bool;

    /// The static component call path of an operation (the URL-prefix →
    /// component map from static analysis), web component first. Drives
    /// quarantine admission: while a recovery group microreboots, requests
    /// whose path touches it can be shed at the door with `Retry-After`
    /// instead of being admitted only to hit a sentinel mid-flight. The
    /// default (no path information) disables that optimization.
    fn call_path(&self, _op: OpCode) -> &'static [&'static str] {
        &[]
    }

    /// Called when a component finishes reinitializing after a microreboot,
    /// so the application can reset that component's volatile caches (e.g.,
    /// eBid's primary-key generator cache).
    fn on_component_reinit(&mut self, component: &str);

    /// Called when the whole process restarts.
    fn on_process_restart(&mut self);
}
