//! The microreboot-enabled application server.
//!
//! [`AppServer`] hosts one crash-only [`Application`] on one simulated
//! node. It owns the containers, the naming registry, the worker pool, the
//! heap model and the request lifecycle, and implements the paper's
//! recovery actions:
//!
//! * **Microreboot** (Section 3.2) — destroy all instances of the target
//!   component(s) and their recovery-group closure, kill their shepherding
//!   threads, abort their transactions, release their resources, discard
//!   their container metadata, then reinstantiate and reinitialize —
//!   binding a sentinel in the naming service meanwhile so callers can be
//!   told `Retry-After` (Section 6.2). The classloader is preserved.
//! * **Application restart** — stop and redeploy every component.
//! * **Process (JVM) restart** — `kill -9` plus full server
//!   reinitialization; in-process session state (FastS) is lost.
//! * **OS reboot** — the recursive policy's last resort.
//!
//! The server is a *passive* state machine over simulated time: every
//! method takes `now`, and methods that start timed work return the instant
//! it finishes so the caller (the cluster simulation) can schedule the
//! follow-up call. This keeps the server synchronously testable.

use std::collections::HashMap;

use components::container::Container;
use components::descriptor::ComponentId;
use components::graph::DependencyGraph;
use components::registry::{Binding, NamingRegistry};
use simcore::{SimDuration, SimRng, SimTime};
use statestore::db::ConnId;
use statestore::session::{CorruptKind, SessionId};
use statestore::TxnId;

use crate::app::{Application, CallError};
use crate::backend::{SessionBackend, SharedDb};
use crate::calib;
use crate::context::{CallContext, HangKind};
use crate::heap::HeapModel;
use crate::request::{BodyMarkers, OpCode, ReqId, Request, Response, Status};
use crate::workers::WorkerPool;

/// How deep a reboot reaches (the recursive recovery policy's levels).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RebootLevel {
    /// Microreboot of one or more components (EJBs or the WAR).
    Component,
    /// Restart of the whole application inside the running server.
    Application,
    /// Restart of the JVM process (and the server in it).
    Process,
    /// Reboot of the operating system.
    OperatingSystem,
}

impl RebootLevel {
    /// Returns the next-coarser level, or `None` after OS reboot.
    pub fn escalate(self) -> Option<RebootLevel> {
        match self {
            RebootLevel::Component => Some(RebootLevel::Application),
            RebootLevel::Application => Some(RebootLevel::Process),
            RebootLevel::Process => Some(RebootLevel::OperatingSystem),
            RebootLevel::OperatingSystem => None,
        }
    }
}

/// Identifier of an in-flight microreboot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RebootId(u64);

/// Whole-process availability state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProcState {
    /// Serving requests.
    Up,
    /// The application is restarting inside the live server.
    AppRestarting {
        /// When the restart completes.
        until: SimTime,
    },
    /// The JVM process is restarting.
    JvmRestarting {
        /// When the restart completes.
        until: SimTime,
    },
    /// The node's operating system is rebooting.
    OsRebooting {
        /// When the reboot (including JVM start) completes.
        until: SimTime,
    },
    /// The JVM died of heap exhaustion; waiting for a restart.
    DownOom,
    /// The JVM crashed (e.g., register bit flip); waiting for a restart.
    Crashed,
}

/// Low-level faults injected underneath the application (the FIG /
/// FAUmachine layer of Section 5.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LowLevelFault {
    /// Bit flips in process memory: requests randomly fail or go wrong.
    BitFlipMemory,
    /// Bad system call return values: requests randomly fail.
    BadSyscalls,
}

/// Faults injectable through the server's hooks (Section 5.1's catalogue;
/// the data-store corruptions are injected directly on the stores).
#[derive(Clone, Copy, Debug)]
pub enum ServerFault {
    /// Deadlock new calls into a component.
    Deadlock {
        /// Target component.
        component: &'static str,
    },
    /// Spin new calls into a component forever.
    InfiniteLoop {
        /// Target component.
        component: &'static str,
    },
    /// Leak application memory on every invocation of a component.
    AppLeak {
        /// Target component.
        component: &'static str,
        /// Bytes leaked per invocation.
        bytes_per_call: u64,
        /// Whether the leak is a code bug that resumes after a reboot
        /// (Section 6.4's rejuvenation premise) or a one-shot injection a
        /// reboot cures (Table 2's leak row).
        persistent: bool,
    },
    /// Throw a transient exception on the next `calls` invocations.
    TransientExceptions {
        /// Target component.
        component: &'static str,
        /// How many invocations fail.
        calls: u32,
    },
    /// Corrupt the component's JNDI entry.
    CorruptJndi {
        /// Target component.
        component: &'static str,
        /// Null / invalid / wrong.
        kind: CorruptKind,
    },
    /// Corrupt the component's transaction method map.
    CorruptTxnMap {
        /// Target component.
        component: &'static str,
        /// Null / invalid / wrong.
        kind: CorruptKind,
    },
    /// Corrupt the attributes of the component's pooled instances.
    CorruptBeanAttrs {
        /// Target component.
        component: &'static str,
        /// Null / invalid / wrong.
        kind: CorruptKind,
    },
    /// Leak memory inside the JVM but outside the application.
    IntraJvmLeak {
        /// Bytes leaked per second.
        bytes_per_sec: u64,
    },
    /// Leak memory outside the JVM (native/kernel).
    ExtraJvmLeak {
        /// Bytes leaked per second.
        bytes_per_sec: u64,
    },
    /// Flip bits in process memory.
    BitFlipMemory,
    /// Flip bits in process registers (crashes the JVM immediately).
    BitFlipRegisters,
    /// Return bad values from system calls.
    BadSyscalls,
}

/// An error starting a recovery action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RebootError {
    /// Unknown component name.
    UnknownComponent(String),
    /// Every requested component is already being microrebooted.
    AlreadyRebooting,
    /// The process is not up, so component-level actions are meaningless.
    ProcessNotUp,
}

impl std::fmt::Display for RebootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebootError::UnknownComponent(c) => write!(f, "unknown component {c}"),
            RebootError::AlreadyRebooting => write!(f, "target already microrebooting"),
            RebootError::ProcessNotUp => write!(f, "process is not up"),
        }
    }
}

impl std::error::Error for RebootError {}

/// Lifetime counters of one server.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Requests submitted to this node.
    pub submitted: u64,
    /// Responses with 2xx status.
    pub ok: u64,
    /// Responses with 4xx/5xx status.
    pub http_errors: u64,
    /// Connection-level failures returned.
    pub network_errors: u64,
    /// `Retry-After` responses sent while components microrebooted.
    pub retries_sent: u64,
    /// Requests killed by a microreboot's thread kill.
    pub killed_by_microreboot: u64,
    /// Requests killed by app/process/OS restart.
    pub killed_by_restart: u64,
    /// Hung requests purged by TTL expiry.
    pub ttl_kills: u64,
    /// Microreboots performed (component groups).
    pub microreboots: u64,
    /// Whole-application restarts.
    pub app_restarts: u64,
    /// JVM process restarts.
    pub process_restarts: u64,
    /// Operating-system reboots.
    pub os_reboots: u64,
}

/// A request in service: handler already executed, completion scheduled.
struct RunningReq {
    req: Request,
    response: Response,
    touched: Vec<ComponentId>,
    txn: Option<TxnId>,
}

/// A hung request: thread stuck inside a component.
struct HungReq {
    req: Request,
    component: ComponentId,
    since: SimTime,
    txn: Option<TxnId>,
}

struct ActiveReboot {
    id: RebootId,
    members: Vec<ComponentId>,
    crash_at: SimTime,
    crashed: bool,
    done_at: SimTime,
}

/// A request admitted and started; the caller schedules
/// [`AppServer::complete`] at `cpu_done_at`.
#[derive(Clone, Copy, Debug)]
pub struct Started {
    /// The request that started executing.
    pub req: ReqId,
    /// When its CPU service finishes.
    pub cpu_done_at: SimTime,
}

/// Result of submitting a request.
pub enum SubmitOutcome {
    /// The node rejected it immediately (down or overloaded).
    Rejected(Response),
    /// Admitted; call [`AppServer::pump`] to start queued work.
    Admitted,
}

/// A scheduled recovery action with its phase instants.
#[derive(Clone, Copy, Debug)]
pub struct RebootTicket {
    /// Identifier for the crash/complete calls.
    pub id: RebootId,
    /// When the crash phase runs (now, or now+drain).
    pub crash_at: SimTime,
    /// When reinitialization completes.
    pub done_at: SimTime,
}

/// Server configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Node index (for reports).
    pub node: usize,
    /// CPU workers.
    pub cpus: usize,
    /// Request threads.
    pub threads: usize,
    /// Whether sentinel hits on idempotent requests answer `Retry-After`
    /// instead of failing (Section 6.2).
    pub retry_enabled: bool,
    /// RNG seed for this node's jitter.
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            node: 0,
            cpus: calib::NODE_CPUS,
            threads: calib::NODE_THREADS,
            retry_enabled: false,
            seed: 0x5eed,
        }
    }
}

/// Server internals shared with [`CallContext`].
pub struct ServerInner {
    pub(crate) graph: DependencyGraph,
    pub(crate) containers: Vec<Container>,
    pub(crate) registry: NamingRegistry,
    pub(crate) web_id: ComponentId,
    pub(crate) db: SharedDb,
    db_conn: Option<ConnId>,
    pub(crate) session: SessionBackend,
    workers: WorkerPool,
    heap: HeapModel,
    rng: SimRng,
    lowlevel: Option<LowLevelFault>,
    state: ProcState,
    running: HashMap<ReqId, RunningReq>,
    hung: HashMap<ReqId, HungReq>,
    reboots: Vec<ActiveReboot>,
    next_session: u64,
    next_reboot: u64,
    retry_enabled: bool,
    intra_leak_rate: u64,
    extra_leak_rate: u64,
    /// Per-invocation leak rates that survive reboots: the leak is a bug
    /// in the component's *code*, so a reboot reclaims the leaked memory
    /// but the fresh instances leak again (the premise of Section 6.4's
    /// rejuvenation experiments).
    persistent_leaks: Vec<(&'static str, u64)>,
    last_maintenance: SimTime,
    stats: ServerStats,
}

impl ServerInner {
    /// Returns (opening if needed) the server's pooled DB connection.
    pub(crate) fn db_conn(&mut self) -> ConnId {
        match self.db_conn {
            Some(c) if self.db.borrow().conn_open(c) => c,
            _ => {
                let c = self.db.borrow_mut().open_conn();
                self.db_conn = Some(c);
                c
            }
        }
    }

    fn reapply_persistent_leaks(&mut self) {
        for (name, bytes) in &self.persistent_leaks {
            if let Some(id) = self.graph.id_of(name) {
                self.containers[id.0].faults.leak_per_call = *bytes;
            }
        }
    }

    pub(crate) fn alloc_session_id(&mut self) -> SessionId {
        self.next_session += 1;
        SessionId(self.next_session)
    }

    fn component_heap_bytes(&self) -> u64 {
        self.containers.iter().map(|c| c.heap_bytes()).sum()
    }

    fn is_up(&self) -> bool {
        self.state == ProcState::Up
    }
}

/// A microreboot-enabled application server hosting application `A`.
pub struct AppServer<A: Application> {
    app: A,
    inner: ServerInner,
}

impl<A: Application> AppServer<A> {
    /// Builds and warm-starts a server for `app`.
    ///
    /// All components are deployed and active at construction; experiments
    /// begin against a warm node, as the paper's do.
    ///
    /// # Panics
    ///
    /// Panics if the application's descriptors are inconsistent (duplicate
    /// names, unknown references, missing web component) — deployment-time
    /// configuration errors.
    pub fn new(app: A, config: ServerConfig, db: SharedDb, session: SessionBackend) -> Self {
        let descriptors = app.descriptors();
        let graph = DependencyGraph::build(&descriptors).expect("valid deployment descriptors");
        let web_id = graph
            .id_of(app.web_component())
            .expect("web component must be declared");
        let mut containers = Vec::with_capacity(descriptors.len());
        let mut registry = NamingRegistry::new();
        for d in &descriptors {
            let id = graph.id_of(d.name).expect("descriptor is in graph");
            let mut c = Container::new(d.clone(), app.methods_of(d.name));
            c.begin_start();
            c.complete_start(SimTime::ZERO);
            registry.bind(d.name, Binding::Active(id));
            containers.push(c);
        }
        AppServer {
            app,
            inner: ServerInner {
                graph,
                containers,
                registry,
                web_id,
                db,
                db_conn: None,
                session,
                workers: WorkerPool::new(config.cpus, config.threads),
                heap: HeapModel::new(calib::HEAP_CAPACITY, calib::SERVER_BASE_BYTES),
                rng: SimRng::seed_from(config.seed),
                lowlevel: None,
                state: ProcState::Up,
                running: HashMap::new(),
                hung: HashMap::new(),
                reboots: Vec::new(),
                next_session: u64::from(config.node as u32) << 32,
                next_reboot: 0,
                retry_enabled: config.retry_enabled,
                intra_leak_rate: 0,
                extra_leak_rate: 0,
                persistent_leaks: Vec::new(),
                last_maintenance: SimTime::ZERO,
                stats: ServerStats::default(),
            },
        }
    }

    // ---- queries ---------------------------------------------------------

    /// Returns the hosted application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Returns the hosted application mutably (fault-injection hooks).
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    /// Returns lifetime counters.
    pub fn stats(&self) -> ServerStats {
        self.inner.stats
    }

    /// Returns the process availability state.
    pub fn state(&self) -> ProcState {
        self.inner.state
    }

    /// Returns true if the process is up and serving.
    pub fn is_up(&self) -> bool {
        self.inner.is_up()
    }

    /// Returns the dependency graph.
    pub fn graph(&self) -> &DependencyGraph {
        &self.inner.graph
    }

    /// Returns free heap bytes (the rejuvenation service's gauge).
    pub fn available_memory(&self) -> u64 {
        self.inner.heap.free(
            self.inner.component_heap_bytes(),
            self.inner.session.in_process_bytes() as u64,
        )
    }

    /// Returns each component's current heap footprint.
    pub fn component_heap(&self) -> Vec<(&'static str, u64)> {
        self.inner
            .containers
            .iter()
            .map(|c| (c.descriptor.name, c.heap_bytes()))
            .collect()
    }

    /// Returns the container for `name` (tests and experiments).
    pub fn container(&self, name: &str) -> Option<&Container> {
        let id = self.inner.graph.id_of(name)?;
        Some(&self.inner.containers[id.0])
    }

    /// Returns the session backend (read access).
    pub fn session(&self) -> &SessionBackend {
        &self.inner.session
    }

    /// Returns the session backend mutably (fault injection).
    pub fn session_mut(&mut self) -> &mut SessionBackend {
        &mut self.inner.session
    }

    /// Returns the shared database handle.
    pub fn db(&self) -> SharedDb {
        self.inner.db.clone()
    }

    /// Returns the number of requests currently queued for a CPU.
    pub fn queued(&self) -> usize {
        self.inner.workers.queued()
    }

    /// Returns the number of hung requests.
    pub fn hung(&self) -> usize {
        self.inner.hung.len()
    }

    /// Returns the in-flight microreboots as `(members, crash_at, done_at)`.
    pub fn active_microreboots(&self) -> Vec<(Vec<&'static str>, SimTime, SimTime)> {
        self.inner
            .reboots
            .iter()
            .map(|r| {
                (
                    r.members
                        .iter()
                        .map(|m| self.inner.graph.name_of(*m))
                        .collect(),
                    r.crash_at,
                    r.done_at,
                )
            })
            .collect()
    }

    // ---- request lifecycle -------------------------------------------

    fn instant_response(
        &mut self,
        req: &Request,
        now: SimTime,
        status: Status,
        exception: bool,
    ) -> Response {
        match status {
            Status::NetworkError | Status::TimedOut => self.inner.stats.network_errors += 1,
            Status::ServerError(_) | Status::ClientError(_) => self.inner.stats.http_errors += 1,
            _ => {}
        }
        Response {
            req: req.id,
            op: req.op,
            status,
            markers: BodyMarkers {
                exception_text: exception,
                ..BodyMarkers::default()
            },
            tainted: false,
            finished_at: now + SimDuration::from_millis(1),
            failed_component: None,
            set_cookie: None,
            clear_cookie: false,
        }
    }

    /// Submits a request to the node.
    pub fn submit(&mut self, req: Request, now: SimTime) -> SubmitOutcome {
        self.inner.stats.submitted += 1;
        match self.inner.state {
            ProcState::Up => {}
            ProcState::AppRestarting { .. } => {
                // JBoss is alive but the application is gone: plain 503.
                let r = self.instant_response(&req, now, Status::ServerError(503), false);
                return SubmitOutcome::Rejected(r);
            }
            _ => {
                let r = self.instant_response(&req, now, Status::NetworkError, false);
                return SubmitOutcome::Rejected(r);
            }
        }
        match self.inner.workers.admit(req.clone()) {
            Ok(()) => SubmitOutcome::Admitted,
            Err(_) => {
                let r = self.instant_response(&req, now, Status::ServerError(503), false);
                SubmitOutcome::Rejected(r)
            }
        }
    }

    /// Starts queued requests on free CPUs, executing their handlers.
    ///
    /// The caller schedules [`AppServer::complete`] at each
    /// [`Started::cpu_done_at`].
    pub fn pump(&mut self, now: SimTime) -> Vec<Started> {
        if !self.inner.is_up() {
            return Vec::new();
        }
        let mut started = Vec::new();
        loop {
            let batch = self.inner.workers.start_ready();
            if batch.is_empty() {
                break;
            }
            for req in batch {
                if let Some(s) = self.execute(req, now) {
                    started.push(s);
                }
            }
        }
        started
    }

    /// Runs one request's handler, deciding its fate.
    fn execute(&mut self, req: Request, now: SimTime) -> Option<Started> {
        let web_id = self.inner.web_id;
        // The web tier itself may be microrebooting.
        let web_active = self.inner.containers[web_id.0].is_active();
        // A nearly-full heap throws allocation failures before the JVM
        // dies outright: requests start failing with OutOfMemoryError
        // well before total exhaustion, which is how leak faults become
        // visible (and curable) while the process is still up.
        let free = self.inner.heap.free(
            self.inner.component_heap_bytes(),
            self.inner.session.in_process_bytes() as u64,
        );
        let pressure = calib::HEAP_PRESSURE_BYTES;
        let oom_prob = if free < pressure {
            0.8 * (pressure - free) as f64 / pressure as f64
        } else {
            0.0
        };
        if oom_prob > 0.0 && self.inner.rng.chance(oom_prob) {
            let resp = self.instant_response(&req, now, Status::ServerError(500), true);
            let id = req.id;
            self.inner.running.insert(
                id,
                RunningReq {
                    req,
                    response: resp,
                    touched: Vec::new(),
                    txn: None,
                },
            );
            return Some(Started {
                req: id,
                cpu_done_at: now + SimDuration::from_millis(2),
            });
        }
        // Congestion degradation: a deeply backed-up node burns extra CPU
        // per request (GC pressure, context switching), which is what makes
        // overload collapse super-linear in real servers.
        let congestion = 1.0
            + calib::CONGESTION_MAX_FACTOR
                .min(self.inner.workers.queued() as f64 / calib::CONGESTION_QUEUE_SCALE);
        let base = self.app.base_cost(req.op);
        let AppServer { app, inner } = self;
        let mut ctx = CallContext::new(inner, now, req.session, req.arg);
        ctx.charge(base);
        let result = if web_active {
            ctx.inner.containers[web_id.0].call_enter();
            ctx.touched.push(web_id);
            let r = app.handle(&mut ctx, &req);
            ctx.finalize_session();
            if !matches!(r, Err(CallError::Hang)) {
                ctx.inner.containers[web_id.0].call_exit();
            }
            r
        } else {
            Err(CallError::Retry(calib::RETRY_AFTER))
        };
        let parts = ctx_into_parts(ctx);
        self.finish_execution(req, now, parts, result, congestion)
    }

    fn finish_execution(
        &mut self,
        req: Request,
        now: SimTime,
        parts: CtxParts,
        result: Result<(), CallError>,
        congestion: f64,
    ) -> Option<Started> {
        let CtxParts {
            cpu,
            latency,
            tainted,
            mut markers,
            failed_component,
            txn,
            touched,
            hang,
            set_cookie,
            clear_cookie,
            autocommitted,
        } = parts;
        // Low-level faults perturb requests underneath the application.
        let (result, tainted) = match (self.inner.lowlevel, &result) {
            (Some(LowLevelFault::BitFlipMemory), Ok(())) => {
                if self.inner.rng.chance(0.25) {
                    markers.exception_text = true;
                    (Err(CallError::Exception), tainted)
                } else if self.inner.rng.chance(0.10) {
                    (result, true)
                } else {
                    (result, tainted)
                }
            }
            (Some(LowLevelFault::BadSyscalls), Ok(())) => {
                if self.inner.rng.chance(0.35) {
                    markers.exception_text = true;
                    (Err(CallError::Exception), tainted)
                } else {
                    (result, tainted)
                }
            }
            _ => (result, tainted),
        };
        match result {
            Err(CallError::Hang) => {
                let (component, kind) = hang.expect("hang error carries its component");
                match kind {
                    HangKind::Park => self.inner.workers.park(req.id),
                    HangKind::Hog => self.inner.workers.hog(req.id),
                }
                self.inner.hung.insert(
                    req.id,
                    HungReq {
                        req,
                        component,
                        since: now,
                        txn,
                    },
                );
                None
            }
            other => {
                let (status, keep_txn) = match other {
                    Ok(()) => (Status::Ok, true),
                    Err(CallError::Exception) => {
                        markers.exception_text = true;
                        (Status::ServerError(500), false)
                    }
                    Err(CallError::Retry(d)) => {
                        if self.inner.retry_enabled && req.idempotent {
                            self.inner.stats.retries_sent += 1;
                            (Status::RetryAfter(d), false)
                        } else {
                            (Status::ServerError(503), false)
                        }
                    }
                    Err(CallError::Hang) => unreachable!("handled above"),
                };
                let txn = if keep_txn {
                    txn
                } else {
                    if let Some(t) = txn {
                        let _ = self.inner.db.borrow_mut().rollback(t);
                    }
                    // Any autocommitted writes (corrupt transaction
                    // metadata made them non-transactional) are now
                    // orphaned: the fault-free twin rolled everything
                    // back, so these rows diverge (the ≈ damage of
                    // Table 2's wrong-txn-map row).
                    if !autocommitted.is_empty() {
                        let mut db = self.inner.db.borrow_mut();
                        for (table, pk) in &autocommitted {
                            let _ = db.taint_row(table, *pk);
                        }
                    }
                    None
                };
                let cpu = SimDuration::from_secs_f64(cpu.as_secs_f64() * congestion);
                let cpu_done_at = now + cpu.max(SimDuration::from_micros(500));
                let response = Response {
                    req: req.id,
                    op: req.op,
                    status,
                    markers,
                    tainted,
                    finished_at: cpu_done_at + latency,
                    failed_component,
                    set_cookie,
                    clear_cookie,
                };
                let id = req.id;
                self.inner.running.insert(
                    id,
                    RunningReq {
                        req,
                        response,
                        touched,
                        txn,
                    },
                );
                Some(Started {
                    req: id,
                    cpu_done_at,
                })
            }
        }
    }

    /// Completes a running request at its CPU-done instant.
    ///
    /// Returns `None` if the request was killed in the meantime (its
    /// failure response was already produced by the killer).
    pub fn complete(&mut self, id: ReqId, _now: SimTime) -> Option<Response> {
        let rr = self.inner.running.remove(&id)?;
        self.inner.workers.complete(id);
        if let Some(t) = rr.txn {
            let mut db = self.inner.db.borrow_mut();
            if db.txn_active(t) {
                let _ = db.commit(t);
            }
        }
        match rr.response.status {
            Status::Ok | Status::RetryAfter(_) => self.inner.stats.ok += 1,
            Status::ServerError(_) | Status::ClientError(_) => self.inner.stats.http_errors += 1,
            Status::NetworkError | Status::TimedOut => self.inner.stats.network_errors += 1,
        }
        Some(rr.response)
    }

    // ---- microreboot machinery ---------------------------------------

    fn killed_response(req: &Request, now: SimTime, during: &'static str) -> Response {
        Response {
            req: req.id,
            op: req.op,
            status: Status::ServerError(500),
            markers: BodyMarkers {
                exception_text: true,
                ..BodyMarkers::default()
            },
            tainted: false,
            finished_at: now + SimDuration::from_millis(1),
            failed_component: Some(during),
            set_cookie: None,
            clear_cookie: false,
        }
    }

    /// Begins a microreboot of `targets` (component names), expanded to
    /// their recovery groups.
    ///
    /// Sentinels are bound immediately; the crash phase runs at
    /// `now + drain` (the caller invokes [`AppServer::microreboot_crash`]
    /// there) and reinitialization completes at the ticket's `done_at`
    /// (the caller invokes [`AppServer::microreboot_complete`]).
    pub fn begin_microreboot(
        &mut self,
        targets: &[&str],
        now: SimTime,
        drain: Option<SimDuration>,
    ) -> Result<RebootTicket, RebootError> {
        if !self.inner.is_up() {
            return Err(RebootError::ProcessNotUp);
        }
        let mut members: Vec<ComponentId> = Vec::new();
        for t in targets {
            let id = self
                .inner
                .graph
                .id_of(t)
                .ok_or_else(|| RebootError::UnknownComponent(t.to_string()))?;
            for m in self.inner.graph.recovery_group(id) {
                if !members.contains(m) {
                    members.push(*m);
                }
            }
        }
        // Skip components already mid-microreboot.
        members.retain(|m| {
            !self
                .inner
                .reboots
                .iter()
                .any(|r| r.members.contains(m))
        });
        if members.is_empty() {
            return Err(RebootError::AlreadyRebooting);
        }
        members.sort_unstable();
        // Group cost: the slowest member plus a per-extra-member increment
        // (Table 3's EntityGroup amortization), with trial jitter.
        let n = members.len() as u64;
        let crash = members
            .iter()
            .map(|m| self.inner.containers[m.0].descriptor.crash_cost)
            .fold(SimDuration::ZERO, SimDuration::max)
            + calib::GROUP_EXTRA_CRASH * (n - 1);
        let reinit_base = members
            .iter()
            .map(|m| self.inner.containers[m.0].descriptor.reinit_cost)
            .fold(SimDuration::ZERO, SimDuration::max)
            + calib::GROUP_EXTRA_REINIT * (n - 1);
        let reinit = self.inner.rng.jittered(reinit_base, calib::REINIT_JITTER);
        let crash_at = now + drain.unwrap_or(SimDuration::ZERO);
        let done_at = crash_at + crash + reinit;
        // Bind sentinels now: new callers see Retry-After for the whole
        // window (Section 6.2 binds the sentinel before the reboot).
        for m in &members {
            let name = self.inner.graph.name_of(*m);
            self.inner.registry.bind(
                name,
                Binding::Sentinel {
                    retry_after: calib::RETRY_AFTER,
                },
            );
        }
        self.inner.next_reboot += 1;
        let id = RebootId(self.inner.next_reboot);
        self.inner.reboots.push(ActiveReboot {
            id,
            members,
            crash_at,
            crashed: false,
            done_at,
        });
        self.inner.stats.microreboots += 1;
        Ok(RebootTicket {
            id,
            crash_at,
            done_at,
        })
    }

    /// Runs the crash phase of a microreboot: destroys the member
    /// containers and kills the threads shepherding requests inside them.
    ///
    /// Returns the failure responses of the killed requests (the caller
    /// delivers them to the clients).
    pub fn microreboot_crash(&mut self, id: RebootId, now: SimTime) -> Vec<Response> {
        let Some(pos) = self.inner.reboots.iter().position(|r| r.id == id) else {
            return Vec::new();
        };
        if self.inner.reboots[pos].crashed {
            return Vec::new();
        }
        self.inner.reboots[pos].crashed = true;
        let members = self.inner.reboots[pos].members.clone();
        let mut killed = Vec::new();
        // Kill running requests that touched a member and have not yet
        // completed.
        let victim_ids: Vec<ReqId> = self
            .inner
            .running
            .iter()
            .filter(|(_, rr)| rr.touched.iter().any(|t| members.contains(t)))
            .map(|(id, _)| *id)
            .collect();
        for rid in sorted(victim_ids) {
            let rr = self.inner.running.remove(&rid).expect("victim exists");
            self.inner.workers.kill(rid);
            if let Some(t) = rr.txn {
                let mut db = self.inner.db.borrow_mut();
                if db.txn_active(t) {
                    let _ = db.rollback(t);
                }
            }
            let during = self.inner.graph.name_of(members[0]);
            killed.push(Self::killed_response(&rr.req, now, during));
            self.inner.stats.killed_by_microreboot += 1;
        }
        // Kill hung requests stuck inside a member.
        let hung_ids: Vec<ReqId> = self
            .inner
            .hung
            .iter()
            .filter(|(_, h)| members.contains(&h.component))
            .map(|(id, _)| *id)
            .collect();
        for rid in sorted(hung_ids) {
            let h = self.inner.hung.remove(&rid).expect("victim exists");
            self.inner.workers.kill(rid);
            if let Some(t) = h.txn {
                let mut db = self.inner.db.borrow_mut();
                if db.txn_active(t) {
                    let _ = db.rollback(t);
                }
            }
            let during = self.inner.graph.name_of(h.component);
            killed.push(Self::killed_response(&h.req, now, during));
            self.inner.stats.killed_by_microreboot += 1;
        }
        // Destroy the containers (reclaims leaks, discards metadata).
        for m in &members {
            self.inner.containers[m.0].crash();
            self.inner.containers[m.0].begin_start();
        }
        killed
    }

    /// Completes a microreboot: reinitializes the member containers and
    /// rebinds their names. Returns the member names.
    pub fn microreboot_complete(&mut self, id: RebootId, now: SimTime) -> Vec<&'static str> {
        let Some(pos) = self.inner.reboots.iter().position(|r| r.id == id) else {
            return Vec::new();
        };
        let reboot = self.inner.reboots.remove(pos);
        debug_assert!(reboot.crashed, "crash phase must run before complete");
        let mut names = Vec::with_capacity(reboot.members.len());
        for m in &reboot.members {
            let name = self.inner.graph.name_of(*m);
            self.inner.containers[m.0].complete_start(now);
            self.inner.registry.bind(name, Binding::Active(*m));
            self.app.on_component_reinit(name);
            names.push(name);
        }
        if reboot.members.contains(&self.inner.web_id) {
            // The web tier revalidates in-process session state as it
            // reinitializes, evicting objects that fail application checks.
            let AppServer { app, inner } = self;
            inner.session.revalidate(|obj| app.session_valid(obj));
        }
        // A leak that is a code bug resumes in the fresh instances.
        self.inner.reapply_persistent_leaks();
        names
    }

    // ---- coarser reboots -----------------------------------------------

    fn kill_everything(&mut self, now: SimTime, network_level: bool) -> Vec<Response> {
        let mut killed = Vec::new();
        let ids = self.inner.workers.kill_all();
        for rid in ids {
            let (req, txn) = if let Some(rr) = self.inner.running.remove(&rid) {
                (rr.req, rr.txn)
            } else if let Some(h) = self.inner.hung.remove(&rid) {
                (h.req, h.txn)
            } else {
                // Queued, never started: synthesize from the worker's copy
                // being gone — the kill_all drained it, so skip txn work.
                continue;
            };
            if let Some(t) = txn {
                let mut db = self.inner.db.borrow_mut();
                if db.txn_active(t) {
                    let _ = db.rollback(t);
                }
            }
            let resp = if network_level {
                self.instant_response(&req, now, Status::NetworkError, false)
            } else {
                Self::killed_response(&req, now, "restart")
            };
            killed.push(resp);
            self.inner.stats.killed_by_restart += 1;
        }
        // Anything left in running/hung (queued copies already drained).
        let leftover: Vec<ReqId> = self
            .inner
            .running
            .keys()
            .chain(self.inner.hung.keys())
            .copied()
            .collect();
        for rid in sorted(leftover) {
            let (req, txn) = if let Some(rr) = self.inner.running.remove(&rid) {
                (rr.req, rr.txn)
            } else {
                let h = self.inner.hung.remove(&rid).expect("key came from hung");
                (h.req, h.txn)
            };
            if let Some(t) = txn {
                let mut db = self.inner.db.borrow_mut();
                if db.txn_active(t) {
                    let _ = db.rollback(t);
                }
            }
            let resp = if network_level {
                self.instant_response(&req, now, Status::NetworkError, false)
            } else {
                Self::killed_response(&req, now, "restart")
            };
            killed.push(resp);
            self.inner.stats.killed_by_restart += 1;
        }
        killed
    }

    /// Restarts the whole application in place (level 3 of the recursive
    /// policy). Returns the completion instant and the killed requests'
    /// responses.
    ///
    /// Fails when the JVM itself is down — a dead process cannot redeploy
    /// an application; the caller must escalate to a process restart.
    pub fn begin_app_restart(
        &mut self,
        now: SimTime,
    ) -> Result<(SimTime, Vec<Response>), RebootError> {
        if !matches!(self.inner.state, ProcState::Up) {
            return Err(RebootError::ProcessNotUp);
        }
        let killed = self.kill_everything(now, false);
        self.inner.reboots.clear();
        for c in &mut self.inner.containers {
            c.full_stop();
        }
        for id in self.inner.graph.all_ids() {
            self.inner.registry.unbind(self.inner.graph.name_of(id));
        }
        let until = now + calib::APP_RESTART_CRASH + calib::APP_RESTART_REINIT;
        self.inner.state = ProcState::AppRestarting { until };
        self.inner.stats.app_restarts += 1;
        Ok((until, killed))
    }

    /// Completes an application restart.
    pub fn app_restart_complete(&mut self, now: SimTime) {
        for id in self.inner.graph.all_ids() {
            let c = &mut self.inner.containers[id.0];
            c.begin_start();
            c.complete_start(now);
            self.inner
                .registry
                .bind(self.inner.graph.name_of(id), Binding::Active(id));
            self.app.on_component_reinit(self.inner.graph.name_of(id));
        }
        let AppServer { app, inner } = self;
        inner.session.revalidate(|obj| app.session_valid(obj));
        self.inner.reapply_persistent_leaks();
        self.inner.state = ProcState::Up;
    }

    /// `kill -9`s the JVM and begins a process restart.
    ///
    /// In-process session state (FastS) is lost; the OS tears down the
    /// database connections, releasing any locks (Section 7).
    pub fn begin_process_restart(&mut self, now: SimTime) -> (SimTime, Vec<Response>) {
        let killed = self.kill_everything(now, true);
        self.inner.reboots.clear();
        for c in &mut self.inner.containers {
            c.full_stop();
        }
        for id in self.inner.graph.all_ids() {
            self.inner.registry.unbind(self.inner.graph.name_of(id));
        }
        if let Some(conn) = self.inner.db_conn.take() {
            let _ = self.inner.db.borrow_mut().close_conn(conn);
        }
        self.inner.session.on_process_restart();
        self.inner.heap.on_process_restart();
        self.inner.lowlevel = None;
        self.inner.intra_leak_rate = 0;
        let until = now + calib::JVM_CRASH + calib::JVM_SERVICES_INIT + calib::JVM_APP_DEPLOY;
        self.inner.state = ProcState::JvmRestarting { until };
        self.inner.stats.process_restarts += 1;
        (until, killed)
    }

    /// Completes a process restart.
    pub fn process_restart_complete(&mut self, now: SimTime) {
        for id in self.inner.graph.all_ids() {
            let c = &mut self.inner.containers[id.0];
            c.begin_start();
            c.complete_start(now);
            self.inner
                .registry
                .bind(self.inner.graph.name_of(id), Binding::Active(id));
        }
        self.app.on_process_restart();
        self.inner.reapply_persistent_leaks();
        self.inner.state = ProcState::Up;
    }

    /// Reboots the node's operating system (the recursive policy's last
    /// resort). Clears even extra-JVM leaks.
    pub fn begin_os_reboot(&mut self, now: SimTime) -> (SimTime, Vec<Response>) {
        let (_, killed) = self.begin_process_restart(now);
        self.inner.heap.on_os_reboot();
        self.inner.extra_leak_rate = 0;
        let until =
            now + calib::OS_REBOOT + calib::JVM_SERVICES_INIT + calib::JVM_APP_DEPLOY;
        self.inner.state = ProcState::OsRebooting { until };
        self.inner.stats.os_reboots += 1;
        // begin_process_restart counted one restart; attribute it to the
        // OS reboot instead.
        self.inner.stats.process_restarts -= 1;
        (until, killed)
    }

    /// Completes an OS reboot.
    pub fn os_reboot_complete(&mut self, now: SimTime) {
        self.process_restart_complete(now);
    }

    // ---- maintenance ---------------------------------------------------

    /// Periodic housekeeping: leak accrual, TTL expiry of hung requests,
    /// out-of-memory detection, session-store clock advancement.
    ///
    /// Returns responses for requests the sweep killed.
    pub fn maintenance(&mut self, now: SimTime) -> Vec<Response> {
        let elapsed = now - self.inner.last_maintenance;
        self.inner.last_maintenance = now;
        self.inner.session.advance_to(now);
        let secs = elapsed.as_secs_f64();
        if self.inner.intra_leak_rate > 0 {
            self.inner
                .heap
                .leak_intra_jvm((self.inner.intra_leak_rate as f64 * secs) as u64);
        }
        if self.inner.extra_leak_rate > 0 {
            self.inner
                .heap
                .leak_extra_jvm((self.inner.extra_leak_rate as f64 * secs) as u64);
        }
        let mut out = Vec::new();
        if !self.inner.is_up() {
            return out;
        }
        // TTL purge of stuck requests (Section 2's leased execution time).
        let expired: Vec<ReqId> = self
            .inner
            .hung
            .iter()
            .filter(|(_, h)| now - h.since >= calib::REQUEST_TTL)
            .map(|(id, _)| *id)
            .collect();
        for rid in sorted(expired) {
            let h = self.inner.hung.remove(&rid).expect("victim exists");
            self.inner.workers.kill(rid);
            if let Some(t) = h.txn {
                let mut db = self.inner.db.borrow_mut();
                if db.txn_active(t) {
                    let _ = db.rollback(t);
                }
            }
            let mut resp = Self::killed_response(&h.req, now, "ttl");
            resp.status = Status::TimedOut;
            resp.markers.exception_text = false;
            out.push(resp);
            self.inner.stats.ttl_kills += 1;
        }
        // Heap exhaustion kills the JVM; native/kernel exhaustion kills
        // the host (only an OS reboot recovers the latter).
        if self.inner.heap.host_oom()
            || self.inner.heap.is_oom(
                self.inner.component_heap_bytes(),
                self.inner.session.in_process_bytes() as u64,
            )
        {
            out.extend(self.kill_everything(now, true));
            self.inner.state = ProcState::DownOom;
        }
        out
    }

    // ---- fault injection -------------------------------------------------

    /// Injects a server-level fault (Section 5.1's hooks).
    ///
    /// Returns responses for requests killed as an immediate consequence
    /// (only `BitFlipRegisters` kills anything).
    pub fn inject(&mut self, fault: ServerFault, now: SimTime) -> Vec<Response> {
        let comp_mut = |inner: &mut ServerInner, name: &'static str| -> Option<usize> {
            inner.graph.id_of(name).map(|id| id.0)
        };
        match fault {
            ServerFault::Deadlock { component } => {
                if let Some(i) = comp_mut(&mut self.inner, component) {
                    self.inner.containers[i].faults.deadlocked = true;
                }
            }
            ServerFault::InfiniteLoop { component } => {
                if let Some(i) = comp_mut(&mut self.inner, component) {
                    self.inner.containers[i].faults.infinite_loop = true;
                }
            }
            ServerFault::AppLeak {
                component,
                bytes_per_call,
                persistent,
            } => {
                if let Some(i) = comp_mut(&mut self.inner, component) {
                    self.inner.containers[i].faults.leak_per_call = bytes_per_call;
                    if persistent {
                        // A code bug: fresh instances leak too.
                        self.inner
                            .persistent_leaks
                            .retain(|(n, _)| *n != component);
                        self.inner
                            .persistent_leaks
                            .push((component, bytes_per_call));
                    }
                }
            }
            ServerFault::TransientExceptions { component, calls } => {
                if let Some(i) = comp_mut(&mut self.inner, component) {
                    self.inner.containers[i].faults.transient_exceptions = calls;
                }
            }
            ServerFault::CorruptJndi { component, kind } => {
                let binding = match kind {
                    CorruptKind::SetNull => Binding::Null,
                    CorruptKind::SetInvalid => Binding::Dangling,
                    CorruptKind::SetWrong => {
                        // Point the name at some other live component.
                        let victim = self.inner.graph.id_of(component);
                        let wrong = self
                            .inner
                            .graph
                            .all_ids()
                            .find(|id| Some(*id) != victim && *id != self.inner.web_id)
                            .unwrap_or(self.inner.web_id);
                        Binding::Wrong(wrong)
                    }
                };
                self.inner.registry.corrupt(component, binding);
            }
            ServerFault::CorruptTxnMap { component, kind } => {
                if let Some(i) = comp_mut(&mut self.inner, component) {
                    self.inner.containers[i].txn_map.corrupt(kind);
                }
            }
            ServerFault::CorruptBeanAttrs { component, kind } => {
                if let Some(i) = comp_mut(&mut self.inner, component) {
                    self.inner.containers[i].pool.corrupt_all(kind);
                }
            }
            ServerFault::IntraJvmLeak { bytes_per_sec } => {
                self.inner.intra_leak_rate = bytes_per_sec;
            }
            ServerFault::ExtraJvmLeak { bytes_per_sec } => {
                self.inner.extra_leak_rate = bytes_per_sec;
            }
            ServerFault::BitFlipMemory => {
                self.inner.lowlevel = Some(LowLevelFault::BitFlipMemory);
            }
            ServerFault::BadSyscalls => {
                self.inner.lowlevel = Some(LowLevelFault::BadSyscalls);
            }
            ServerFault::BitFlipRegisters => {
                // The process dies on the spot.
                let killed = self.kill_everything(now, true);
                self.inner.state = ProcState::Crashed;
                return killed;
            }
        }
        Vec::new()
    }
}

struct CtxParts {
    cpu: SimDuration,
    latency: SimDuration,
    tainted: bool,
    markers: BodyMarkers,
    failed_component: Option<&'static str>,
    txn: Option<TxnId>,
    touched: Vec<ComponentId>,
    hang: Option<(ComponentId, HangKind)>,
    set_cookie: Option<SessionId>,
    clear_cookie: bool,
    autocommitted: Vec<(&'static str, i64)>,
}

fn ctx_into_parts(ctx: CallContext<'_>) -> CtxParts {
    CtxParts {
        cpu: ctx.cpu,
        latency: ctx.latency,
        tainted: ctx.tainted,
        markers: ctx.markers,
        failed_component: ctx.failed_component,
        txn: ctx.txn,
        touched: ctx.touched,
        hang: ctx.hang,
        set_cookie: ctx.set_cookie,
        clear_cookie: ctx.clear_cookie,
        autocommitted: ctx.autocommitted,
    }
}

fn sorted(mut v: Vec<ReqId>) -> Vec<ReqId> {
    v.sort_unstable();
    v
}

/// Builds a request with defaults for tests and simple callers.
pub fn make_request(
    id: u64,
    op: OpCode,
    session: Option<SessionId>,
    idempotent: bool,
    arg: i64,
    now: SimTime,
) -> Request {
    Request {
        id: ReqId(id),
        op,
        session,
        idempotent,
        arg,
        submitted_at: now,
    }
}
