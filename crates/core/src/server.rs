//! The microreboot-enabled application server.
//!
//! [`AppServer`] hosts one crash-only [`Application`] on one simulated
//! node. Since the layered decomposition it is a thin composition of three
//! collaborating layers plus the shared internals:
//!
//! * [`RequestPipeline`](crate::pipeline::RequestPipeline) — admission,
//!   execution bookkeeping and the kill paths (`crate::pipeline`);
//! * [`RecoveryLifecycle`](crate::lifecycle::RecoveryLifecycle) — one
//!   state machine over every recovery depth, from microreboot to OS
//!   reboot (`crate::lifecycle`);
//! * the telemetry bus (`simcore::telemetry`) — every observable fact is
//!   emitted as a [`TelemetryEvent`]; [`ServerStats`] is just a
//!   [`TelemetrySink`] folding events into counters.
//!
//! This module keeps the request *execution* path (submit → pump →
//! execute → complete), fault injection, maintenance, and the shared
//! [`ServerInner`] that `CallContext` works against.
//!
//! The server is a *passive* state machine over simulated time: every
//! method takes `now`, and methods that start timed work return the instant
//! it finishes so the caller (the cluster simulation) can schedule the
//! follow-up call. This keeps the server synchronously testable.

use components::container::Container;
use components::descriptor::ComponentId;
use components::graph::DependencyGraph;
use components::registry::{Binding, NamingRegistry};
use simcore::telemetry::{Disposition, KillCause, SharedBus, TelemetryEvent, TelemetrySink};
use simcore::{MetricsRegistry, SimDuration, SimRng, SimTime};
use statestore::db::ConnId;
use statestore::session::{CorruptKind, SessionId};
use statestore::TxnId;

use crate::app::{Application, CallError};
use crate::backend::{SessionBackend, SharedDb};
use crate::calib;
use crate::context::{CallContext, HangKind};
use crate::heap::HeapModel;
use crate::pipeline::{HungReq, RequestPipeline, RunningReq};
use crate::request::{BodyMarkers, OpCode, ReqId, Request, Response, Status};

pub use crate::lifecycle::{ProcState, RebootId, RebootTicket, RecoveryLifecycle};
pub use simcore::telemetry::RebootLevel;

/// Low-level faults injected underneath the application (the FIG /
/// FAUmachine layer of Section 5.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LowLevelFault {
    /// Bit flips in process memory: requests randomly fail or go wrong.
    BitFlipMemory,
    /// Bad system call return values: requests randomly fail.
    BadSyscalls,
}

/// Faults injectable through the server's hooks (Section 5.1's catalogue;
/// the data-store corruptions are injected directly on the stores).
#[derive(Clone, Copy, Debug)]
pub enum ServerFault {
    /// Deadlock new calls into a component.
    Deadlock {
        /// Target component.
        component: &'static str,
    },
    /// Spin new calls into a component forever.
    InfiniteLoop {
        /// Target component.
        component: &'static str,
    },
    /// Leak application memory on every invocation of a component.
    AppLeak {
        /// Target component.
        component: &'static str,
        /// Bytes leaked per invocation.
        bytes_per_call: u64,
        /// Whether the leak is a code bug that resumes after a reboot
        /// (Section 6.4's rejuvenation premise) or a one-shot injection a
        /// reboot cures (Table 2's leak row).
        persistent: bool,
    },
    /// Throw a transient exception on the next `calls` invocations.
    TransientExceptions {
        /// Target component.
        component: &'static str,
        /// How many invocations fail.
        calls: u32,
    },
    /// Intermittent fault: each invocation fails with probability
    /// `permille`/1000 until the fault self-heals `heals_after` later
    /// (or a microreboot cures it first). The adversarial case for the
    /// recovery policy — the symptoms come and go.
    Intermittent {
        /// Target component.
        component: &'static str,
        /// Per-call failure probability, in permille.
        permille: u32,
        /// How long until the fault heals itself (`None` = never).
        heals_after: Option<SimDuration>,
    },
    /// Corrupt the component's JNDI entry.
    CorruptJndi {
        /// Target component.
        component: &'static str,
        /// Null / invalid / wrong.
        kind: CorruptKind,
    },
    /// Corrupt the component's transaction method map.
    CorruptTxnMap {
        /// Target component.
        component: &'static str,
        /// Null / invalid / wrong.
        kind: CorruptKind,
    },
    /// Corrupt the attributes of the component's pooled instances.
    CorruptBeanAttrs {
        /// Target component.
        component: &'static str,
        /// Null / invalid / wrong.
        kind: CorruptKind,
    },
    /// Leak memory inside the JVM but outside the application.
    IntraJvmLeak {
        /// Bytes leaked per second.
        bytes_per_sec: u64,
    },
    /// Leak memory outside the JVM (native/kernel).
    ExtraJvmLeak {
        /// Bytes leaked per second.
        bytes_per_sec: u64,
    },
    /// Fail-slow degradation: the component keeps answering correctly but
    /// every call through it burns `factor_permille`/1000 times the CPU
    /// (shrunken pools, contended locks). Nothing fails and nothing
    /// throws, so only a latency-anomaly detector can see it. A
    /// microreboot's warm restart reuses the degraded pools and leaves
    /// the slowdown behind; only a coarser reboot rebuilds them.
    Degraded {
        /// Target component.
        component: &'static str,
        /// Service-time multiplier, in permille (2000 = 2x slower).
        factor_permille: u32,
    },
    /// Flip bits in process memory.
    BitFlipMemory,
    /// Flip bits in process registers (crashes the JVM immediately).
    BitFlipRegisters,
    /// Return bad values from system calls.
    BadSyscalls,
}

/// An error starting a recovery action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RebootError {
    /// Unknown component name.
    UnknownComponent(String),
    /// Every requested component is already being microrebooted.
    AlreadyRebooting,
    /// The process is not up, so component-level actions are meaningless.
    ProcessNotUp,
}

impl std::fmt::Display for RebootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebootError::UnknownComponent(c) => write!(f, "unknown component {c}"),
            RebootError::AlreadyRebooting => write!(f, "target already microrebooting"),
            RebootError::ProcessNotUp => write!(f, "process is not up"),
        }
    }
}

impl std::error::Error for RebootError {}

/// Lifetime counters of one server.
///
/// Since the metrics-registry refactor this is a *view*: the server folds
/// every emitted [`TelemetryEvent`] into its node-local
/// [`MetricsRegistry`], and [`ServerStats::from_registry`] materialises
/// the classic counter struct from registry reads. Nothing increments
/// these fields directly.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Requests submitted to this node.
    pub submitted: u64,
    /// Responses with 2xx status.
    pub ok: u64,
    /// Responses with 4xx/5xx status.
    pub http_errors: u64,
    /// Connection-level failures returned.
    pub network_errors: u64,
    /// `Retry-After` responses sent while components microrebooted.
    pub retries_sent: u64,
    /// Requests killed by a microreboot's thread kill.
    pub killed_by_microreboot: u64,
    /// Requests killed by app/process/OS restart.
    pub killed_by_restart: u64,
    /// Hung requests purged by TTL expiry.
    pub ttl_kills: u64,
    /// Microreboots performed (component groups).
    pub microreboots: u64,
    /// Whole-application restarts.
    pub app_restarts: u64,
    /// JVM process restarts.
    pub process_restarts: u64,
    /// Operating-system reboots.
    pub os_reboots: u64,
}

impl ServerStats {
    /// Reads the classic counter struct out of a node's metrics registry.
    pub fn from_registry(reg: &MetricsRegistry) -> Self {
        use simcore::symbol;
        ServerStats {
            submitted: reg.counter_sym(symbol::REQUESTS_SUBMITTED),
            ok: reg.counter_sym(symbol::REQUESTS_OK),
            http_errors: reg.counter_sym(symbol::REQUESTS_HTTP_ERROR),
            network_errors: reg.counter_sym(symbol::REQUESTS_NETWORK_ERROR),
            retries_sent: reg.counter_sym(symbol::RETRIES_SENT),
            killed_by_microreboot: reg.counter_sym(symbol::KILLED_MICROREBOOT),
            killed_by_restart: reg.counter_sym(symbol::KILLED_RESTART),
            ttl_kills: reg.counter_sym(symbol::KILLED_TTL),
            microreboots: reg.counter_sym(symbol::REBOOTS_BEGUN_COMPONENT),
            app_restarts: reg.counter_sym(symbol::REBOOTS_BEGUN_APPLICATION),
            process_restarts: reg.counter_sym(symbol::REBOOTS_BEGUN_PROCESS),
            os_reboots: reg.counter_sym(symbol::REBOOTS_BEGUN_OS),
        }
    }
}

/// A request admitted and started; the caller schedules
/// [`AppServer::complete`] at `cpu_done_at`.
#[derive(Clone, Copy, Debug)]
pub struct Started {
    /// The request that started executing.
    pub req: ReqId,
    /// When its CPU service finishes.
    pub cpu_done_at: SimTime,
}

/// Result of submitting a request.
pub enum SubmitOutcome {
    /// The node rejected it immediately (down or overloaded).
    Rejected(Response),
    /// Admitted; call [`AppServer::pump`] to start queued work.
    Admitted,
}

/// Server configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Node index (for reports).
    pub node: usize,
    /// CPU workers.
    pub cpus: usize,
    /// Request threads.
    pub threads: usize,
    /// Whether sentinel hits on idempotent requests answer `Retry-After`
    /// instead of failing (Section 6.2).
    pub retry_enabled: bool,
    /// Quarantine admission (the conductor's front door): requests whose
    /// static call path touches a microrebooting recovery group are shed
    /// at submit — `Retry-After` when retries are on and the request is
    /// idempotent, 503 otherwise — instead of being admitted only to hit
    /// a sentinel (or a mid-crash container) deep in the pipeline.
    pub quarantine_enabled: bool,
    /// RNG seed for this node's jitter.
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            node: 0,
            cpus: calib::NODE_CPUS,
            threads: calib::NODE_THREADS,
            retry_enabled: false,
            quarantine_enabled: false,
            seed: 0x5eed,
        }
    }
}

/// Server internals shared with [`CallContext`] and the lifecycle layer.
pub struct ServerInner {
    pub(crate) graph: DependencyGraph,
    pub(crate) containers: Vec<Container>,
    pub(crate) registry: NamingRegistry,
    pub(crate) web_id: ComponentId,
    pub(crate) db: SharedDb,
    pub(crate) db_conn: Option<ConnId>,
    pub(crate) session: SessionBackend,
    pub(crate) heap: HeapModel,
    pub(crate) rng: SimRng,
    pub(crate) lowlevel: Option<LowLevelFault>,
    pub(crate) node: usize,
    next_session: u64,
    pub(crate) retry_enabled: bool,
    pub(crate) quarantine_enabled: bool,
    pub(crate) intra_leak_rate: u64,
    pub(crate) extra_leak_rate: u64,
    /// Per-invocation leak rates that survive reboots: the leak is a bug
    /// in the component's *code*, so a reboot reclaims the leaked memory
    /// but the fresh instances leak again (the premise of Section 6.4's
    /// rejuvenation experiments).
    pub(crate) persistent_leaks: Vec<(&'static str, u64)>,
    /// Fail-slow degradation factors (permille) per component. Survives
    /// microreboots — a warm restart reuses the degraded pools — and is
    /// cleared only by the coarse recovery levels.
    pub(crate) degraded: Vec<(&'static str, u32)>,
    last_maintenance: SimTime,
    metrics: MetricsRegistry,
    bus: Option<SharedBus>,
}

impl ServerInner {
    /// Returns (opening if needed) the server's pooled DB connection.
    pub(crate) fn db_conn(&mut self) -> ConnId {
        match self.db_conn {
            Some(c) if self.db.borrow().conn_open(c) => c,
            _ => {
                let c = self.db.borrow_mut().open_conn();
                self.db_conn = Some(c);
                c
            }
        }
    }

    pub(crate) fn reapply_persistent_leaks(&mut self) {
        for (name, bytes) in &self.persistent_leaks {
            if let Some(id) = self.graph.id_of(name) {
                self.containers[id.0].faults.leak_per_call = *bytes;
            }
        }
    }

    pub(crate) fn alloc_session_id(&mut self) -> SessionId {
        self.next_session += 1;
        SessionId(self.next_session)
    }

    pub(crate) fn component_heap_bytes(&self) -> u64 {
        self.containers.iter().map(|c| c.heap_bytes()).sum()
    }

    /// Folds `ev` into this node's metrics registry and forwards it to
    /// the attached bus, if any. The single exit point for server
    /// telemetry.
    pub(crate) fn emit(&mut self, ev: TelemetryEvent) {
        self.metrics.on_event(&ev);
        if let Some(bus) = &self.bus {
            bus.borrow_mut().emit(&ev);
        }
    }
}

/// A microreboot-enabled application server hosting application `A`.
pub struct AppServer<A: Application> {
    pub(crate) app: A,
    pub(crate) inner: ServerInner,
    pub(crate) pipeline: RequestPipeline,
    pub(crate) lifecycle: RecoveryLifecycle,
}

impl<A: Application> AppServer<A> {
    /// Builds and warm-starts a server for `app`.
    ///
    /// All components are deployed and active at construction; experiments
    /// begin against a warm node, as the paper's do.
    ///
    /// # Panics
    ///
    /// Panics if the application's descriptors are inconsistent (duplicate
    /// names, unknown references, missing web component) — deployment-time
    /// configuration errors.
    pub fn new(app: A, config: ServerConfig, db: SharedDb, session: SessionBackend) -> Self {
        let descriptors = app.descriptors();
        let graph = DependencyGraph::build(&descriptors).expect("valid deployment descriptors");
        let web_id = graph
            .id_of(app.web_component())
            .expect("web component must be declared");
        let mut containers = Vec::with_capacity(descriptors.len());
        let mut registry = NamingRegistry::new();
        for d in &descriptors {
            let id = graph.id_of(d.name).expect("descriptor is in graph");
            let mut c = Container::new(d.clone(), app.methods_of(d.name));
            c.begin_start();
            c.complete_start(SimTime::ZERO);
            registry.bind(d.name, Binding::Active(id));
            containers.push(c);
        }
        AppServer {
            app,
            inner: ServerInner {
                graph,
                containers,
                registry,
                web_id,
                db,
                db_conn: None,
                session,
                heap: HeapModel::new(calib::HEAP_CAPACITY, calib::SERVER_BASE_BYTES),
                rng: SimRng::seed_from(config.seed),
                lowlevel: None,
                node: config.node,
                next_session: u64::from(config.node as u32) << 32,
                retry_enabled: config.retry_enabled,
                quarantine_enabled: config.quarantine_enabled,
                intra_leak_rate: 0,
                extra_leak_rate: 0,
                persistent_leaks: Vec::new(),
                degraded: Vec::new(),
                last_maintenance: SimTime::ZERO,
                metrics: MetricsRegistry::new(),
                bus: None,
            },
            pipeline: RequestPipeline::new(config.cpus, config.threads),
            lifecycle: RecoveryLifecycle::new(),
        }
    }

    /// Attaches a telemetry bus: every event this server emits is
    /// forwarded to it (in addition to updating the local counters).
    pub fn attach_telemetry(&mut self, bus: SharedBus) {
        self.inner.bus = Some(bus);
    }

    // ---- queries ---------------------------------------------------------

    /// Returns the hosted application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Fail-slow degradation factors currently in effect, as
    /// `(component, permille)` pairs. Microreboots leave these behind
    /// (warm restarts reuse the degraded pools); coarse recovery levels
    /// clear them.
    pub fn degraded_components(&self) -> &[(&'static str, u32)] {
        &self.inner.degraded
    }

    /// Returns the hosted application mutably (fault-injection hooks).
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    /// Returns lifetime counters (a view over the metrics registry).
    pub fn stats(&self) -> ServerStats {
        ServerStats::from_registry(&self.inner.metrics)
    }

    /// Returns the node-local metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Returns the process availability state.
    pub fn state(&self) -> ProcState {
        self.lifecycle.state()
    }

    /// Returns true if the process is up and serving.
    pub fn is_up(&self) -> bool {
        self.lifecycle.is_up()
    }

    /// Returns the dependency graph.
    pub fn graph(&self) -> &DependencyGraph {
        &self.inner.graph
    }

    /// Returns free heap bytes (the rejuvenation service's gauge).
    pub fn available_memory(&self) -> u64 {
        self.inner.heap.free(
            self.inner.component_heap_bytes(),
            self.inner.session.in_process_bytes() as u64,
        )
    }

    /// Returns each component's current heap footprint.
    pub fn component_heap(&self) -> Vec<(&'static str, u64)> {
        self.inner
            .containers
            .iter()
            .map(|c| (c.descriptor.name, c.heap_bytes()))
            .collect()
    }

    /// Returns the container for `name` (tests and experiments).
    pub fn container(&self, name: &str) -> Option<&Container> {
        let id = self.inner.graph.id_of(name)?;
        Some(&self.inner.containers[id.0])
    }

    /// Returns the session backend (read access).
    pub fn session(&self) -> &SessionBackend {
        &self.inner.session
    }

    /// Returns the session backend mutably (fault injection).
    pub fn session_mut(&mut self) -> &mut SessionBackend {
        &mut self.inner.session
    }

    /// Returns the shared database handle.
    pub fn db(&self) -> SharedDb {
        self.inner.db.clone()
    }

    /// Returns the number of requests currently queued for a CPU.
    pub fn queued(&self) -> usize {
        self.pipeline.queued()
    }

    /// Returns the number of hung requests.
    pub fn hung(&self) -> usize {
        self.pipeline.hung_count()
    }

    /// Returns how long the longest-hung request has been stuck. The TTL
    /// lease sweep bounds this at `REQUEST_TTL` plus one maintenance
    /// period on a live node, whatever the recovery policy does.
    pub fn oldest_hung_age(&self, now: SimTime) -> Option<SimDuration> {
        self.pipeline.oldest_hung().map(|since| now - since)
    }

    /// Enables or disables quarantine admission at runtime (the cluster
    /// simulation flips this per its conductor configuration).
    pub fn set_quarantine(&mut self, on: bool) {
        self.inner.quarantine_enabled = on;
    }

    /// If `op`'s static call path touches a microrebooting recovery group,
    /// returns when the last such microreboot completes.
    pub fn quarantine_until(&self, op: OpCode) -> Option<SimTime> {
        let path = self.app.call_path(op);
        if path.is_empty() {
            return None;
        }
        self.lifecycle
            .component_reboots()
            .filter(|(members, _, _)| {
                members
                    .iter()
                    .any(|m| path.contains(&self.inner.graph.name_of(*m)))
            })
            .map(|(_, _, done_at)| done_at)
            .max()
    }

    /// Returns the in-flight microreboots as `(members, crash_at, done_at)`.
    pub fn active_microreboots(&self) -> Vec<(Vec<&'static str>, SimTime, SimTime)> {
        self.lifecycle
            .component_reboots()
            .map(|(members, crash_at, done_at)| {
                (
                    members
                        .iter()
                        .map(|m| self.inner.graph.name_of(*m))
                        .collect(),
                    crash_at,
                    done_at,
                )
            })
            .collect()
    }

    // ---- request lifecycle -------------------------------------------

    pub(crate) fn instant_response(
        &mut self,
        req: &Request,
        now: SimTime,
        status: Status,
        exception: bool,
    ) -> Response {
        let disposition = match status {
            Status::NetworkError | Status::TimedOut => Some(Disposition::NetworkError),
            Status::ServerError(_) | Status::ClientError(_) => Some(Disposition::HttpError),
            _ => None,
        };
        if let Some(disposition) = disposition {
            self.inner.emit(TelemetryEvent::RequestCompleted {
                node: self.inner.node,
                req: req.id.0,
                disposition,
                at: now,
            });
        }
        Response {
            req: req.id,
            op: req.op,
            status,
            markers: BodyMarkers {
                exception_text: exception,
                ..BodyMarkers::default()
            },
            tainted: false,
            finished_at: now + SimDuration::from_millis(1),
            failed_component: None,
            set_cookie: None,
            clear_cookie: false,
        }
    }

    /// Submits a request to the node.
    pub fn submit(&mut self, req: Request, now: SimTime) -> SubmitOutcome {
        self.inner.emit(TelemetryEvent::RequestSubmitted {
            node: self.inner.node,
            req: req.id.0,
            at: now,
        });
        match self.lifecycle.state() {
            ProcState::Up => {}
            ProcState::AppRestarting { .. } => {
                // JBoss is alive but the application is gone: plain 503.
                let r = self.instant_response(&req, now, Status::ServerError(503), false);
                return SubmitOutcome::Rejected(r);
            }
            _ => {
                let r = self.instant_response(&req, now, Status::NetworkError, false);
                return SubmitOutcome::Rejected(r);
            }
        }
        // Quarantine admission: shed requests bound for the blast radius
        // at the door, so they neither queue behind the reboot nor burn a
        // thread to discover a sentinel mid-flight.
        if self.inner.quarantine_enabled {
            if let Some(done_at) = self.quarantine_until(req.op) {
                let r = if self.inner.retry_enabled && req.idempotent {
                    self.inner.emit(TelemetryEvent::RetrySent {
                        node: self.inner.node,
                        req: req.id.0,
                        at: now,
                    });
                    let wait = (done_at - now).max(SimDuration::from_millis(1));
                    self.instant_response(&req, now, Status::RetryAfter(wait), false)
                } else {
                    self.instant_response(&req, now, Status::ServerError(503), false)
                };
                return SubmitOutcome::Rejected(r);
            }
        }
        match self.pipeline.admit(req.clone()) {
            Ok(()) => SubmitOutcome::Admitted,
            Err(_) => {
                let r = self.instant_response(&req, now, Status::ServerError(503), false);
                SubmitOutcome::Rejected(r)
            }
        }
    }

    /// Starts queued requests on free CPUs, executing their handlers.
    ///
    /// The caller schedules [`AppServer::complete`] at each
    /// [`Started::cpu_done_at`].
    pub fn pump(&mut self, now: SimTime) -> Vec<Started> {
        if !self.lifecycle.is_up() {
            return Vec::new();
        }
        let mut started = Vec::new();
        loop {
            let batch = self.pipeline.start_ready();
            if batch.is_empty() {
                break;
            }
            for req in batch {
                if let Some(s) = self.execute(req, now) {
                    started.push(s);
                }
            }
        }
        started
    }

    /// Runs one request's handler, deciding its fate.
    fn execute(&mut self, req: Request, now: SimTime) -> Option<Started> {
        let web_id = self.inner.web_id;
        // The web tier itself may be microrebooting.
        let web_active = self.inner.containers[web_id.0].is_active();
        // A nearly-full heap throws allocation failures before the JVM
        // dies outright: requests start failing with OutOfMemoryError
        // well before total exhaustion, which is how leak faults become
        // visible (and curable) while the process is still up.
        let free = self.inner.heap.free(
            self.inner.component_heap_bytes(),
            self.inner.session.in_process_bytes() as u64,
        );
        let pressure = calib::HEAP_PRESSURE_BYTES;
        let oom_prob = if free < pressure {
            0.8 * (pressure - free) as f64 / pressure as f64
        } else {
            0.0
        };
        if oom_prob > 0.0 && self.inner.rng.chance(oom_prob) {
            let resp = self.instant_response(&req, now, Status::ServerError(500), true);
            let id = req.id;
            self.pipeline.record_running(
                id,
                RunningReq {
                    req,
                    response: resp,
                    touched: Vec::new(),
                    txn: None,
                },
            );
            return Some(Started {
                req: id,
                cpu_done_at: now + SimDuration::from_millis(2),
            });
        }
        // Congestion degradation: a deeply backed-up node burns extra CPU
        // per request (GC pressure, context switching), which is what makes
        // overload collapse super-linear in real servers.
        let congestion = 1.0
            + calib::CONGESTION_MAX_FACTOR
                .min(self.pipeline.queued() as f64 / calib::CONGESTION_QUEUE_SCALE);
        let base = self.app.base_cost(req.op);
        let AppServer { app, inner, .. } = self;
        let mut ctx = CallContext::new(inner, now, req.session, req.arg);
        ctx.charge(base);
        let result = if web_active {
            ctx.inner.containers[web_id.0].call_enter();
            ctx.touched.push(web_id);
            let r = app.handle(&mut ctx, &req);
            ctx.finalize_session();
            if !matches!(r, Err(CallError::Hang)) {
                ctx.inner.containers[web_id.0].call_exit();
            }
            r
        } else {
            Err(CallError::Retry(calib::RETRY_AFTER))
        };
        let parts = ctx_into_parts(ctx);
        self.finish_execution(req, now, parts, result, congestion)
    }

    fn finish_execution(
        &mut self,
        req: Request,
        now: SimTime,
        parts: CtxParts,
        result: Result<(), CallError>,
        congestion: f64,
    ) -> Option<Started> {
        let CtxParts {
            cpu,
            latency,
            tainted,
            mut markers,
            failed_component,
            txn,
            touched,
            hang,
            set_cookie,
            clear_cookie,
            autocommitted,
        } = parts;
        // Low-level faults perturb requests underneath the application.
        let (result, tainted) = match (self.inner.lowlevel, &result) {
            (Some(LowLevelFault::BitFlipMemory), Ok(())) => {
                if self.inner.rng.chance(0.25) {
                    markers.exception_text = true;
                    (Err(CallError::Exception), tainted)
                } else if self.inner.rng.chance(0.10) {
                    (result, true)
                } else {
                    (result, tainted)
                }
            }
            (Some(LowLevelFault::BadSyscalls), Ok(())) => {
                if self.inner.rng.chance(0.35) {
                    markers.exception_text = true;
                    (Err(CallError::Exception), tainted)
                } else {
                    (result, tainted)
                }
            }
            _ => (result, tainted),
        };
        match result {
            Err(CallError::Hang) => {
                let (component, kind) = hang.expect("hang error carries its component");
                self.pipeline.record_hung(
                    req.id,
                    kind,
                    HungReq {
                        req,
                        component,
                        since: now,
                        txn,
                    },
                );
                None
            }
            other => {
                let (status, keep_txn) = match other {
                    Ok(()) => (Status::Ok, true),
                    Err(CallError::Exception) => {
                        markers.exception_text = true;
                        (Status::ServerError(500), false)
                    }
                    Err(CallError::Retry(d)) => {
                        if self.inner.retry_enabled && req.idempotent {
                            self.inner.emit(TelemetryEvent::RetrySent {
                                node: self.inner.node,
                                req: req.id.0,
                                at: now,
                            });
                            (Status::RetryAfter(d), false)
                        } else {
                            (Status::ServerError(503), false)
                        }
                    }
                    Err(CallError::Hang) => unreachable!("handled above"),
                };
                let txn = if keep_txn {
                    txn
                } else {
                    if let Some(t) = txn {
                        let _ = self.inner.db.borrow_mut().rollback(t);
                    }
                    // Any autocommitted writes (corrupt transaction
                    // metadata made them non-transactional) are now
                    // orphaned: the fault-free twin rolled everything
                    // back, so these rows diverge (the ≈ damage of
                    // Table 2's wrong-txn-map row).
                    if !autocommitted.is_empty() {
                        let mut db = self.inner.db.borrow_mut();
                        for (table, pk) in &autocommitted {
                            let _ = db.taint_row(table, *pk);
                        }
                    }
                    None
                };
                // Fail-slow degradation: any request that touched a
                // degraded component burns inflated CPU (the answer stays
                // correct — only the latency moves).
                let slow = if self.inner.degraded.is_empty() {
                    1.0
                } else {
                    let mut permille = 1000u32;
                    for m in &touched {
                        let name = self.inner.graph.name_of(*m);
                        for (comp, f) in &self.inner.degraded {
                            if *comp == name {
                                permille = permille.max(*f);
                            }
                        }
                    }
                    f64::from(permille) / 1000.0
                };
                let cpu = SimDuration::from_secs_f64(cpu.as_secs_f64() * congestion * slow);
                let cpu_done_at = now + cpu.max(SimDuration::from_micros(500));
                let response = Response {
                    req: req.id,
                    op: req.op,
                    status,
                    markers,
                    tainted,
                    finished_at: cpu_done_at + latency,
                    failed_component,
                    set_cookie,
                    clear_cookie,
                };
                let id = req.id;
                self.pipeline.record_running(
                    id,
                    RunningReq {
                        req,
                        response,
                        touched,
                        txn,
                    },
                );
                Some(Started {
                    req: id,
                    cpu_done_at,
                })
            }
        }
    }

    /// Completes a running request at its CPU-done instant.
    ///
    /// Returns `None` if the request was killed in the meantime (its
    /// failure response was already produced by the killer).
    pub fn complete(&mut self, id: ReqId, now: SimTime) -> Option<Response> {
        let rr = self.pipeline.finish(id)?;
        if let Some(t) = rr.txn {
            let mut db = self.inner.db.borrow_mut();
            if db.txn_active(t) {
                let _ = db.commit(t);
            }
        }
        let disposition = match rr.response.status {
            Status::Ok | Status::RetryAfter(_) => Disposition::Ok,
            Status::ServerError(_) | Status::ClientError(_) => Disposition::HttpError,
            Status::NetworkError | Status::TimedOut => Disposition::NetworkError,
        };
        self.inner.emit(TelemetryEvent::RequestCompleted {
            node: self.inner.node,
            req: id.0,
            disposition,
            at: now,
        });
        Some(rr.response)
    }

    pub(crate) fn killed_response(req: &Request, now: SimTime, during: &'static str) -> Response {
        Response {
            req: req.id,
            op: req.op,
            status: Status::ServerError(500),
            markers: BodyMarkers {
                exception_text: true,
                ..BodyMarkers::default()
            },
            tainted: false,
            finished_at: now + SimDuration::from_millis(1),
            failed_component: Some(during),
            set_cookie: None,
            clear_cookie: false,
        }
    }

    // ---- maintenance ---------------------------------------------------

    /// Periodic housekeeping: leak accrual, TTL expiry of hung requests,
    /// out-of-memory detection, session-store clock advancement.
    ///
    /// Returns responses for requests the sweep killed.
    pub fn maintenance(&mut self, now: SimTime) -> Vec<Response> {
        let elapsed = now - self.inner.last_maintenance;
        self.inner.last_maintenance = now;
        self.inner.session.advance_to(now);
        let secs = elapsed.as_secs_f64();
        if self.inner.intra_leak_rate > 0 {
            self.inner
                .heap
                .leak_intra_jvm((self.inner.intra_leak_rate as f64 * secs) as u64);
        }
        if self.inner.extra_leak_rate > 0 {
            self.inner
                .heap
                .leak_extra_jvm((self.inner.extra_leak_rate as f64 * secs) as u64);
        }
        let mut out = Vec::new();
        if !self.lifecycle.is_up() {
            return out;
        }
        // TTL purge of stuck requests (Section 2's leased execution time).
        let expired = self.pipeline.take_expired_hung(now, calib::REQUEST_TTL);
        let reaped = expired.len() as u32;
        for v in expired {
            if let Some(t) = v.txn {
                let mut db = self.inner.db.borrow_mut();
                if db.txn_active(t) {
                    let _ = db.rollback(t);
                }
            }
            let mut resp = Self::killed_response(&v.req, now, "ttl");
            resp.status = Status::TimedOut;
            resp.markers.exception_text = false;
            out.push(resp);
            self.inner.emit(TelemetryEvent::RequestKilled {
                node: self.inner.node,
                req: v.req.id.0,
                cause: KillCause::Ttl,
                at: now,
            });
        }
        // The sweep itself is observable whenever it had hung requests to
        // consider (quiet sweeps over healthy nodes stay off the bus).
        let pending = self.pipeline.hung_count() as u32;
        if reaped > 0 || pending > 0 {
            self.inner.emit(TelemetryEvent::TtlSweep {
                node: self.inner.node,
                pending,
                reaped,
                at: now,
            });
        }
        // Heap exhaustion kills the JVM; native/kernel exhaustion kills
        // the host (only an OS reboot recovers the latter).
        if self.inner.heap.host_oom()
            || self.inner.heap.is_oom(
                self.inner.component_heap_bytes(),
                self.inner.session.in_process_bytes() as u64,
            )
        {
            out.extend(self.kill_everything(now, true));
            self.lifecycle.force_state(ProcState::DownOom);
        }
        out
    }

    // ---- fault injection -------------------------------------------------

    /// Injects a server-level fault (Section 5.1's hooks).
    ///
    /// Returns responses for requests killed as an immediate consequence
    /// (only `BitFlipRegisters` kills anything).
    pub fn inject(&mut self, fault: ServerFault, now: SimTime) -> Vec<Response> {
        let comp_mut = |inner: &mut ServerInner, name: &'static str| -> Option<usize> {
            inner.graph.id_of(name).map(|id| id.0)
        };
        match fault {
            ServerFault::Deadlock { component } => {
                if let Some(i) = comp_mut(&mut self.inner, component) {
                    self.inner.containers[i].faults.deadlocked = true;
                }
            }
            ServerFault::InfiniteLoop { component } => {
                if let Some(i) = comp_mut(&mut self.inner, component) {
                    self.inner.containers[i].faults.infinite_loop = true;
                }
            }
            ServerFault::AppLeak {
                component,
                bytes_per_call,
                persistent,
            } => {
                if let Some(i) = comp_mut(&mut self.inner, component) {
                    self.inner.containers[i].faults.leak_per_call = bytes_per_call;
                    if persistent {
                        // A code bug: fresh instances leak too.
                        self.inner.persistent_leaks.retain(|(n, _)| *n != component);
                        self.inner
                            .persistent_leaks
                            .push((component, bytes_per_call));
                    }
                }
            }
            ServerFault::TransientExceptions { component, calls } => {
                if let Some(i) = comp_mut(&mut self.inner, component) {
                    self.inner.containers[i].faults.transient_exceptions = calls;
                }
            }
            ServerFault::Intermittent {
                component,
                permille,
                heals_after,
            } => {
                if let Some(i) = comp_mut(&mut self.inner, component) {
                    let f = &mut self.inner.containers[i].faults;
                    f.intermittent_permille = permille.min(1000);
                    f.intermittent_heals_at_us =
                        heals_after.map_or(u64::MAX, |d| (now + d).as_micros());
                }
            }
            ServerFault::CorruptJndi { component, kind } => {
                let binding = match kind {
                    CorruptKind::SetNull => Binding::Null,
                    CorruptKind::SetInvalid => Binding::Dangling,
                    CorruptKind::SetWrong => {
                        // Point the name at some other live component.
                        let victim = self.inner.graph.id_of(component);
                        let wrong = self
                            .inner
                            .graph
                            .all_ids()
                            .find(|id| Some(*id) != victim && *id != self.inner.web_id)
                            .unwrap_or(self.inner.web_id);
                        Binding::Wrong(wrong)
                    }
                };
                self.inner.registry.corrupt(component, binding);
            }
            ServerFault::CorruptTxnMap { component, kind } => {
                if let Some(i) = comp_mut(&mut self.inner, component) {
                    self.inner.containers[i].txn_map.corrupt(kind);
                }
            }
            ServerFault::CorruptBeanAttrs { component, kind } => {
                if let Some(i) = comp_mut(&mut self.inner, component) {
                    self.inner.containers[i].pool.corrupt_all(kind);
                }
            }
            ServerFault::IntraJvmLeak { bytes_per_sec } => {
                self.inner.intra_leak_rate = bytes_per_sec;
            }
            ServerFault::ExtraJvmLeak { bytes_per_sec } => {
                self.inner.extra_leak_rate = bytes_per_sec;
            }
            ServerFault::Degraded {
                component,
                factor_permille,
            } => {
                if comp_mut(&mut self.inner, component).is_some() {
                    self.inner.degraded.retain(|(n, _)| *n != component);
                    self.inner.degraded.push((component, factor_permille));
                    self.inner.emit(TelemetryEvent::DegradedInjected {
                        node: self.inner.node,
                        factor_permille,
                        at: now,
                    });
                }
            }
            ServerFault::BitFlipMemory => {
                self.inner.lowlevel = Some(LowLevelFault::BitFlipMemory);
            }
            ServerFault::BadSyscalls => {
                self.inner.lowlevel = Some(LowLevelFault::BadSyscalls);
            }
            ServerFault::BitFlipRegisters => {
                // The process dies on the spot.
                let killed = self.kill_everything(now, true);
                self.lifecycle.force_state(ProcState::Crashed);
                return killed;
            }
        }
        Vec::new()
    }
}

struct CtxParts {
    cpu: SimDuration,
    latency: SimDuration,
    tainted: bool,
    markers: BodyMarkers,
    failed_component: Option<&'static str>,
    txn: Option<TxnId>,
    touched: Vec<ComponentId>,
    hang: Option<(ComponentId, HangKind)>,
    set_cookie: Option<SessionId>,
    clear_cookie: bool,
    autocommitted: Vec<(&'static str, i64)>,
}

fn ctx_into_parts(ctx: CallContext<'_>) -> CtxParts {
    CtxParts {
        cpu: ctx.cpu,
        latency: ctx.latency,
        tainted: ctx.tainted,
        markers: ctx.markers,
        failed_component: ctx.failed_component,
        txn: ctx.txn,
        touched: ctx.touched,
        hang: ctx.hang,
        set_cookie: ctx.set_cookie,
        clear_cookie: ctx.clear_cookie,
        autocommitted: ctx.autocommitted,
    }
}

/// Builds a request with defaults for tests and simple callers.
pub fn make_request(
    id: u64,
    op: OpCode,
    session: Option<SessionId>,
    idempotent: bool,
    arg: i64,
    now: SimTime,
) -> Request {
    Request {
        id: ReqId(id),
        op,
        session,
        idempotent,
        arg,
        submitted_at: now,
    }
}
