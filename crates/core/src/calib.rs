//! Calibration constants, with the paper's measured values cited inline.
//!
//! The simulation does not try to re-measure JBoss; it *models* the costs
//! the paper measured on 3 GHz Pentium machines (Section 5) and lets the
//! experiments reproduce the relative shapes. Every constant here cites the
//! paper value it encodes, so EXPERIMENTS.md can report paper-vs-measured
//! for each table and figure.

use simcore::SimDuration;

/// Time to initialize JBoss's ~70 services on a process restart.
///
/// Paper: 56% of the 19,083 ms JVM/JBoss restart is service initialization
/// (transaction service 2 s, embedded web server 1.8 s, management 1.2 s,
/// ...). 0.56 × 19,083 ≈ 10,686 ms.
pub const JVM_SERVICES_INIT: SimDuration = SimDuration::from_millis(10_686);

/// Time to deploy and initialize the application during a JVM restart.
///
/// Paper: the remaining 44% of the 19,083 ms restart ≈ 8,397 ms.
pub const JVM_APP_DEPLOY: SimDuration = SimDuration::from_millis(8_397);

/// Time for `kill -9` of the JVM process.
///
/// Paper (Table 3): "≈ 0" — forceful process death is instantaneous.
pub const JVM_CRASH: SimDuration = SimDuration::ZERO;

/// Crash time for restarting the whole application in place.
///
/// Paper (Table 3): 33 ms for "Entire eBid application".
pub const APP_RESTART_CRASH: SimDuration = SimDuration::from_millis(33);

/// Reinit time for restarting the whole application in place.
///
/// Paper (Table 3): 7,666 ms — less than the sum of the per-component
/// costs because whole-application restart is optimized to avoid
/// restarting each individual EJB.
pub const APP_RESTART_REINIT: SimDuration = SimDuration::from_millis(7_666);

/// Operating-system reboot time.
///
/// The paper performs node-level reboots over ssh but does not report a
/// number; 90 s is representative for the era's Linux 2.6 server reboot
/// plus JVM start (the value only matters for the recursive policy's last
/// resort).
pub const OS_REBOOT: SimDuration = SimDuration::from_secs(90);

/// Extra reinit charged per additional member when a recovery group is
/// microrebooted together.
///
/// Paper (Table 3): EntityGroup (5 entity beans) reinitializes in 789 ms
/// while single beans take ~400–530 ms: group recovery amortizes, costing
/// roughly the slowest member plus a per-member increment.
pub const GROUP_EXTRA_REINIT: SimDuration = SimDuration::from_millis(85);

/// Extra crash time per additional recovery-group member.
///
/// Paper (Table 3): EntityGroup crashes in 36 ms vs 8–15 ms for single
/// EJBs.
pub const GROUP_EXTRA_CRASH: SimDuration = SimDuration::from_millis(6);

/// Jitter applied to reinit costs (spread of the 10-trial averages in
/// Table 3).
pub const REINIT_JITTER: SimDuration = SimDuration::from_millis(35);

/// Per-call interceptor/container overhead for an inter-component call.
pub const CALL_OVERHEAD: SimDuration = SimDuration::from_micros(150);

/// CPU cost of one database round trip (row read) from the middle tier.
pub const DB_READ_COST: SimDuration = SimDuration::from_micros(650);

/// CPU cost of one database write round trip.
pub const DB_WRITE_COST: SimDuration = SimDuration::from_micros(900);

/// CPU cost of a database scan returning up to a page of rows.
pub const DB_SCAN_COST: SimDuration = SimDuration::from_micros(1_800);

/// Number of CPU workers per application-server node.
///
/// The paper's middle-tier nodes are 3 GHz Pentiums; 500 clients produce a
/// CPU load average of 0.7 (Section 5.2), which the worker-pool model
/// reproduces with 2 CPUs and ~10 ms of CPU per request.
pub const NODE_CPUS: usize = 2;

/// Size of the request thread pool per node.
///
/// Deliberately huge: the paper's industry contacts confirmed commercial
/// application servers of the era did **no** admission control (Section
/// 5.3), so overload manifests as unbounded queueing and multi-second
/// response times (Figure 4), not fast 503s. Deadlocked threads still
/// park here without burning CPU; exhaustion — whole-node unavailability —
/// takes correspondingly long.
pub const NODE_THREADS: usize = 10_000;

/// Queue depth at which congestion degradation saturates.
///
/// Overloaded JVMs of the era degraded super-linearly (GC pressure,
/// context-switch thrash — the paper cites CNN.com's cluster collapsing
/// under a 20x surge): per-request CPU inflates linearly with the queue
/// up to [`CONGESTION_MAX_FACTOR`].
pub const CONGESTION_QUEUE_SCALE: f64 = 1000.0;

/// Maximum congestion-induced service-time inflation.
///
/// Bounded so that a backed-up node's degraded capacity still exceeds the
/// self-throttled (closed-loop) offered load: collapse is deep but not
/// absorbing — the node claws back once the surge passes, as the paper's
/// testbed did.
pub const CONGESTION_MAX_FACTOR: f64 = 0.35;

/// Server-side time-to-live for stuck requests (Section 2's request TTL).
pub const REQUEST_TTL: SimDuration = SimDuration::from_secs(30);

/// JVM heap size per node.
///
/// Paper (Section 6.4): 1 GB heap on the 1 GB-RAM middle-tier machines.
pub const HEAP_CAPACITY: u64 = 1 << 30;

/// Free-heap level below which allocations start failing.
///
/// A JVM under severe memory pressure spends most of its time in GC and
/// throws `OutOfMemoryError` on individual allocations long before dying
/// entirely; the failure probability grows as free memory shrinks.
pub const HEAP_PRESSURE_BYTES: u64 = 200 << 20;

/// Heap consumed by JBoss itself (services, caches, connection pools).
pub const SERVER_BASE_BYTES: u64 = 96 << 20;

/// The `Retry-After` interval returned while a component microreboots.
///
/// Paper (Section 6.2): `[Retry-After 2 seconds]`.
pub const RETRY_AFTER: SimDuration = SimDuration::from_secs(2);

/// Optional drain delay between sentinel rebind and microreboot start.
///
/// Paper (Section 6.2): 200 ms lets in-flight requests complete.
pub const DRAIN_DELAY: SimDuration = SimDuration::from_millis(200);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jvm_restart_decomposition_matches_paper() {
        // 56% services + 44% app deploy should reconstruct ~19,083 ms.
        let total = JVM_SERVICES_INIT + JVM_APP_DEPLOY;
        let paper = SimDuration::from_millis(19_083);
        let diff = total.saturating_sub(paper).max(paper.saturating_sub(total));
        assert!(diff < SimDuration::from_millis(10), "off by {diff}");
    }

    #[test]
    fn microreboot_is_an_order_of_magnitude_cheaper_than_restart() {
        // A 500 ms EJB microreboot vs a 19 s JVM restart: the paper's
        // headline factor.
        let urb = SimDuration::from_millis(500);
        let restart = JVM_SERVICES_INIT + JVM_APP_DEPLOY;
        assert!(restart.as_micros() / urb.as_micros() >= 10);
    }
}
