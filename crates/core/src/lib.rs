//! The microreboot-enabled application server — the paper's contribution.
//!
//! This crate implements the system described in Sections 2–3 of
//! *Microreboot — A Technique for Cheap Recovery* (Candea, Kawamoto,
//! Fujiki, Friedman & Fox, OSDI 2004): an application server for crash-only
//! component applications, extended with a microreboot method that can
//! surgically recover individual components (and their recovery groups)
//! without disturbing the rest of the application — plus the machinery the
//! paper's evaluation exercises:
//!
//! * [`server::AppServer`] — the composition root: containers, naming,
//!   the request execution path and the fault-injection hooks of
//!   Section 5.1,
//! * [`pipeline::RequestPipeline`] — admission, execution bookkeeping and
//!   the kill paths,
//! * [`lifecycle::RecoveryLifecycle`] — one state machine over every
//!   recovery depth (microreboot / app restart / process restart / OS
//!   reboot), driven by [`RebootLevel`](server::RebootLevel),
//! * [`context::CallContext`] — the capability handle application code
//!   runs against (component calls, transactions, session state),
//! * [`rejuvenation::RejuvenationService`] — rolling microrejuvenation
//!   (Section 6.4),
//! * [`calib`] — the paper's measured costs, cited constant by constant.
//!
//! The server is deterministic and passive over simulated time
//! ([`simcore`]); the `cluster` crate wires it into multi-node experiments.

#![forbid(unsafe_code)]

pub mod app;
pub mod backend;
pub mod calib;
pub mod context;
pub mod heap;
pub mod lifecycle;
pub mod microcheckpoint;
pub mod pipeline;
pub mod rejuvenation;
pub mod request;
pub mod server;
pub mod testkit;
pub mod workers;

pub use app::{Application, CallError};
pub use backend::{share_db, share_ssm, SessionBackend, SharedDb, SharedSsm};
pub use context::CallContext;
pub use microcheckpoint::{Checkpoint, MicrocheckpointStore, TaskId};
pub use rejuvenation::{RejuvenationAction, RejuvenationService};
pub use request::{BodyMarkers, OpCode, ReqId, Request, Response, Status};
pub use server::{
    AppServer, ProcState, RebootError, RebootLevel, RebootTicket, ServerConfig, ServerFault,
    ServerStats, Started, SubmitOutcome,
};
