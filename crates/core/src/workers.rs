//! The node's request-execution resources: CPUs and threads.
//!
//! Each node has a small number of CPU workers (service time is CPU time)
//! and a larger pool of request threads. A normally-executing request holds
//! one thread and one CPU worker for its service time. The two fault modes
//! that "hang" requests differ in what they hold:
//!
//! * a **deadlocked** call parks its thread (no CPU) — slow thread-pool
//!   exhaustion,
//! * an **infinite loop** burns a CPU worker forever — immediate capacity
//!   loss.
//!
//! Queueing happens when all CPUs are busy; refused admission happens when
//! the thread pool is exhausted. Both effects drive the response-time
//! dynamics of Figure 4.

use std::collections::VecDeque;

use crate::request::{ReqId, Request};

/// Why a request could not be admitted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdmitError {
    /// Every thread is occupied (in service, queued, or hung).
    ThreadsExhausted,
}

/// The CPU/thread model of one node.
#[derive(Debug)]
pub struct WorkerPool {
    cpus: usize,
    threads: usize,
    /// Requests holding a CPU right now (in service).
    in_service: Vec<ReqId>,
    /// Requests holding a CPU forever (infinite loops) — they reduce
    /// effective capacity until their component is microrebooted.
    cpu_hogs: Vec<ReqId>,
    /// Requests parked without CPU (deadlocks).
    parked: Vec<ReqId>,
    /// Requests waiting for a CPU.
    queue: VecDeque<Request>,
}

impl WorkerPool {
    /// Creates a pool with the given CPU and thread counts.
    ///
    /// # Panics
    ///
    /// Panics if either is zero.
    pub fn new(cpus: usize, threads: usize) -> Self {
        assert!(cpus > 0, "need at least one CPU");
        assert!(threads >= cpus, "thread pool must cover the CPUs");
        WorkerPool {
            cpus,
            threads,
            in_service: Vec::new(),
            cpu_hogs: Vec::new(),
            parked: Vec::new(),
            queue: VecDeque::new(),
        }
    }

    /// Returns the number of CPUs configured.
    pub fn cpus(&self) -> usize {
        self.cpus
    }

    /// Returns the number of CPUs currently free.
    pub fn free_cpus(&self) -> usize {
        self.cpus
            .saturating_sub(self.in_service.len() + self.cpu_hogs.len())
    }

    /// Returns the number of threads currently held.
    pub fn threads_held(&self) -> usize {
        self.in_service.len() + self.cpu_hogs.len() + self.parked.len() + self.queue.len()
    }

    /// Returns the number of requests queued for a CPU.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Returns the number of parked (deadlocked) requests.
    pub fn parked(&self) -> usize {
        self.parked.len()
    }

    /// Returns the number of CPU-hogging (looping) requests.
    pub fn cpu_hogs(&self) -> usize {
        self.cpu_hogs.len()
    }

    /// Admits a request, queueing it for a CPU.
    pub fn admit(&mut self, req: Request) -> Result<(), AdmitError> {
        if self.threads_held() >= self.threads {
            return Err(AdmitError::ThreadsExhausted);
        }
        self.queue.push_back(req);
        Ok(())
    }

    /// Starts as many queued requests as free CPUs allow, returning them.
    pub fn start_ready(&mut self) -> Vec<Request> {
        let mut started = Vec::new();
        while self.free_cpus() > 0 {
            match self.queue.pop_front() {
                Some(req) => {
                    self.in_service.push(req.id);
                    started.push(req);
                }
                None => break,
            }
        }
        started
    }

    /// Converts an in-service request into a parked (deadlocked) one,
    /// freeing its CPU but keeping its thread.
    pub fn park(&mut self, id: ReqId) {
        if let Some(pos) = self.in_service.iter().position(|r| *r == id) {
            self.in_service.swap_remove(pos);
            self.parked.push(id);
        }
    }

    /// Converts an in-service request into a CPU hog (infinite loop).
    pub fn hog(&mut self, id: ReqId) {
        if let Some(pos) = self.in_service.iter().position(|r| *r == id) {
            self.in_service.swap_remove(pos);
            self.cpu_hogs.push(id);
        }
    }

    /// Completes an in-service request, freeing its CPU and thread.
    ///
    /// Returns false if the id was not in service (e.g., already killed).
    pub fn complete(&mut self, id: ReqId) -> bool {
        if let Some(pos) = self.in_service.iter().position(|r| *r == id) {
            self.in_service.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Kills a request wherever it is (service, hog, parked or queued).
    ///
    /// Returns true if it was found. Used by microreboots ("kill all
    /// shepherding threads") and TTL expiry.
    pub fn kill(&mut self, id: ReqId) -> bool {
        if self.complete(id) {
            return true;
        }
        if let Some(pos) = self.cpu_hogs.iter().position(|r| *r == id) {
            self.cpu_hogs.swap_remove(pos);
            return true;
        }
        if let Some(pos) = self.parked.iter().position(|r| *r == id) {
            self.parked.swap_remove(pos);
            return true;
        }
        if let Some(pos) = self.queue.iter().position(|r| r.id == id) {
            self.queue.remove(pos);
            return true;
        }
        false
    }

    /// Kills everything (process restart), returning the ids of all
    /// requests that were holding resources.
    pub fn kill_all(&mut self) -> Vec<ReqId> {
        let mut ids: Vec<ReqId> = self.in_service.drain(..).collect();
        ids.append(&mut self.cpu_hogs);
        ids.append(&mut self.parked);
        ids.extend(self.queue.drain(..).map(|r| r.id));
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::OpCode;
    use simcore::SimTime;

    fn req(id: u64) -> Request {
        Request {
            id: ReqId(id),
            op: OpCode(0),
            session: None,
            idempotent: true,
            arg: 0,
            submitted_at: SimTime::ZERO,
        }
    }

    #[test]
    fn starts_up_to_cpu_count() {
        let mut p = WorkerPool::new(2, 10);
        for i in 0..5 {
            p.admit(req(i)).unwrap();
        }
        let started = p.start_ready();
        assert_eq!(started.len(), 2);
        assert_eq!(p.queued(), 3);
        assert_eq!(p.free_cpus(), 0);
        assert!(p.complete(ReqId(0)));
        let started = p.start_ready();
        assert_eq!(started.len(), 1);
    }

    #[test]
    fn thread_pool_exhaustion_refuses_admission() {
        let mut p = WorkerPool::new(1, 3);
        for i in 0..3 {
            p.admit(req(i)).unwrap();
        }
        assert_eq!(p.admit(req(99)).unwrap_err(), AdmitError::ThreadsExhausted);
        assert_eq!(p.threads_held(), 3);
    }

    #[test]
    fn parked_requests_free_cpu_but_hold_thread() {
        let mut p = WorkerPool::new(1, 5);
        p.admit(req(1)).unwrap();
        assert_eq!(p.start_ready().len(), 1);
        p.park(ReqId(1));
        assert_eq!(p.free_cpus(), 1, "deadlock releases the CPU");
        assert_eq!(p.parked(), 1);
        assert_eq!(p.threads_held(), 1, "but keeps the thread");
        p.admit(req(2)).unwrap();
        assert_eq!(p.start_ready().len(), 1, "CPU available for new work");
    }

    #[test]
    fn hogs_hold_cpu_forever() {
        let mut p = WorkerPool::new(2, 10);
        p.admit(req(1)).unwrap();
        p.start_ready();
        p.hog(ReqId(1));
        assert_eq!(p.free_cpus(), 1, "loop burns one CPU");
        assert_eq!(p.cpu_hogs(), 1);
        // Killing the hog restores capacity (what a microreboot does).
        assert!(p.kill(ReqId(1)));
        assert_eq!(p.free_cpus(), 2);
    }

    #[test]
    fn kill_finds_requests_anywhere() {
        let mut p = WorkerPool::new(1, 10);
        for i in 0..4 {
            p.admit(req(i)).unwrap();
        }
        p.start_ready();
        p.park(ReqId(0));
        assert!(p.kill(ReqId(0)), "parked");
        assert!(p.kill(ReqId(1)), "queued");
        assert!(!p.kill(ReqId(0)), "already gone");
        assert!(!p.kill(ReqId(99)), "never existed");
    }

    #[test]
    fn kill_all_drains_everything() {
        let mut p = WorkerPool::new(2, 10);
        for i in 0..6 {
            p.admit(req(i)).unwrap();
        }
        p.start_ready();
        p.park(ReqId(0));
        let killed = p.kill_all();
        assert_eq!(killed.len(), 6);
        assert_eq!(p.threads_held(), 0);
        assert_eq!(p.free_cpus(), 2);
    }
}
