//! The per-request call context — the application's capability handle.
//!
//! A single thread shepherds a user request through the web tier and
//! multiple components (Section 3.1). [`CallContext`] is that thread's
//! view of the platform: it mediates component invocation (naming lookup,
//! container checks, interceptors, instance pools, transaction metadata),
//! database access (transaction-scoped, with rollback on failure or kill)
//! and session-store access — while transparently accounting CPU cost,
//! wire latency, the components touched (for microreboot kill sets and
//! recovery-manager diagnosis) and the corruption taint that only the
//! comparison detector can see.

use components::container::{InstanceOutcome, TxnAttr};
use components::descriptor::{ComponentId, ComponentKind};
use components::registry::Resolved;
use simcore::{SimDuration, SimTime};
use statestore::db::Row;
use statestore::session::{SessionId, SessionObject, StoreError};
use statestore::{TxnId, Value};

use crate::app::CallError;
use crate::calib;
use crate::request::BodyMarkers;
use crate::server::ServerInner;

/// How a hung call holds its resources.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HangKind {
    /// Deadlock: the thread parks, the CPU is released.
    Park,
    /// Infinite loop: the thread burns its CPU until killed.
    Hog,
}

/// The capability handle a request handler runs against.
pub struct CallContext<'a> {
    pub(crate) inner: &'a mut ServerInner,
    now: SimTime,
    arg: i64,
    /// The client's session, if its cookie resolved.
    pub(crate) session: Option<SessionId>,
    /// A new cookie to hand back (login).
    pub(crate) set_cookie: Option<SessionId>,
    /// Whether to clear the client's cookie (logout).
    pub(crate) clear_cookie: bool,
    /// CPU consumed so far (holds a worker).
    pub(crate) cpu: SimDuration,
    /// Non-CPU wire latency accumulated (e.g., SSM round trips).
    pub(crate) latency: SimDuration,
    /// Whether injected corruption influenced this request.
    pub(crate) tainted: bool,
    /// Body anomalies to render.
    pub(crate) markers: BodyMarkers,
    /// The component blamed for a failure, for diagnosis.
    pub(crate) failed_component: Option<&'static str>,
    /// The open request transaction, if any.
    pub(crate) txn: Option<TxnId>,
    /// Components entered by this request.
    pub(crate) touched: Vec<ComponentId>,
    /// Set when the request hung inside a component.
    pub(crate) hang: Option<(ComponentId, HangKind)>,
    /// Sticky flag: a (corrupt) transaction method map told us to run
    /// without a transaction, so writes autocommit and cannot roll back.
    pub(crate) autocommit: bool,
    /// Per-request cache of the session object: the container loads the
    /// HttpSession once per request and persists it at request end.
    session_cache: Option<Option<SessionObject>>,
    /// Whether this request touched its session (drives the write-back
    /// charge at request end).
    session_accessed: bool,
    /// Rows written outside the request transaction (autocommit under a
    /// corrupt transaction method map): they cannot be rolled back and
    /// become divergence if the request later fails.
    pub(crate) autocommitted: Vec<(&'static str, i64)>,
    /// Taint that propagates into writes: the request's *inputs* (session
    /// state, instance attributes, generated keys) were corrupted, so
    /// values it computes — and stores — differ from the fault-free twin's.
    /// Deliberately NOT set by reading already-tainted database rows:
    /// those reads produce tainted *responses*, but treating their writes
    /// as fresh divergence would make taint viral and residual damage
    /// unbounded.
    taint_propagates: bool,
}

impl<'a> CallContext<'a> {
    pub(crate) fn new(
        inner: &'a mut ServerInner,
        now: SimTime,
        session: Option<SessionId>,
        arg: i64,
    ) -> Self {
        CallContext {
            inner,
            now,
            arg,
            session,
            set_cookie: None,
            clear_cookie: false,
            cpu: SimDuration::ZERO,
            latency: SimDuration::ZERO,
            tainted: false,
            markers: BodyMarkers::default(),
            failed_component: None,
            txn: None,
            touched: Vec::new(),
            hang: None,
            autocommit: false,
            session_cache: None,
            session_accessed: false,
            autocommitted: Vec::new(),
            taint_propagates: false,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The request's operation argument (item id, category id, ...).
    pub fn arg(&self) -> i64 {
        self.arg
    }

    /// Charges application CPU time to the request.
    pub fn charge(&mut self, cpu: SimDuration) {
        self.cpu += cpu;
    }

    /// Marks the response as influenced by corruption (oracle only).
    pub fn taint(&mut self) {
        self.tainted = true;
    }

    /// Declares that the handler extracted a corrupted-but-plausible value
    /// it will compute with: the request's *writes* now diverge from the
    /// fault-free twin's (oracle bookkeeping — merely *reading* a tainted
    /// object taints the response, but only used-in-anger wrong values
    /// turn into persistent state divergence).
    pub fn mark_divergent_inputs(&mut self) {
        self.tainted = true;
        self.taint_propagates = true;
    }

    /// Renders a "please log in" page (flagged as a failure when the
    /// client believes it is already logged in).
    pub fn mark_login_prompt(&mut self) {
        self.markers.login_prompt = true;
    }

    /// Renders visibly invalid data (e.g., a negative item id).
    pub fn mark_invalid_data(&mut self) {
        self.markers.invalid_data = true;
    }

    fn exception(&mut self, component: Option<&'static str>) -> CallError {
        self.markers.exception_text = true;
        if self.failed_component.is_none() {
            self.failed_component = component;
        }
        CallError::Exception
    }

    // ---- component invocation ------------------------------------------

    /// Invokes business method `method` on component `name`, running `f`
    /// as its body.
    ///
    /// This is the interceptor chain: naming lookup, sentinel check,
    /// container state check, fault semantics, instance-pool service,
    /// transaction-attribute lookup and in-flight accounting all happen
    /// here, before and after `f`.
    pub fn call<T>(
        &mut self,
        name: &'static str,
        method: &'static str,
        f: impl FnOnce(&mut CallContext<'a>) -> Result<T, CallError>,
    ) -> Result<T, CallError> {
        self.cpu += calib::CALL_OVERHEAD;
        let id = match self.inner.registry.resolve(name) {
            Err(_) => return Err(self.exception(Some(name))),
            Ok(Resolved::RetryAfter(d)) => return Err(CallError::Retry(d)),
            Ok(Resolved::Component(id)) => id,
        };
        if self.inner.registry.is_wrong(name) {
            // The lookup silently resolved to the wrong component; the
            // invocation then hits a foreign interface — the
            // ClassCastException analogue (lookup-time checks cannot catch
            // this, only the call itself fails).
            return Err(self.exception(Some(name)));
        }
        // Intermittent faults self-heal on a deadline and fail calls
        // probabilistically. The chance is drawn before the container
        // borrow below (the rng lives next to the containers in
        // `ServerInner`), and only when the fault is armed, so fault-free
        // runs consume no randomness.
        let intermittent_fails = {
            let now_us = self.now.as_micros();
            let f = &mut self.inner.containers[id.0].faults;
            if f.intermittent_permille > 0 && now_us >= f.intermittent_heals_at_us {
                f.intermittent_permille = 0;
                f.intermittent_heals_at_us = 0;
            }
            let permille = f.intermittent_permille;
            permille > 0 && self.inner.rng.chance(f64::from(permille) / 1000.0)
        };
        {
            let c = &mut self.inner.containers[id.0];
            if !c.is_active() {
                return Err(CallError::Retry(calib::RETRY_AFTER));
            }
            if c.faults.transient_exceptions > 0 {
                c.faults.transient_exceptions -= 1;
                return Err(self.exception(Some(name)));
            }
            if intermittent_fails {
                return Err(self.exception(Some(name)));
            }
            if c.faults.deadlocked {
                c.call_enter();
                self.hang = Some((id, HangKind::Park));
                self.touch(id);
                self.failed_component = Some(name);
                return Err(CallError::Hang);
            }
            if c.faults.infinite_loop {
                c.call_enter();
                self.hang = Some((id, HangKind::Hog));
                self.touch(id);
                self.failed_component = Some(name);
                return Err(CallError::Hang);
            }
            if c.faults.leak_per_call > 0 {
                let n = c.faults.leak_per_call;
                c.leak(n);
            }
            if c.descriptor.kind == ComponentKind::StatelessSessionBean {
                match c.pool.serve() {
                    InstanceOutcome::Clean => {}
                    InstanceOutcome::FailedAndDiscarded(_) => {
                        return Err(self.exception(Some(name)));
                    }
                    InstanceOutcome::ServedWrong => {
                        self.tainted = true;
                        self.taint_propagates = true;
                    }
                }
            }
            let is_entity_store =
                c.descriptor.kind == ComponentKind::EntityBean && method == "store";
            match c.txn_map.attr_for(method) {
                Err(_) => return Err(self.exception(Some(name))),
                Ok(TxnAttr::Required) => {}
                // Container-managed persistence requires a transaction
                // context for entity writes: a (corruptly) flipped
                // attribute raises the TransactionRequiredException
                // analogue. Elsewhere it silently strips transactionality
                // from subsequent writes.
                Ok(TxnAttr::NotSupported) if is_entity_store => {
                    return Err(self.exception(Some(name)));
                }
                Ok(TxnAttr::NotSupported) => self.autocommit = true,
            }
            c.call_enter();
        }
        self.touch(id);
        let result = f(self);
        match &result {
            Err(CallError::Hang) => {
                // The thread never leaves the hung callee; leave the
                // in-flight count raised until a microreboot clears it.
            }
            _ => self.inner.containers[id.0].call_exit(),
        }
        if result.is_err() && self.failed_component.is_none() {
            self.failed_component = Some(name);
        }
        result
    }

    fn touch(&mut self, id: ComponentId) {
        if !self.touched.contains(&id) {
            self.touched.push(id);
        }
    }

    // ---- database access -------------------------------------------------

    fn ensure_txn(&mut self) -> Result<TxnId, CallError> {
        if let Some(t) = self.txn {
            return Ok(t);
        }
        let conn = self.inner.db_conn();
        let t = {
            let mut db = self.inner.db.borrow_mut();
            db.begin(conn)
        };
        match t {
            Ok(t) => {
                self.txn = Some(t);
                Ok(t)
            }
            Err(_) => Err(self.exception(None)),
        }
    }

    /// Reads a row; `None` if absent.
    pub fn db_read(&mut self, table: &str, pk: i64) -> Result<Option<Row>, CallError> {
        self.cpu += calib::DB_READ_COST;
        let txn = self.txn;
        let result = {
            let mut db = self.inner.db.borrow_mut();
            let tainted = db.is_tainted(table, pk);
            let r = match txn {
                Some(t) => db.read(t, table, pk),
                None => db.read_committed(table, pk),
            };
            (r, tainted)
        };
        if result.1 {
            self.tainted = true;
        }
        result.0.map_err(|_| self.exception(None))
    }

    /// Scans a table (read-only), marking taint if any returned row is
    /// corrupted.
    pub fn db_scan(
        &mut self,
        table: &str,
        filter: impl Fn(&Row) -> bool,
        limit: usize,
    ) -> Result<Vec<Row>, CallError> {
        self.cpu += calib::DB_SCAN_COST;
        let (rows, tainted) = {
            let mut db = self.inner.db.borrow_mut();
            let rows = db.scan(table, filter, limit);
            match rows {
                Ok(rows) => {
                    let tainted = rows.iter().any(|r| {
                        r[0].as_int()
                            .map(|pk| db.is_tainted(table, pk))
                            .unwrap_or(false)
                    });
                    (Ok(rows), tainted)
                }
                Err(e) => (Err(e), false),
            }
        };
        if tainted {
            self.tainted = true;
        }
        rows.map_err(|_| self.exception(None))
    }

    /// Returns the largest primary key in `table`.
    pub fn db_max_pk(&mut self, table: &str) -> Result<Option<i64>, CallError> {
        self.cpu += calib::DB_READ_COST;
        let r = self.inner.db.borrow().max_pk(table);
        r.map_err(|_| self.exception(None))
    }

    fn db_write<F>(&mut self, op: F) -> Result<(), CallError>
    where
        F: FnOnce(&mut statestore::Database, TxnId) -> Result<(), statestore::DbError>,
    {
        self.cpu += calib::DB_WRITE_COST;
        if self.autocommit {
            // A (corrupt) NotSupported attribute: run the write in its own
            // immediately-committed transaction. A later abort cannot undo
            // it — this is how wrong txn-map corruption leaves the database
            // needing manual repair.
            let conn = self.inner.db_conn();
            let mut db = self.inner.db.borrow_mut();
            let t = match db.begin(conn) {
                Ok(t) => t,
                Err(_) => {
                    drop(db);
                    return Err(self.exception(None));
                }
            };
            let r = op(&mut db, t);
            let outcome = match r {
                Ok(()) => db.commit(t).map_err(|_| ()),
                Err(_) => {
                    let _ = db.rollback(t);
                    Err(())
                }
            };
            drop(db);
            outcome.map_err(|_| self.exception(None))
        } else {
            let t = self.ensure_txn()?;
            let r = {
                let mut db = self.inner.db.borrow_mut();
                op(&mut db, t)
            };
            r.map_err(|_| self.exception(None))
        }
    }

    fn note_autocommit(&mut self, table: &'static str, pk: i64) {
        if self.autocommit && !self.autocommitted.contains(&(table, pk)) {
            self.autocommitted.push((table, pk));
        }
        // Taint propagation (comparison-detector oracle): a request whose
        // inputs were corrupted computes different values than the
        // fault-free twin, so everything it writes diverges too —
        // wrong-but-valid corruption turns into persistent database
        // damage exactly as Table 2's ≈ rows describe.
        if self.taint_propagates {
            let _ = self.inner.db.borrow_mut().taint_row(table, pk);
        }
    }

    /// Inserts a row inside the request transaction.
    pub fn db_insert(&mut self, table: &'static str, row: Row) -> Result<(), CallError> {
        let pk = row[0].as_int().unwrap_or(0);
        let r = self.db_write(|db, t| db.insert(t, table, row));
        if r.is_ok() {
            self.note_autocommit(table, pk);
        }
        r
    }

    /// Updates row cells inside the request transaction.
    pub fn db_update(
        &mut self,
        table: &'static str,
        pk: i64,
        updates: &[(usize, Value)],
    ) -> Result<(), CallError> {
        let updates = updates.to_vec();
        let r = self.db_write(move |db, t| db.update(t, table, pk, &updates));
        if r.is_ok() {
            self.note_autocommit(table, pk);
        }
        r
    }

    /// Deletes a row inside the request transaction.
    pub fn db_delete(&mut self, table: &'static str, pk: i64) -> Result<(), CallError> {
        let r = self.db_write(move |db, t| db.delete(t, table, pk));
        if r.is_ok() {
            self.note_autocommit(table, pk);
        }
        r
    }

    /// Inserts a row or — if the key already exists — overwrites the
    /// existing row's non-key columns.
    ///
    /// Returns true when it overwrote. The overwrite path records the
    /// clobbered row as diverged from the known-good instance (the
    /// comparison-detector oracle) and taints this response: this is how a
    /// *wrong* primary-key generator turns into silent database damage
    /// needing manual repair (Table 2's ≈ rows).
    pub fn db_insert_or_overwrite(
        &mut self,
        table: &'static str,
        row: Row,
    ) -> Result<bool, CallError> {
        let pk = match row[0].as_int() {
            Some(pk) => pk,
            None => return Err(self.exception(None)),
        };
        let exists = {
            let db = self.inner.db.borrow();
            db.read_committed(table, pk).ok().flatten().is_some()
        };
        if !exists {
            self.db_insert(table, row)?;
            return Ok(false);
        }
        // Oracle bookkeeping before the wrong write.
        let _ = self.inner.db.borrow_mut().taint_row(table, pk);
        self.tainted = true;
        self.taint_propagates = true;
        let updates: Vec<(usize, Value)> = row.into_iter().enumerate().skip(1).collect();
        self.db_update(table, pk, &updates)?;
        Ok(true)
    }

    // ---- session access --------------------------------------------------

    fn charge_session_access(&mut self) {
        self.cpu += self.inner.session.access_cpu();
        self.latency += self.inner.session.access_latency();
    }

    /// Returns the client's session id, if it presented a cookie.
    pub fn session_id(&self) -> Option<SessionId> {
        self.session
    }

    /// Reads the client's session object.
    ///
    /// `Ok(None)` means "no usable session" — no cookie, expired, lost in a
    /// restart, or discarded by the store's integrity check. The handler
    /// typically renders a login prompt in that case.
    ///
    /// The container loads the HttpSession once per request: repeated reads
    /// hit a per-request cache and cost nothing extra. A request that
    /// touched its session pays one write-back at request end (the SSM
    /// checkpoint pattern), accounted by the server.
    pub fn session_read(&mut self) -> Result<Option<SessionObject>, CallError> {
        let Some(sid) = self.session else {
            return Ok(None);
        };
        if let Some(cached) = &self.session_cache {
            let cached = cached.clone();
            if let Some(obj) = &cached {
                if obj.is_tainted() {
                    self.tainted = true;
                }
            }
            return Ok(cached);
        }
        self.charge_session_access();
        self.session_accessed = true;
        match self.inner.session.read(sid) {
            Ok(Some(obj)) => {
                if obj.is_tainted() {
                    self.tainted = true;
                }
                self.session_cache = Some(Some(obj.clone()));
                Ok(Some(obj))
            }
            Ok(None) => {
                self.session_cache = Some(None);
                Ok(None)
            }
            Err(StoreError::CorruptDiscarded(_)) => {
                self.session_cache = Some(None);
                Ok(None)
            }
            Err(StoreError::Unavailable) => {
                self.markers.store_error = true;
                Err(self.exception(None))
            }
        }
    }

    /// Writes the client's session object.
    ///
    /// Fails if the client has no session (use [`CallContext::new_session`]
    /// first). The store write happens immediately; its cost is part of
    /// the request-end write-back charge.
    pub fn session_write(&mut self, obj: SessionObject) -> Result<(), CallError> {
        let Some(sid) = self.session else {
            return Err(self.exception(None));
        };
        self.session_accessed = true;
        self.session_cache = Some(Some(obj.clone()));
        match self.inner.session.write(sid, obj) {
            Ok(()) => Ok(()),
            Err(_) => {
                self.markers.store_error = true;
                Err(self.exception(None))
            }
        }
    }

    /// Charges the request-end session write-back, if the request touched
    /// its session. Called by the server after the handler returns.
    pub(crate) fn finalize_session(&mut self) {
        if self.session_accessed {
            self.charge_session_access();
        }
    }

    /// Creates a fresh session (login) and sets the response cookie.
    pub fn new_session(&mut self) -> SessionId {
        let sid = self.inner.alloc_session_id();
        self.session = Some(sid);
        self.set_cookie = Some(sid);
        sid
    }

    /// Destroys the client's session (logout) and clears its cookie.
    pub fn end_session(&mut self) -> Result<(), CallError> {
        if let Some(sid) = self.session.take() {
            self.charge_session_access();
            let _ = self.inner.session.remove(sid);
        }
        self.session_cache = Some(None);
        self.clear_cookie = true;
        Ok(())
    }
}
