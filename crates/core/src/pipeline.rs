//! The request pipeline: admission, execution bookkeeping and kill paths.
//!
//! [`RequestPipeline`] owns everything about a request between admission
//! and its response leaving the server: the [`WorkerPool`] (CPU slots,
//! thread slots, the admission queue), the set of running requests whose
//! completion is already scheduled, and the set of hung requests parked or
//! hogging inside a component. The recovery lifecycle reaches in through
//! the `take_*` methods, which atomically remove victims and release their
//! worker resources; transaction rollback and response fabrication stay
//! with the caller, because the pipeline knows nothing about the database
//! or HTTP statuses.

use components::descriptor::ComponentId;
use simcore::SimTime;
use statestore::TxnId;

use crate::context::HangKind;
use crate::request::{ReqId, Request, Response};
use crate::workers::{AdmitError, WorkerPool};

/// A request in service: handler already executed, completion scheduled.
pub(crate) struct RunningReq {
    pub(crate) req: Request,
    pub(crate) response: Response,
    pub(crate) touched: Vec<ComponentId>,
    pub(crate) txn: Option<TxnId>,
}

/// A hung request: thread stuck inside a component.
pub(crate) struct HungReq {
    pub(crate) req: Request,
    pub(crate) component: ComponentId,
    pub(crate) since: SimTime,
    pub(crate) txn: Option<TxnId>,
}

/// A request forcibly removed from the pipeline by a kill path.
pub(crate) struct Victim {
    pub(crate) req: Request,
    pub(crate) txn: Option<TxnId>,
    /// The component it was stuck in, when it was hung (kill paths blame
    /// the hang site; running victims are blamed on the rebooted group).
    pub(crate) hung_in: Option<ComponentId>,
}

/// Admission, execution and kill bookkeeping for one server's requests.
// urb-lint: volatile-state(take_all)
pub struct RequestPipeline {
    workers: WorkerPool,
    /// Ordered by request id, so kill paths visit victims deterministically.
    /// Request ids are issued monotonically, so registration is almost
    /// always a pure append onto the dense vec; completion binary-searches
    /// instead of walking tree nodes on every finished request.
    running: Vec<(ReqId, RunningReq)>,
    hung: Vec<(ReqId, HungReq)>,
}

/// Inserts into a request-id-sorted vec; appends on the (overwhelmingly
/// common) monotone fast path.
fn insert_sorted<T>(v: &mut Vec<(ReqId, T)>, id: ReqId, val: T) {
    match v.last() {
        Some(&(last, _)) if last < id => v.push((id, val)),
        None => v.push((id, val)),
        _ => match v.binary_search_by_key(&id, |&(i, _)| i) {
            Ok(i) => v[i] = (id, val),
            Err(i) => v.insert(i, (id, val)),
        },
    }
}

/// Removes from a request-id-sorted vec.
fn remove_sorted<T>(v: &mut Vec<(ReqId, T)>, id: ReqId) -> Option<T> {
    let i = v.binary_search_by_key(&id, |&(i, _)| i).ok()?;
    Some(v.remove(i).1)
}

impl RequestPipeline {
    pub(crate) fn new(cpus: usize, threads: usize) -> Self {
        RequestPipeline {
            workers: WorkerPool::new(cpus, threads),
            running: Vec::new(),
            hung: Vec::new(),
        }
    }

    /// Returns the number of requests queued for a CPU.
    pub fn queued(&self) -> usize {
        self.workers.queued()
    }

    /// Returns the number of hung requests.
    pub fn hung_count(&self) -> usize {
        self.hung.len()
    }

    /// Returns when the longest-hung request got stuck, if any is stuck.
    pub fn oldest_hung(&self) -> Option<SimTime> {
        self.hung.iter().map(|(_, h)| h.since).min()
    }

    /// Admits a request into the worker pool.
    pub(crate) fn admit(&mut self, req: Request) -> Result<(), AdmitError> {
        self.workers.admit(req)
    }

    /// Moves queued requests onto free CPUs, returning them for execution.
    pub(crate) fn start_ready(&mut self) -> Vec<Request> {
        self.workers.start_ready()
    }

    /// Registers an executed request whose completion is scheduled.
    pub(crate) fn record_running(&mut self, id: ReqId, rr: RunningReq) {
        insert_sorted(&mut self.running, id, rr);
    }

    /// Registers a hung request, parking or hogging its worker.
    pub(crate) fn record_hung(&mut self, id: ReqId, kind: HangKind, h: HungReq) {
        match kind {
            HangKind::Park => self.workers.park(id),
            HangKind::Hog => self.workers.hog(id),
        }
        insert_sorted(&mut self.hung, id, h);
    }

    /// Completes a running request, releasing its worker. Returns `None`
    /// if it was killed in the meantime.
    pub(crate) fn finish(&mut self, id: ReqId) -> Option<RunningReq> {
        let rr = remove_sorted(&mut self.running, id)?;
        self.workers.complete(id);
        Some(rr)
    }

    /// Removes (killing their workers) every running request that touched
    /// one of `members` and every hung request stuck inside one — a
    /// microreboot's thread kill. Running victims come first, each set in
    /// request-id order.
    pub(crate) fn take_victims_touching(&mut self, members: &[ComponentId]) -> Vec<Victim> {
        let mut victims = Vec::new();
        let running_ids: Vec<ReqId> = self
            .running
            .iter()
            .filter(|(_, rr)| rr.touched.iter().any(|t| members.contains(t)))
            .map(|&(id, _)| id)
            .collect();
        for rid in running_ids {
            let rr = remove_sorted(&mut self.running, rid).expect("victim exists");
            self.workers.kill(rid);
            victims.push(Victim {
                req: rr.req,
                txn: rr.txn,
                hung_in: None,
            });
        }
        let hung_ids: Vec<ReqId> = self
            .hung
            .iter()
            .filter(|(_, h)| members.contains(&h.component))
            .map(|&(id, _)| id)
            .collect();
        for rid in hung_ids {
            let h = remove_sorted(&mut self.hung, rid).expect("victim exists");
            self.workers.kill(rid);
            victims.push(Victim {
                req: h.req,
                txn: h.txn,
                hung_in: Some(h.component),
            });
        }
        victims
    }

    /// Removes (killing their workers) every hung request older than
    /// `ttl` — the lease sweep.
    pub(crate) fn take_expired_hung(
        &mut self,
        now: SimTime,
        ttl: simcore::SimDuration,
    ) -> Vec<Victim> {
        let expired: Vec<ReqId> = self
            .hung
            .iter()
            .filter(|(_, h)| now - h.since >= ttl)
            .map(|&(id, _)| id)
            .collect();
        let mut victims = Vec::new();
        for rid in expired {
            let h = remove_sorted(&mut self.hung, rid).expect("victim exists");
            self.workers.kill(rid);
            victims.push(Victim {
                req: h.req,
                txn: h.txn,
                hung_in: Some(h.component),
            });
        }
        victims
    }

    /// Empties the whole pipeline — queued, running and hung — for the
    /// coarse restart levels. Queued requests that never started produce
    /// no victim (their clients time out); started ones are returned in
    /// the worker pool's drain order, then any stragglers by request id.
    pub(crate) fn take_all(&mut self) -> Vec<Victim> {
        let mut victims = Vec::new();
        for rid in self.workers.kill_all() {
            let (req, txn, hung_in) = if let Some(rr) = remove_sorted(&mut self.running, rid) {
                (rr.req, rr.txn, None)
            } else if let Some(h) = remove_sorted(&mut self.hung, rid) {
                (h.req, h.txn, Some(h.component))
            } else {
                // Queued, never started: the kill_all drained its queue
                // slot; there is nothing to respond to.
                continue;
            };
            victims.push(Victim { req, txn, hung_in });
        }
        // The two key streams are each ordered, but their concatenation is
        // not: merge-sort them so stragglers still die in request-id order.
        let mut leftover: Vec<ReqId> = self
            .running
            .iter()
            .map(|&(id, _)| id)
            .chain(self.hung.iter().map(|&(id, _)| id))
            .collect();
        leftover.sort_unstable();
        for rid in leftover {
            let (req, txn, hung_in) = if let Some(rr) = remove_sorted(&mut self.running, rid) {
                (rr.req, rr.txn, None)
            } else {
                let h = remove_sorted(&mut self.hung, rid).expect("key came from hung");
                (h.req, h.txn, Some(h.component))
            };
            victims.push(Victim { req, txn, hung_in });
        }
        victims
    }
}
