//! Microcheckpointing for long-running operations (Section 8, "Workload").
//!
//! Microreboots thrive on short, self-contained requests. For long-running
//! work the paper suggests that "individual components could be
//! periodically microcheckpointed to keep the cost of µRBs low, keeping in
//! mind the associated risk of persistent faults". This module implements
//! that idea in the crash-only spirit: progress tokens live in a dedicated
//! store *outside* the component (so the microreboot cannot corrupt the
//! record of how far the work got), and a fresh instance resumes from the
//! last checkpoint instead of restarting from zero.
//!
//! The "risk of persistent faults" is real: if the fault that killed the
//! instance is deterministic at a given step, resuming replays it forever.
//! The store therefore counts resumptions per task and refuses to hand out
//! a checkpoint that has already been resumed too often — forcing a clean
//! restart (or escalation), the checkpoint-era analogue of the recursive
//! policy.

use std::collections::BTreeMap;

use simcore::SimTime;

/// Identifier of a long-running task.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(pub u64);

/// A stored progress token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Application-defined progress marker (e.g., last row exported).
    pub progress: u64,
    /// When it was taken.
    pub at: SimTime,
}

/// Why a checkpoint could not be resumed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResumeError {
    /// No checkpoint recorded for this task.
    NoCheckpoint,
    /// The task was already resumed `limit` times without completing —
    /// the fault is likely persistent; restart cleanly or escalate.
    SuspectedPersistentFault {
        /// The configured resume limit.
        limit: u32,
    },
}

/// The external microcheckpoint store.
///
/// Like FastS and SSM, it lives outside the components; unlike them it
/// stores *progress*, not session data, and enforces a resume budget.
#[derive(Clone, Debug)]
pub struct MicrocheckpointStore {
    max_resumes: u32,
    entries: BTreeMap<TaskId, (Checkpoint, u32)>,
    /// Checkpoints written over the store's lifetime.
    writes: u64,
}

impl MicrocheckpointStore {
    /// Creates a store allowing `max_resumes` resumptions per task.
    pub fn new(max_resumes: u32) -> Self {
        MicrocheckpointStore {
            max_resumes,
            entries: BTreeMap::new(),
            writes: 0,
        }
    }

    /// Records (or advances) a task's progress.
    pub fn checkpoint(&mut self, task: TaskId, progress: u64, now: SimTime) {
        self.writes += 1;
        let resumes = self.entries.get(&task).map(|(_, r)| *r).unwrap_or(0);
        self.entries
            .insert(task, (Checkpoint { progress, at: now }, resumes));
    }

    /// Fetches the task's checkpoint for resumption after a microreboot.
    ///
    /// Each successful call consumes one unit of the resume budget.
    pub fn resume(&mut self, task: TaskId) -> Result<Checkpoint, ResumeError> {
        let Some((cp, resumes)) = self.entries.get_mut(&task) else {
            return Err(ResumeError::NoCheckpoint);
        };
        if *resumes >= self.max_resumes {
            return Err(ResumeError::SuspectedPersistentFault {
                limit: self.max_resumes,
            });
        }
        *resumes += 1;
        Ok(cp.clone())
    }

    /// Completes a task, discarding its checkpoint.
    pub fn complete(&mut self, task: TaskId) {
        self.entries.remove(&task);
    }

    /// Abandons a task entirely (clean restart): the progress is dropped
    /// and the resume budget resets.
    pub fn abandon(&mut self, task: TaskId) {
        self.entries.remove(&task);
    }

    /// Returns the number of live (incomplete) checkpointed tasks.
    pub fn live_tasks(&self) -> usize {
        self.entries.len()
    }

    /// Returns checkpoints written over the store's lifetime.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy long-running job: process `total` units, checkpoint every
    /// `interval`, and crash (simulated) at `crash_at` if given.
    fn run_job(
        store: &mut MicrocheckpointStore,
        task: TaskId,
        start: u64,
        total: u64,
        interval: u64,
        crash_at: Option<u64>,
    ) -> Result<(), u64> {
        let mut done = start;
        while done < total {
            if let Some(c) = crash_at {
                if done >= c {
                    return Err(done);
                }
            }
            done += 1;
            if done.is_multiple_of(interval) {
                store.checkpoint(task, done, SimTime::from_secs(done));
            }
        }
        store.complete(task);
        Ok(())
    }

    #[test]
    fn resume_skips_completed_work() {
        let mut store = MicrocheckpointStore::new(3);
        let task = TaskId(1);
        // The job crashes at unit 70 of 100, having checkpointed at 60.
        let crashed = run_job(&mut store, task, 0, 100, 20, Some(70));
        assert_eq!(crashed, Err(70));
        let cp = store.resume(task).expect("checkpoint exists");
        assert_eq!(cp.progress, 60, "resume from the last checkpoint");
        // A fresh instance finishes the remaining 40 units.
        run_job(&mut store, task, cp.progress, 100, 20, None).expect("finishes");
        assert_eq!(store.live_tasks(), 0);
    }

    #[test]
    fn without_checkpointing_work_restarts_from_zero() {
        let mut store = MicrocheckpointStore::new(3);
        let task = TaskId(2);
        let crashed = run_job(&mut store, task, 0, 100, u64::MAX, Some(70));
        assert_eq!(crashed, Err(70));
        assert_eq!(
            store.resume(task),
            Err(ResumeError::NoCheckpoint),
            "no checkpoints were ever taken: all 70 units are lost"
        );
    }

    #[test]
    fn persistent_faults_exhaust_the_resume_budget() {
        let mut store = MicrocheckpointStore::new(2);
        let task = TaskId(3);
        // A deterministic fault at unit 50: every resume replays it.
        let mut start = 0;
        for _ in 0..2 {
            let crashed = run_job(&mut store, task, start, 100, 10, Some(50));
            assert!(crashed.is_err());
            start = store.resume(task).expect("within budget").progress;
            assert_eq!(start, 50, "stuck at the faulty step");
        }
        let crashed = run_job(&mut store, task, start, 100, 10, Some(50));
        assert!(crashed.is_err());
        assert_eq!(
            store.resume(task),
            Err(ResumeError::SuspectedPersistentFault { limit: 2 }),
            "the store refuses to replay a suspected persistent fault"
        );
        // The recursive-policy response: abandon and start clean.
        store.abandon(task);
        assert_eq!(store.resume(task), Err(ResumeError::NoCheckpoint));
    }

    #[test]
    fn completion_clears_state_and_budget() {
        let mut store = MicrocheckpointStore::new(1);
        let task = TaskId(4);
        store.checkpoint(task, 10, SimTime::ZERO);
        assert_eq!(store.resume(task).unwrap().progress, 10);
        store.complete(task);
        assert_eq!(store.live_tasks(), 0);
        // A new incarnation of the task starts with a fresh budget.
        store.checkpoint(task, 5, SimTime::ZERO);
        assert!(store.resume(task).is_ok());
    }

    #[test]
    fn checkpoints_advance_monotonically_per_write() {
        let mut store = MicrocheckpointStore::new(3);
        let task = TaskId(5);
        store.checkpoint(task, 10, SimTime::from_secs(1));
        store.checkpoint(task, 20, SimTime::from_secs(2));
        assert_eq!(store.resume(task).unwrap().progress, 20);
        assert_eq!(store.writes(), 2);
    }
}
