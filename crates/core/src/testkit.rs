//! A minimal crash-only application for tests, examples and benches.
//!
//! `ToyApp` is deliberately tiny — one web component, one stateless
//! session bean (`Front`), two entity beans (`Store` and `Ledger`) that
//! share a recovery group — but it exercises every server mechanism:
//! naming lookups, nested calls, transactions, session state, markers and
//! the microreboot kill paths. The real evaluation application (eBid)
//! lives in the `ebid` crate.

use components::descriptor::{ComponentDescriptor, ComponentKind};
use simcore::SimDuration;
use statestore::db::TableDef;
use statestore::session::SessionObject;
use statestore::{Database, Value};

use crate::app::{Application, CallError};
use crate::context::CallContext;
use crate::request::{OpCode, Request};

/// Operations `ToyApp` understands.
pub mod ops {
    use crate::request::OpCode;

    /// Read item `arg` (idempotent).
    pub const GET: OpCode = OpCode(0);
    /// Increment item `arg` (non-idempotent).
    pub const PUT: OpCode = OpCode(1);
    /// Log in as user `arg`.
    pub const LOGIN: OpCode = OpCode(2);
    /// Log out.
    pub const LOGOUT: OpCode = OpCode(3);
    /// Add item `arg` to the session cart.
    pub const CART_ADD: OpCode = OpCode(4);
}

/// The toy crash-only application.
#[derive(Default)]
pub struct ToyApp {
    /// Count of component reinit callbacks, for tests.
    pub reinits: u32,
    /// Count of process restart callbacks, for tests.
    pub restarts: u32,
}

impl ToyApp {
    /// Creates the application.
    pub fn new() -> Self {
        ToyApp::default()
    }

    /// Returns the schema the app expects.
    pub fn schema() -> Vec<TableDef> {
        vec![TableDef {
            name: "items",
            columns: &["id", "value"],
        }]
    }

    /// Builds a database pre-populated with `n` items valued 0.
    pub fn seeded_db(n: i64) -> Database {
        let mut db = Database::new(Self::schema());
        let conn = db.open_conn();
        let txn = db.begin(conn).expect("fresh connection");
        for i in 1..=n {
            db.insert(txn, "items", vec![Value::Int(i), Value::Int(0)])
                .expect("unique ids");
        }
        db.commit(txn).expect("seed commit");
        db
    }
}

impl Application for ToyApp {
    fn descriptors(&self) -> Vec<ComponentDescriptor> {
        vec![
            ComponentDescriptor::new("Web", ComponentKind::Web)
                .with_costs(SimDuration::from_millis(71), SimDuration::from_millis(957)),
            ComponentDescriptor::new("Front", ComponentKind::StatelessSessionBean)
                .with_jndi_refs(&["Store", "Ledger"])
                .with_costs(SimDuration::from_millis(10), SimDuration::from_millis(450)),
            ComponentDescriptor::new("Store", ComponentKind::EntityBean)
                .with_group_refs(&["Ledger"])
                .with_costs(SimDuration::from_millis(10), SimDuration::from_millis(500)),
            ComponentDescriptor::new("Ledger", ComponentKind::EntityBean)
                .with_costs(SimDuration::from_millis(12), SimDuration::from_millis(520)),
        ]
    }

    fn methods_of(&self, component: &str) -> &'static [&'static str] {
        match component {
            "Web" => &["dispatch"],
            "Front" => &["get", "put", "login", "logout", "cart_add"],
            "Store" => &["read", "write"],
            "Ledger" => &["append"],
            _ => &[],
        }
    }

    fn web_component(&self) -> &'static str {
        "Web"
    }

    fn base_cost(&self, _op: OpCode) -> SimDuration {
        SimDuration::from_millis(8)
    }

    fn call_path(&self, op: OpCode) -> &'static [&'static str] {
        match op {
            ops::GET => &["Web", "Front", "Store"],
            ops::PUT => &["Web", "Front", "Store", "Ledger"],
            ops::LOGIN | ops::LOGOUT | ops::CART_ADD => &["Web", "Front"],
            _ => &["Web"],
        }
    }

    fn handle(&mut self, ctx: &mut CallContext<'_>, req: &Request) -> Result<(), CallError> {
        match req.op {
            ops::GET => ctx.call("Front", "get", |ctx| {
                ctx.call("Store", "read", |ctx| {
                    let row = ctx.db_read("items", ctx.arg())?;
                    match row {
                        Some(r) => {
                            if r[1].as_int().unwrap_or(0) < 0 {
                                ctx.mark_invalid_data();
                            }
                            Ok(())
                        }
                        None => {
                            ctx.mark_invalid_data();
                            Ok(())
                        }
                    }
                })
            }),
            ops::PUT => ctx.call("Front", "put", |ctx| {
                ctx.call("Store", "write", |ctx| {
                    let pk = ctx.arg();
                    let row = ctx.db_read("items", pk)?;
                    match row {
                        Some(r) => {
                            let v = r[1].as_int().unwrap_or(0);
                            ctx.db_update("items", pk, &[(1, Value::Int(v + 1))])
                        }
                        None => ctx.db_insert("items", vec![Value::Int(pk), Value::Int(1)]),
                    }
                })?;
                ctx.call("Ledger", "append", |_| Ok(()))
            }),
            ops::LOGIN => ctx.call("Front", "login", |ctx| {
                ctx.new_session();
                let mut obj = SessionObject::new();
                obj.set("user_id", ctx.arg());
                ctx.session_write(obj)
            }),
            ops::LOGOUT => ctx.call("Front", "logout", |ctx| ctx.end_session()),
            ops::CART_ADD => ctx.call("Front", "cart_add", |ctx| {
                match ctx.session_read()? {
                    Some(mut obj) => {
                        match obj.get("user_id") {
                            Some(v) if v.as_int().map(Self::valid_user).unwrap_or(false) => {}
                            Some(v) if v.is_null() => {
                                // Null dereference analogue.
                                return Err(CallError::Exception);
                            }
                            _ => {
                                ctx.mark_invalid_data();
                                return Ok(());
                            }
                        }
                        obj.set("cart_item", ctx.arg());
                        ctx.session_write(obj)
                    }
                    None => {
                        ctx.mark_login_prompt();
                        Ok(())
                    }
                }
            }),
            _ => Err(CallError::Exception),
        }
    }

    fn session_valid(&self, obj: &SessionObject) -> bool {
        obj.get("user_id")
            .and_then(Value::as_int)
            .map(Self::valid_user)
            .unwrap_or(false)
    }

    fn on_component_reinit(&mut self, _component: &str) {
        self.reinits += 1;
    }

    fn on_process_restart(&mut self) {
        self.restarts += 1;
    }
}

impl ToyApp {
    fn valid_user(v: i64) -> bool {
        (0..1_000_000).contains(&v)
    }
}
