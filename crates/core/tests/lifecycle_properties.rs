//! Property-style tests of the recovery lifecycle state machine: the
//! escalation ladder, coarse-supersedes-finer cancellation, and the
//! guarantee that no in-flight request survives a microreboot crash.

use simcore::rng::SimRng;
use simcore::SimTime;
use statestore::FastS;
use urb_core::server::{make_request, ProcState, RebootLevel, ServerFault};
use urb_core::testkit::{ops, ToyApp};
use urb_core::{share_db, AppServer, ServerConfig, SessionBackend, SubmitOutcome};

fn server() -> AppServer<ToyApp> {
    let db = share_db(ToyApp::seeded_db(100));
    AppServer::new(
        ToyApp::new(),
        ServerConfig::default(),
        db,
        SessionBackend::FastS(FastS::new()),
    )
}

/// The recursive recovery ladder is exactly µRB → app restart → process
/// restart → OS reboot, with no cycles, skips or repeats.
#[test]
fn escalation_ladder_matches_paper() {
    let mut chain = vec![RebootLevel::Component];
    while let Some(next) = chain.last().unwrap().escalate() {
        chain.push(next);
    }
    assert_eq!(
        chain,
        [
            RebootLevel::Component,
            RebootLevel::Application,
            RebootLevel::Process,
            RebootLevel::OperatingSystem,
        ],
        "escalation visits every level once, finest to coarsest"
    );
}

/// `supersedes` is the strict order induced by the escalation chain: a
/// coarser level subsumes every strictly finer one and nothing else.
#[test]
fn supersedes_is_strictly_coarser() {
    let levels = [
        RebootLevel::Component,
        RebootLevel::Application,
        RebootLevel::Process,
        RebootLevel::OperatingSystem,
    ];
    for (i, a) in levels.iter().enumerate() {
        for (j, b) in levels.iter().enumerate() {
            assert_eq!(
                a.supersedes(*b),
                i > j,
                "{a:?}.supersedes({b:?}) must mirror ladder depth"
            );
        }
    }
}

/// Beginning a coarser recovery cancels any active finer one: the
/// cancelled microreboot's scheduled completion becomes a no-op instead
/// of resurrecting component state mid-JVM-restart.
#[test]
fn coarse_recovery_cancels_active_microreboot() {
    let mut srv = server();
    let t = SimTime::from_secs(1);
    let ticket = srv.begin_microreboot(&["Store"], t, None).unwrap();
    srv.microreboot_crash(ticket.id, t);
    assert_eq!(srv.active_microreboots().len(), 1);

    let (ready, _) = srv.begin_process_restart(t);
    assert_eq!(
        srv.active_microreboots().len(),
        0,
        "process restart supersedes the in-flight microreboot"
    );

    // The stale completion fires after the cancel: it must not touch
    // anything (in particular it must not flip components to Active
    // while the JVM is still down).
    let revived = srv.microreboot_complete(ticket.id, ticket.done_at);
    assert!(revived.is_empty(), "cancelled reboot completes nothing");
    assert!(matches!(srv.state(), ProcState::JvmRestarting { .. }));

    srv.process_restart_complete(ready);
    assert!(srv.is_up());
}

/// Across random interleavings of completed / in-flight / queued
/// requests, `microreboot_crash` of the Web tier (which every ToyApp
/// request touches) kills exactly the in-flight set: nothing that was
/// running or parked survives, and the queue is untouched.
#[test]
fn no_inflight_request_survives_web_microreboot_crash() {
    for seed in 0..12u64 {
        let mut rng = SimRng::seed_from(0xdead_0000 + seed);
        let mut srv = server();
        let t = SimTime::from_secs(1);

        // Half the seeds park some requests via a deadlock in Store.
        if seed % 2 == 0 {
            srv.inject(ServerFault::Deadlock { component: "Store" }, t);
        }

        let mut admitted = Vec::new();
        for id in 0..30u64 {
            let op = [ops::GET, ops::PUT, ops::CART_ADD][rng.uniform_usize(3)];
            let req = make_request(id, op, None, op == ops::GET, 1 + id as i64 % 50, t);
            match srv.submit(req, t) {
                SubmitOutcome::Admitted => admitted.push(id),
                SubmitOutcome::Rejected(_) => {}
            }
        }
        let started = srv.pump(t);

        // Complete a random subset of what started running.
        let mut completed = Vec::new();
        for s in &started {
            if rng.chance(0.5) {
                srv.complete(s.req, s.cpu_done_at)
                    .expect("request completes");
                completed.push(s.req);
            }
        }

        let queued_before = srv.queued();
        let in_flight = admitted.len() - completed.len() - queued_before;

        // Crash Web's recovery group. Running requests all touched Web,
        // so they die; requests parked in Store's group are *not* cured
        // by a Web microreboot (a deadlocked Store thread needs a Store
        // reboot) and must stay accounted for as hung.
        let ticket = srv.begin_microreboot(&["Web"], t, None).unwrap();
        let mut killed = srv.microreboot_crash(ticket.id, t);
        assert_eq!(
            killed.len() + srv.hung(),
            in_flight,
            "seed {seed}: the Web crash kills every running request and \
             leaves only Store-parked ones"
        );
        assert_eq!(
            srv.queued(),
            queued_before,
            "seed {seed}: queued requests never entered a component, so \
             the crash leaves them alone"
        );

        // Now crash Store's group (disjoint, so it can run concurrently):
        // between the two crashes no in-flight request may survive.
        if srv.hung() > 0 {
            let t2 = srv.begin_microreboot(&["Store"], t, None).unwrap();
            killed.extend(srv.microreboot_crash(t2.id, t));
            srv.microreboot_complete(t2.id, t2.done_at);
        }
        assert_eq!(
            killed.len(),
            in_flight,
            "seed {seed}: every running or parked request is killed, \
             no more, no fewer"
        );
        assert_eq!(srv.hung(), 0, "seed {seed}: no parked request survives");
        for r in &killed {
            assert!(
                !completed.contains(&r.req),
                "seed {seed}: a completed request cannot be killed again"
            );
            // The kill already delivered the response; a later complete
            // for the same id must find nothing.
            assert!(
                srv.complete(r.req, ticket.done_at).is_none(),
                "seed {seed}: killed request {:?} still in the pipeline",
                r.req
            );
        }
        srv.microreboot_complete(ticket.id, ticket.done_at);
        assert!(srv.is_up());
    }
}

/// Regression for the conductor's no-double-kill contract: a microreboot
/// that overlaps an in-flight one — even partially — deterministically
/// rejects the *whole* action with `AlreadyRebooting`. Rebooting only the
/// non-overlapping remainder would split a recovery group (members reboot
/// together or not at all), and re-crashing an already-crashed container
/// would kill its requests mid-reinit. The conductor coalesces overlapping
/// actions before they reach this API; a caller that sees the rejection
/// bypassed it and must retry after the in-flight reboot completes.
#[test]
fn partial_overlap_with_in_flight_microreboot_rejects_whole_action() {
    let mut srv = server();
    let t = SimTime::from_secs(1);
    // Store expands to its recovery group {Store, Ledger}.
    let ticket = srv.begin_microreboot(&["Store"], t, None).unwrap();
    // Front is free, but Ledger is mid-reboot: the whole action must be
    // rejected, not trimmed down to a Front-only reboot.
    let err = srv
        .begin_microreboot(&["Front", "Ledger"], t, None)
        .unwrap_err();
    assert_eq!(err, urb_core::RebootError::AlreadyRebooting);
    // The rejection did not disturb the in-flight reboot...
    srv.microreboot_crash(ticket.id, t);
    let members = srv.microreboot_complete(ticket.id, ticket.done_at);
    assert_eq!(members, vec!["Store", "Ledger"]);
    // ...and Front itself was never touched: it is immediately rebootable.
    let t2 = ticket.done_at;
    let front = srv.begin_microreboot(&["Front"], t2, None).unwrap();
    srv.microreboot_crash(front.id, t2);
    assert_eq!(
        srv.microreboot_complete(front.id, front.done_at),
        vec!["Front"]
    );
}

/// An overlapping action arriving *after* the crash phase must also
/// reject rather than re-crash the container mid-reinit.
#[test]
fn overlap_after_crash_phase_cannot_double_kill() {
    let mut srv = server();
    let t = SimTime::from_secs(1);
    let ticket = srv.begin_microreboot(&["Store"], t, None).unwrap();
    srv.microreboot_crash(ticket.id, t);
    let err = srv.begin_microreboot(&["Ledger"], t, None).unwrap_err();
    assert_eq!(err, urb_core::RebootError::AlreadyRebooting);
    // No new ticket exists and the crash is idempotent per ticket, so no
    // further kills can happen before reinit completes.
    assert!(srv.microreboot_crash(ticket.id, t).is_empty());
    assert_eq!(
        srv.microreboot_complete(ticket.id, ticket.done_at),
        vec!["Store", "Ledger"]
    );
}

/// Property: disjoint same-level reboots never cancel each other. Across
/// randomized begin and completion orders, every reboot of a disjoint
/// unit completes with exactly its own members.
#[test]
fn disjoint_microreboots_never_cancel_each_other() {
    // ToyApp's disjoint component units (Store's group covers Ledger).
    const UNITS: [(&str, &[&str]); 3] = [
        ("Web", &["Web"]),
        ("Front", &["Front"]),
        ("Store", &["Store", "Ledger"]),
    ];
    let mut rng = SimRng::seed_from(0x05ee_dd15);
    for round in 0..50 {
        let mut srv = server();
        let t = SimTime::from_secs(1);
        let mut order: Vec<usize> = (0..UNITS.len()).collect();
        shuffle(&mut order, &mut rng);
        let mut tickets = Vec::new();
        for &u in &order {
            let (target, expected) = UNITS[u];
            let ticket = srv
                .begin_microreboot(&[target], t, None)
                .expect("disjoint reboots must all be admitted");
            tickets.push((ticket, expected));
        }
        for (ticket, _) in &tickets {
            srv.microreboot_crash(ticket.id, t);
        }
        shuffle(&mut tickets, &mut rng);
        for (ticket, expected) in tickets {
            let members = srv.microreboot_complete(ticket.id, ticket.done_at);
            assert_eq!(
                members, expected,
                "round {round}: a disjoint reboot was cancelled or reshaped"
            );
        }
        assert!(srv.is_up());
    }
}

fn shuffle<T>(v: &mut [T], rng: &mut SimRng) {
    for i in (1..v.len()).rev() {
        let j = rng.uniform_usize(i + 1);
        v.swap(i, j);
    }
}
