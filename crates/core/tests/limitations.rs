//! Section 7 — the limitations of recovery by microreboot, demonstrated.
//!
//! The paper's "interaction with external resources" example: an EJB can
//! circumvent the application server, open its own database connection,
//! take a row lock, and share the connection with another component. A
//! microreboot of the first EJB does not tear the connection down (the
//! server never knew about it), so the lock leaks until the DB session
//! times out — whereas a JVM restart kills the process's sockets and the
//! database releases the lock immediately.

use simcore::SimTime;
use statestore::{Database, Value};
use urb_core::testkit::ToyApp;
use urb_core::{share_db, AppServer, ServerConfig, SessionBackend};

fn server_and_db() -> (AppServer<ToyApp>, urb_core::SharedDb) {
    let db = share_db(ToyApp::seeded_db(10));
    let srv = AppServer::new(
        ToyApp::new(),
        ServerConfig::default(),
        db.clone(),
        SessionBackend::FastS(statestore::FastS::new()),
    );
    (srv, db)
}

/// Models the rogue EJB "X" of Section 7: it opens a direct connection the
/// server knows nothing about and takes a row lock.
fn rogue_lock(db: &urb_core::SharedDb) -> (statestore::db::ConnId, statestore::TxnId) {
    let mut db = db.borrow_mut();
    let conn = db.open_conn();
    let txn = db.begin(conn).expect("fresh connection");
    db.update(txn, "items", 1, &[(1, Value::Int(999))])
        .expect("lock acquired");
    (conn, txn)
}

fn lock_is_held(db: &mut Database) -> bool {
    let probe_conn = db.open_conn();
    let probe = db.begin(probe_conn).expect("fresh connection");
    let blocked = db.update(probe, "items", 1, &[(1, Value::Int(5))]).is_err();
    let _ = db.rollback(probe);
    let _ = db.close_conn(probe_conn);
    blocked
}

#[test]
fn microreboot_leaks_external_db_locks() {
    let (mut srv, db) = server_and_db();
    let t = SimTime::from_secs(1);
    let (_conn, _txn) = rogue_lock(&db);
    assert!(lock_is_held(&mut db.borrow_mut()), "rogue lock in place");

    // Microreboot the rogue component: the server kills the threads and
    // aborts the transactions *it* manages — but it never knew about the
    // direct connection, so the lock survives.
    let ticket = srv.begin_microreboot(&["Store"], t, None).unwrap();
    srv.microreboot_crash(ticket.id, t);
    srv.microreboot_complete(ticket.id, ticket.done_at);
    assert!(
        lock_is_held(&mut db.borrow_mut()),
        "µRB cannot release a resource acquired behind the platform's back"
    );
}

#[test]
fn process_restart_releases_external_db_locks_via_tcp_teardown() {
    let (mut srv, db) = server_and_db();
    let t = SimTime::from_secs(1);
    let (_conn, _txn) = rogue_lock(&db);
    assert!(lock_is_held(&mut db.borrow_mut()));

    // A JVM restart kills the process: the OS tears down every TCP
    // connection, the database notices, and the rogue session's locks
    // release. (The simulation models this as the database severing all
    // connections when the hosting process dies.)
    let (ready, _) = srv.begin_process_restart(t);
    {
        // The OS-level connection teardown: every connection of the dead
        // process closes. The server's own pooled connection is closed by
        // begin_process_restart; the rogue connection belongs to the same
        // process, so the experiment closes it the way the OS would.
        let mut db = db.borrow_mut();
        let all: Vec<_> = (0..64)
            .map(statestore::db::ConnId::from_raw)
            .filter(|c| db.conn_open(*c))
            .collect();
        for c in all {
            let _ = db.close_conn(c);
        }
    }
    srv.process_restart_complete(ready);
    assert!(
        !lock_is_held(&mut db.borrow_mut()),
        "TCP teardown released the rogue lock"
    );
}

/// "The more state gets segregated out of the application, the less
/// effective a reboot becomes at scrubbing this data": a full JVM restart
/// does not scrub SSM state — by design.
#[test]
fn restarts_do_not_scrub_externalized_state() {
    use statestore::session::{SessionId, SessionObject, SessionStore};
    let mut ssm = statestore::Ssm::new(3);
    let mut obj = SessionObject::new();
    obj.set("user_id", 7i64);
    obj.mark_tainted(); // corrupted-but-plausible data
    ssm.write(SessionId(1), obj).unwrap();
    ssm.on_process_restart();
    assert_eq!(
        ssm.tainted_sessions(),
        1,
        "externalized state survives every reboot; only the store itself \
         (or a human) can repair it"
    );
}
