//! End-to-end behaviour of the microreboot-enabled server on the toy
//! application: request lifecycle, microreboot semantics, sentinels and
//! retries, coarser reboots, hangs and TTLs, heap and rejuvenation.

use simcore::{SimDuration, SimTime};
use statestore::session::CorruptKind;
use statestore::{FastS, Ssm, Value};
use urb_core::server::{make_request, ProcState, ServerFault};
use urb_core::testkit::{ops, ToyApp};
use urb_core::{
    share_db, share_ssm, AppServer, RejuvenationAction, RejuvenationService, ServerConfig,
    SessionBackend, Started, Status, SubmitOutcome,
};

fn server(retry: bool) -> AppServer<ToyApp> {
    let db = share_db(ToyApp::seeded_db(100));
    AppServer::new(
        ToyApp::new(),
        ServerConfig {
            retry_enabled: retry,
            ..ServerConfig::default()
        },
        db,
        SessionBackend::FastS(FastS::new()),
    )
}

/// Runs one request synchronously: submit, pump, complete.
fn run_one(
    srv: &mut AppServer<ToyApp>,
    id: u64,
    op: urb_core::OpCode,
    session: Option<statestore::SessionId>,
    arg: i64,
    now: SimTime,
) -> urb_core::Response {
    let req = make_request(id, op, session, op == ops::GET, arg, now);
    match srv.submit(req, now) {
        SubmitOutcome::Rejected(r) => r,
        SubmitOutcome::Admitted => {
            let started = srv.pump(now);
            assert_eq!(started.len(), 1, "one request should start");
            let Started { req, cpu_done_at } = started[0];
            srv.complete(req, cpu_done_at).expect("request completes")
        }
    }
}

#[test]
fn get_and_put_roundtrip() {
    let mut srv = server(false);
    let t = SimTime::from_secs(1);
    let r = run_one(&mut srv, 1, ops::GET, None, 5, t);
    assert_eq!(r.status, Status::Ok);
    assert!(!r.simple_detector_flags());

    let r = run_one(&mut srv, 2, ops::PUT, None, 5, t);
    assert_eq!(r.status, Status::Ok);
    let db = srv.db();
    let row = db.borrow().read_committed("items", 5).unwrap().unwrap();
    assert_eq!(row[1], Value::Int(1), "PUT committed");
}

#[test]
fn request_costs_are_charged() {
    let mut srv = server(false);
    let now = SimTime::from_secs(1);
    let req = make_request(1, ops::GET, None, true, 5, now);
    srv.submit(req, now);
    let started = srv.pump(now);
    let cpu = started[0].cpu_done_at - now;
    // 8 ms base + call overheads + one DB read.
    assert!(cpu >= SimDuration::from_millis(8));
    assert!(cpu < SimDuration::from_millis(20));
}

#[test]
fn login_session_and_cart() {
    let mut srv = server(false);
    let t = SimTime::from_secs(1);
    let r = run_one(&mut srv, 1, ops::LOGIN, None, 42, t);
    assert_eq!(r.status, Status::Ok);
    let sid = r.set_cookie.expect("login sets a cookie");

    let r = run_one(&mut srv, 2, ops::CART_ADD, Some(sid), 7, t);
    assert_eq!(r.status, Status::Ok);
    assert!(!r.markers.login_prompt);

    // Without a cookie the cart prompts for login.
    let r = run_one(&mut srv, 3, ops::CART_ADD, None, 7, t);
    assert!(r.markers.login_prompt);

    let r = run_one(&mut srv, 4, ops::LOGOUT, Some(sid), 0, t);
    assert!(r.clear_cookie);
    assert_eq!(srv.session().live_sessions(), 0);
}

#[test]
fn microreboot_cures_jndi_corruption() {
    let mut srv = server(false);
    let t = SimTime::from_secs(1);
    srv.inject(
        ServerFault::CorruptJndi {
            component: "Store",
            kind: CorruptKind::SetNull,
        },
        t,
    );
    let r = run_one(&mut srv, 1, ops::GET, None, 5, t);
    assert_eq!(r.status, Status::ServerError(500));
    assert!(r.markers.exception_text);
    assert_eq!(r.failed_component, Some("Store"));

    // Microreboot Store: its recovery group includes Ledger.
    let ticket = srv.begin_microreboot(&["Store"], t, None).unwrap();
    let killed = srv.microreboot_crash(ticket.id, ticket.crash_at);
    assert!(killed.is_empty(), "no requests in flight");
    let names = srv.microreboot_complete(ticket.id, ticket.done_at);
    assert_eq!(names, vec!["Store", "Ledger"], "whole group rebooted");

    let r = run_one(&mut srv, 2, ops::GET, None, 5, ticket.done_at);
    assert_eq!(r.status, Status::Ok, "rebind cured the lookup");
}

#[test]
fn microreboot_duration_matches_calibration() {
    let mut srv = server(false);
    let t = SimTime::from_secs(1);
    let ticket = srv.begin_microreboot(&["Front"], t, None).unwrap();
    let dur = ticket.done_at - t;
    // Front: 10 ms crash + 450±35 ms reinit.
    assert!(dur >= SimDuration::from_millis(425), "got {dur}");
    assert!(dur <= SimDuration::from_millis(495), "got {dur}");

    // Group reboot costs roughly the slowest member plus increments, far
    // less than the sum.
    let ticket2 = srv.begin_microreboot(&["Store"], t, None).unwrap();
    let dur2 = ticket2.done_at - t;
    assert!(dur2 < SimDuration::from_millis(750), "got {dur2}");
}

#[test]
fn sentinel_gives_retry_for_idempotent_when_enabled() {
    let mut srv = server(true);
    let t = SimTime::from_secs(1);
    let ticket = srv.begin_microreboot(&["Store"], t, None).unwrap();
    srv.microreboot_crash(ticket.id, t);

    // Idempotent GET → Retry-After.
    let r = run_one(&mut srv, 1, ops::GET, None, 5, t);
    assert_eq!(r.status, Status::RetryAfter(urb_core::calib::RETRY_AFTER));
    assert!(!r.simple_detector_flags(), "retry is not a failure");

    // Non-idempotent PUT → 503 failure.
    let r = run_one(&mut srv, 2, ops::PUT, None, 5, t);
    assert_eq!(r.status, Status::ServerError(503));
}

#[test]
fn sentinel_fails_everything_when_retry_disabled() {
    let mut srv = server(false);
    let t = SimTime::from_secs(1);
    let ticket = srv.begin_microreboot(&["Store"], t, None).unwrap();
    srv.microreboot_crash(ticket.id, t);
    let r = run_one(&mut srv, 1, ops::GET, None, 5, t);
    assert_eq!(r.status, Status::ServerError(503));
}

#[test]
fn microreboot_kills_overlapping_inflight_and_rolls_back() {
    let mut srv = server(false);
    let t = SimTime::from_secs(1);
    // Start a PUT but do not complete it.
    let req = make_request(1, ops::PUT, None, false, 5, t);
    srv.submit(req, t);
    let started = srv.pump(t);
    assert_eq!(started.len(), 1);

    let ticket = srv.begin_microreboot(&["Store"], t, None).unwrap();
    let killed = srv.microreboot_crash(ticket.id, t);
    assert_eq!(killed.len(), 1, "in-flight PUT killed");
    assert_eq!(killed[0].status, Status::ServerError(500));

    // The kill aborted the transaction: no update is visible.
    let db = srv.db();
    let row = db.borrow().read_committed("items", 5).unwrap().unwrap();
    assert_eq!(row[1], Value::Int(0), "write rolled back");

    // Completing the killed request later returns nothing.
    assert!(srv
        .complete(started[0].req, started[0].cpu_done_at)
        .is_none());
}

#[test]
fn drain_delay_lets_inflight_finish() {
    let mut srv = server(true);
    let t = SimTime::from_secs(1);
    let req = make_request(1, ops::GET, None, true, 5, t);
    srv.submit(req, t);
    let started = srv.pump(t);
    let ticket = srv
        .begin_microreboot(&["Store"], t, Some(urb_core::calib::DRAIN_DELAY))
        .unwrap();
    assert_eq!(ticket.crash_at, t + urb_core::calib::DRAIN_DELAY);

    // The GET completes (~10 ms) before the 200 ms drain ends.
    let r = srv
        .complete(started[0].req, started[0].cpu_done_at)
        .expect("completes during drain");
    assert_eq!(r.status, Status::Ok);

    let killed = srv.microreboot_crash(ticket.id, ticket.crash_at);
    assert!(killed.is_empty(), "nothing left to kill after the drain");
}

#[test]
fn deadlock_hangs_until_microreboot() {
    let mut srv = server(false);
    let t = SimTime::from_secs(1);
    srv.inject(ServerFault::Deadlock { component: "Store" }, t);
    let req = make_request(1, ops::GET, None, true, 5, t);
    srv.submit(req, t);
    let started = srv.pump(t);
    assert!(
        started.is_empty(),
        "hung request never schedules completion"
    );
    assert_eq!(srv.hung(), 1);

    let ticket = srv.begin_microreboot(&["Store"], t, None).unwrap();
    let killed = srv.microreboot_crash(ticket.id, t);
    assert_eq!(killed.len(), 1, "hung thread killed by microreboot");
    srv.microreboot_complete(ticket.id, ticket.done_at);
    assert_eq!(srv.hung(), 0);

    // After the microreboot the deadlock fault is gone.
    let r = run_one(&mut srv, 2, ops::GET, None, 5, ticket.done_at);
    assert_eq!(r.status, Status::Ok);
}

#[test]
fn hung_request_expires_by_ttl() {
    let mut srv = server(false);
    let t = SimTime::from_secs(1);
    srv.inject(ServerFault::Deadlock { component: "Store" }, t);
    let req = make_request(1, ops::GET, None, true, 5, t);
    srv.submit(req, t);
    srv.pump(t);
    assert_eq!(srv.hung(), 1);

    let later = t + urb_core::calib::REQUEST_TTL;
    let killed = srv.maintenance(later);
    assert_eq!(killed.len(), 1);
    assert_eq!(killed[0].status, Status::TimedOut);
    assert_eq!(srv.hung(), 0);
    assert_eq!(srv.stats().ttl_kills, 1);
}

#[test]
fn transient_exception_fails_n_calls_then_clears() {
    let mut srv = server(false);
    let t = SimTime::from_secs(1);
    srv.inject(
        ServerFault::TransientExceptions {
            component: "Front",
            calls: 2,
        },
        t,
    );
    assert_eq!(
        run_one(&mut srv, 1, ops::GET, None, 5, t).status,
        Status::ServerError(500)
    );
    assert_eq!(
        run_one(&mut srv, 2, ops::GET, None, 5, t).status,
        Status::ServerError(500)
    );
    assert_eq!(
        run_one(&mut srv, 3, ops::GET, None, 5, t).status,
        Status::Ok
    );
}

#[test]
fn corrupt_bean_attrs_null_naturally_expunged() {
    let mut srv = server(false);
    let t = SimTime::from_secs(1);
    srv.inject(
        ServerFault::CorruptBeanAttrs {
            component: "Front",
            kind: CorruptKind::SetNull,
        },
        t,
    );
    // Eight pooled instances fail one by one as they are hit, each being
    // discarded; afterwards service recovers with no reboot at all.
    let mut failures = 0;
    for i in 0..10 {
        let r = run_one(&mut srv, i, ops::GET, None, 5, t);
        if r.status.is_error() {
            failures += 1;
        }
    }
    assert!(failures > 0 && failures <= 8);
    let r = run_one(&mut srv, 99, ops::GET, None, 5, t);
    assert_eq!(r.status, Status::Ok, "bad instances all expunged");
}

#[test]
fn corrupt_bean_attrs_wrong_taints_silently() {
    let mut srv = server(false);
    let t = SimTime::from_secs(1);
    srv.inject(
        ServerFault::CorruptBeanAttrs {
            component: "Front",
            kind: CorruptKind::SetWrong,
        },
        t,
    );
    let r = run_one(&mut srv, 1, ops::GET, None, 5, t);
    assert_eq!(r.status, Status::Ok);
    assert!(!r.simple_detector_flags(), "simple detector blind");
    assert!(r.comparison_detector_flags(), "oracle sees the taint");
}

#[test]
fn wrong_txn_map_makes_writes_unrollbackable() {
    let mut srv = server(false);
    let t = SimTime::from_secs(1);
    srv.inject(
        ServerFault::CorruptTxnMap {
            component: "Store",
            kind: CorruptKind::SetWrong,
        },
        t,
    );
    // Start a PUT; its write autocommits because the corrupted map says
    // NotSupported.
    let req = make_request(1, ops::PUT, None, false, 5, t);
    srv.submit(req, t);
    srv.pump(t);
    // Kill it mid-flight via microreboot: the write should PERSIST (this
    // is the ≈ "manual repair" row of Table 2).
    let ticket = srv.begin_microreboot(&["Store"], t, None).unwrap();
    srv.microreboot_crash(ticket.id, t);
    let db = srv.db();
    let row = db.borrow().read_committed("items", 5).unwrap().unwrap();
    assert_eq!(row[1], Value::Int(1), "autocommitted write survived abort");
}

#[test]
fn process_restart_loses_fasts_sessions() {
    let mut srv = server(false);
    let t = SimTime::from_secs(1);
    let r = run_one(&mut srv, 1, ops::LOGIN, None, 42, t);
    let sid = r.set_cookie.unwrap();

    let (ready, killed) = srv.begin_process_restart(t);
    assert!(killed.is_empty());
    assert!(ready - t >= SimDuration::from_secs(19), "~19 s restart");
    assert_eq!(srv.state(), ProcState::JvmRestarting { until: ready });

    // Down: requests fail at the connection level.
    let r = run_one(
        &mut srv,
        2,
        ops::GET,
        None,
        5,
        t + SimDuration::from_secs(5),
    );
    assert_eq!(r.status, Status::NetworkError);

    srv.process_restart_complete(ready);
    assert!(srv.is_up());
    assert_eq!(srv.app().restarts, 1);

    // Session cookie is stale: cart prompts for login again.
    let r = run_one(&mut srv, 3, ops::CART_ADD, Some(sid), 7, ready);
    assert!(r.markers.login_prompt, "FastS content lost in restart");
}

#[test]
fn ssm_sessions_survive_process_restart() {
    let db = share_db(ToyApp::seeded_db(10));
    let ssm = share_ssm(Ssm::new(3));
    let mut srv = AppServer::new(
        ToyApp::new(),
        ServerConfig::default(),
        db,
        SessionBackend::Ssm(ssm),
    );
    let t = SimTime::from_secs(1);
    let r = run_one(&mut srv, 1, ops::LOGIN, None, 42, t);
    let sid = r.set_cookie.unwrap();
    let (ready, _) = srv.begin_process_restart(t);
    srv.process_restart_complete(ready);
    let r = run_one(&mut srv, 2, ops::CART_ADD, Some(sid), 7, ready);
    assert!(!r.markers.login_prompt, "SSM session survived the restart");
    assert_eq!(r.status, Status::Ok);
}

#[test]
fn app_restart_is_cheaper_than_process_restart_and_keeps_fasts() {
    let mut srv = server(false);
    let t = SimTime::from_secs(1);
    let r = run_one(&mut srv, 1, ops::LOGIN, None, 42, t);
    let sid = r.set_cookie.unwrap();

    let (ready, _) = srv.begin_app_restart(t).unwrap();
    let dur = ready - t;
    assert!(dur > SimDuration::from_secs(7) && dur < SimDuration::from_secs(9));

    // While the app restarts, JBoss answers 503.
    let r = run_one(
        &mut srv,
        2,
        ops::GET,
        None,
        5,
        t + SimDuration::from_secs(1),
    );
    assert_eq!(r.status, Status::ServerError(503));

    srv.app_restart_complete(ready);
    // FastS lives in the server, outside the application: it survived.
    let r = run_one(&mut srv, 3, ops::CART_ADD, Some(sid), 7, ready);
    assert!(!r.markers.login_prompt);
}

#[test]
fn session_revalidation_after_war_microreboot() {
    let mut srv = server(false);
    let t = SimTime::from_secs(1);
    let sid1 = run_one(&mut srv, 1, ops::LOGIN, None, 42, t)
        .set_cookie
        .unwrap();
    let sid2 = run_one(&mut srv, 2, ops::LOGIN, None, 43, t)
        .set_cookie
        .unwrap();
    // Corrupt one session with null, one with wrong.
    {
        let fasts = srv.session_mut().fasts_mut().unwrap();
        fasts.corrupt(sid1, CorruptKind::SetNull);
        fasts.corrupt(sid2, CorruptKind::SetWrong);
    }
    let ticket = srv.begin_microreboot(&["Web"], t, None).unwrap();
    srv.microreboot_crash(ticket.id, t);
    srv.microreboot_complete(ticket.id, ticket.done_at);

    // The nulled session failed validation and was evicted; wrong passed.
    let r = run_one(&mut srv, 3, ops::CART_ADD, Some(sid1), 7, ticket.done_at);
    assert!(r.markers.login_prompt, "nulled session evicted");
    let r = run_one(&mut srv, 4, ops::CART_ADD, Some(sid2), 7, ticket.done_at);
    assert_eq!(r.status, Status::Ok);
    assert!(r.tainted, "wrong session survives, silently wrong");
}

#[test]
fn bit_flip_registers_crashes_the_process() {
    let mut srv = server(false);
    let t = SimTime::from_secs(1);
    srv.inject(ServerFault::BitFlipRegisters, t);
    assert_eq!(srv.state(), ProcState::Crashed);
    let r = run_one(&mut srv, 1, ops::GET, None, 5, t);
    assert_eq!(r.status, Status::NetworkError);
    let (ready, _) = srv.begin_process_restart(t);
    srv.process_restart_complete(ready);
    assert!(srv.is_up());
}

#[test]
fn memory_leak_and_rejuvenation() {
    let mut srv = server(false);
    let t0 = SimTime::from_secs(1);
    let free0 = srv.available_memory();
    srv.inject(
        ServerFault::AppLeak {
            component: "Front",
            bytes_per_call: 8 << 20,
            persistent: false,
        },
        t0,
    );
    for i in 0..20 {
        run_one(&mut srv, i, ops::GET, None, 5, t0);
    }
    let free1 = srv.available_memory();
    assert!(free0 - free1 >= 150 << 20, "leak visible in the heap gauge");

    // A rejuvenation service with a high alarm reboots Front and learns.
    let comps = vec!["Front", "Store", "Ledger", "Web"];
    let mut rejuv = RejuvenationService::new(comps, free0, free0 + (1 << 20));
    let action = rejuv.check(&mut srv, t0);
    let (component, ticket) = match action {
        RejuvenationAction::Microreboot { component, ticket } => (component, ticket),
        other => panic!("expected a microreboot, got {other:?}"),
    };
    assert_eq!(component, "Front", "first in deployment order");
    srv.microreboot_crash(ticket.id, ticket.crash_at);
    srv.microreboot_complete(ticket.id, ticket.done_at);
    rejuv.record_completion(srv.available_memory());
    assert!(
        *rejuv.released_table().get("Front").unwrap() >= 150 << 20,
        "service learned Front released the memory"
    );
    assert!(srv.available_memory() > free1, "memory reclaimed");
}

#[test]
fn oom_without_rejuvenation_kills_the_jvm() {
    let mut srv = server(false);
    let t = SimTime::from_secs(1);
    srv.inject(
        ServerFault::IntraJvmLeak {
            bytes_per_sec: 200 << 20,
        },
        t,
    );
    // Ten seconds of 200 MB/s exhausts the 1 GB heap.
    let mut killed = Vec::new();
    for s in 1..=10 {
        killed.extend(srv.maintenance(t + SimDuration::from_secs(s)));
    }
    assert_eq!(srv.state(), ProcState::DownOom);
    // JVM restart reclaims the intra-JVM leak.
    let (ready, _) = srv.begin_process_restart(t + SimDuration::from_secs(11));
    srv.process_restart_complete(ready);
    assert!(srv.available_memory() > 800 << 20);
}

#[test]
fn thread_pool_exhaustion_returns_503() {
    let db = share_db(ToyApp::seeded_db(10));
    let mut srv = AppServer::new(
        ToyApp::new(),
        ServerConfig {
            cpus: 1,
            threads: 2,
            ..ServerConfig::default()
        },
        db,
        SessionBackend::FastS(FastS::new()),
    );
    let t = SimTime::from_secs(1);
    srv.inject(ServerFault::Deadlock { component: "Store" }, t);
    for i in 0..2 {
        let req = make_request(i, ops::GET, None, true, 5, t);
        srv.submit(req, t);
        srv.pump(t);
    }
    // Both threads are parked in the deadlock; the next request bounces.
    let r = run_one(&mut srv, 99, ops::GET, None, 5, t);
    assert_eq!(r.status, Status::ServerError(503));
}

#[test]
fn microreboot_rejected_while_down_and_double_targets_coalesce() {
    let mut srv = server(false);
    let t = SimTime::from_secs(1);
    let ticket = srv.begin_microreboot(&["Store"], t, None).unwrap();
    // Ledger is already covered by Store's recovery group.
    let err = srv.begin_microreboot(&["Ledger"], t, None).unwrap_err();
    assert_eq!(err, urb_core::RebootError::AlreadyRebooting);
    srv.microreboot_crash(ticket.id, t);
    srv.microreboot_complete(ticket.id, ticket.done_at);

    srv.begin_process_restart(ticket.done_at);
    let err = srv
        .begin_microreboot(&["Store"], ticket.done_at, None)
        .unwrap_err();
    assert_eq!(err, urb_core::RebootError::ProcessNotUp);
}

#[test]
fn stats_count_the_things_that_happened() {
    let mut srv = server(true);
    let t = SimTime::from_secs(1);
    run_one(&mut srv, 1, ops::GET, None, 5, t);
    let ticket = srv.begin_microreboot(&["Store"], t, None).unwrap();
    srv.microreboot_crash(ticket.id, t);
    run_one(&mut srv, 2, ops::GET, None, 5, t); // retry sent
    srv.microreboot_complete(ticket.id, ticket.done_at);
    let s = srv.stats();
    assert_eq!(s.submitted, 2);
    assert_eq!(s.microreboots, 1);
    assert_eq!(s.retries_sent, 1);
}
