//! Deterministic randomized fault-injection campaigns (urb-chaos).
//!
//! A campaign is a seeded sweep over the adversarial scenario space:
//! fault kind × target component × injection time × an optional second
//! fault landing mid-recovery × a flapping (re-injection) schedule ×
//! detector kind × recovery-manager concurrency. Every scenario is drawn
//! from a forked [`SimRng`] stream, so a campaign is a pure function of
//! `(seed, runs)` — re-running it must reproduce every run bit-for-bit,
//! which is what lets the harness assert digest equality as an invariant.
//!
//! The module only *describes* scenarios; executing them against a
//! `cluster::Sim` lives in the urb-chaos binary, keeping this crate free
//! of a dependency cycle with the cluster layer.

use simcore::rng::SimRng;
use statestore::session::CorruptKind;

use crate::{Fault, NetEdge};

/// Components the campaign aims faults at. A mix of read paths, write
/// paths, and the entity bean shared by both, mirroring the Table 2
/// targets.
pub const TARGETS: &[&str] = &[
    "MakeBid",
    "SearchItemsByCategory",
    "ViewItem",
    "BrowseCategories",
    "RegisterNewUser",
    "CommitBid",
    "Item",
];

/// Components the fail-slow (degraded) campaign aims at: the subset of
/// [`TARGETS`] on request paths hot enough for black-box latency
/// monitoring to see. A slowdown inside a bean that serves a handful of
/// requests per minute never earns a latency baseline or a judged
/// window at this load — the perf plane is *blind* to it by design (the
/// paper's detectors share the limit: you cannot observe what no
/// request exercises), so aiming the campaign there would only assert
/// that blindness, not exercise recovery.
pub const DEGRADED_TARGETS: &[&str] = &[
    "SearchItemsByCategory",
    "ViewItem",
    "BrowseCategories",
    "Item",
];

/// A second fault injected while the system is (likely) still recovering
/// from the first — the overlapping-failure case.
#[derive(Clone, Copy, Debug)]
pub struct SecondFault {
    /// The fault to inject.
    pub fault: Fault,
    /// Absolute injection time, seconds into the run. Drawn close behind
    /// the first fault so it lands inside the recovery episode.
    pub at_s: u64,
}

/// A flapping schedule: the primary fault is re-injected after each
/// recovery, so the same component keeps failing until the policy either
/// escalates past the microreboot level or damps the reboot storm.
#[derive(Clone, Copy, Debug)]
pub struct FlapSchedule {
    /// How many times the fault recurs after the initial injection.
    pub recurrences: u32,
    /// Gap between recurrences, seconds. Longer than a microreboot +
    /// settle window, so each recurrence lands on a "recovered" system.
    pub gap_s: u64,
}

/// A crash of the recovery manager's own host mid-run (ReHype-style):
/// the RM loses its volatile diagnosis state and drops reports and
/// acknowledgements until it reboots `outage_s` later.
#[derive(Clone, Copy, Debug)]
pub struct RmCrashSchedule {
    /// Absolute crash time, seconds into the run.
    pub at_s: u64,
    /// How long the RM stays down, seconds.
    pub outage_s: u64,
}

/// One deterministic campaign scenario.
#[derive(Clone, Copy, Debug)]
pub struct Scenario {
    /// Run index within the campaign.
    pub run: u64,
    /// Seed for the run's `cluster::Sim` (clients, service times, …).
    pub sim_seed: u64,
    /// The primary fault.
    pub fault: Fault,
    /// When the primary fault is injected, seconds into the run.
    pub inject_at_s: u64,
    /// Optional second fault landing mid-recovery.
    pub second: Option<SecondFault>,
    /// Optional flapping schedule for the primary fault.
    pub flap: Option<FlapSchedule>,
    /// Run with the comparison detector instead of the simple one.
    pub comparison_detector: bool,
    /// Run with a concurrency-4 recovery manager behind the conductor
    /// instead of the serial manager.
    pub parallel_rm: bool,
    /// Optional mid-run crash of the RM itself. `None` in the classic
    /// campaign (so its pinned digests never move); the policy tournament
    /// schedules it on a fraction of runs.
    pub rm_crash: Option<RmCrashSchedule>,
    /// Arm the budgeted client-side retry policy (exponential backoff
    /// with jitter) instead of no client retries. Only the netstate
    /// campaign sets this; the classic generators leave it off so their
    /// pinned digests never move.
    pub budgeted_retry: bool,
}

/// Campaign parameters.
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Master seed; the whole campaign is a pure function of it.
    pub seed: u64,
    /// Number of scenarios to generate.
    pub runs: u64,
}

/// Draws one fault from the catalogue. Every [`Fault`] variant has an arm
/// here — urb-lint rule E005 enforces that the campaign can reach the
/// entire fault model.
pub fn campaign_fault(rng: &mut SimRng) -> Fault {
    let component = *rng.pick(TARGETS).expect("TARGETS is non-empty");
    let kind = match rng.uniform_usize(3) {
        0 => CorruptKind::SetNull,
        1 => CorruptKind::SetInvalid,
        _ => CorruptKind::SetWrong,
    };
    match rng.uniform_usize(18) {
        0 => Fault::Deadlock { component },
        1 => Fault::InfiniteLoop { component },
        2 => Fault::AppMemoryLeak {
            component,
            // Aggressive per-call leak so heap pressure shows up within a
            // short campaign horizon.
            bytes_per_call: 4 << 20,
            persistent: rng.chance(0.25),
        },
        3 => Fault::TransientException {
            component,
            calls: u32::MAX,
        },
        4 => Fault::Intermittent {
            component,
            permille: 250 + 250 * rng.uniform_u64(3) as u32,
            heals_after_s: if rng.chance(0.5) {
                Some(20 + rng.uniform_u64(40))
            } else {
                None
            },
        },
        5 => Fault::SpuriousReports {
            reports: 8 + rng.uniform_u64(25) as u32,
        },
        6 => Fault::CorruptPrimaryKeys { kind },
        7 => Fault::CorruptJndi { component, kind },
        8 => Fault::CorruptTxnMap { component, kind },
        9 => Fault::CorruptBeanAttrs { component, kind },
        10 => Fault::CorruptFastS { kind },
        11 => Fault::CorruptSsm,
        12 => Fault::CorruptDb { kind },
        13 => Fault::MemLeakIntraJvm {
            bytes_per_sec: 40 << 20,
        },
        14 => Fault::MemLeakExtraJvm {
            bytes_per_sec: 40 << 20,
        },
        15 => Fault::BitFlipMemory,
        16 => Fault::BitFlipRegisters,
        _ => Fault::BadSyscalls,
    }
}

/// True if the fault lives in a component and a microreboot cures it —
/// the population that can meaningfully flap (recur after each recovery).
pub fn flappable(fault: &Fault) -> bool {
    matches!(
        fault,
        Fault::Deadlock { .. }
            | Fault::InfiniteLoop { .. }
            | Fault::TransientException { .. }
            | Fault::Intermittent { .. }
            | Fault::CorruptJndi { .. }
            | Fault::CorruptTxnMap { .. }
            | Fault::CorruptBeanAttrs { .. }
    )
}

/// True if the scenario's goodput is expected to return to (near)
/// steady-state once recovery converges. Faults whose damage can outlive
/// any reboot — database corruption, the wrong-value divergence rows the
/// paper marks ≈, bit flips, or a persistent code-bug leak — are excluded
/// from the availability invariant (but still run under all the
/// structural ones).
pub fn goodput_recovers(fault: &Fault) -> bool {
    !matches!(
        fault,
        Fault::CorruptDb { .. }
            | Fault::CorruptPrimaryKeys {
                kind: CorruptKind::SetWrong
            }
            | Fault::CorruptTxnMap {
                kind: CorruptKind::SetWrong,
                ..
            }
            | Fault::CorruptBeanAttrs {
                kind: CorruptKind::SetWrong,
                ..
            }
            | Fault::CorruptFastS {
                kind: CorruptKind::SetWrong
            }
            | Fault::AppMemoryLeak {
                persistent: true,
                ..
            }
            | Fault::BitFlipMemory
            | Fault::BitFlipRegisters
    )
}

/// Generates the campaign's scenarios: a pure, deterministic function of
/// the config. Each run gets a forked rng stream, so inserting a new draw
/// into one scenario never shifts the scenarios after it.
pub fn scenarios(cfg: &CampaignConfig) -> Vec<Scenario> {
    let mut master = SimRng::seed_from(cfg.seed ^ 0xc4a0_5eed_0000_0000);
    (0..cfg.runs)
        .map(|run| {
            let mut rng = master.fork();
            let fault = campaign_fault(&mut rng);
            let inject_at_s = 8 + rng.uniform_u64(8);
            let second = if rng.chance(0.30) {
                Some(SecondFault {
                    fault: campaign_fault(&mut rng),
                    // Lands 2–10 s behind the first fault: inside the
                    // detection + reboot window of every recovery level.
                    at_s: inject_at_s + 2 + rng.uniform_u64(8),
                })
            } else {
                None
            };
            let flap = if flappable(&fault) && rng.chance(0.35) {
                Some(FlapSchedule {
                    recurrences: 1 + rng.uniform_u64(3) as u32,
                    gap_s: 35 + rng.uniform_u64(15),
                })
            } else {
                None
            };
            Scenario {
                run,
                sim_seed: cfg.seed ^ (run + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                fault,
                inject_at_s,
                second,
                flap,
                comparison_detector: rng.chance(0.5),
                parallel_rm: rng.chance(0.4),
                rm_crash: None,
                budgeted_retry: false,
            }
        })
        .collect()
}

/// Generates the policy-tournament scenarios: like [`scenarios`], but the
/// fault kind is forced round-robin over the full 18-kind catalogue so a
/// small per-policy matrix still covers every kind, the RM is always
/// serial (policies own their escalation, the conductor stays out of the
/// comparison), and a quarter of the runs crash the RM itself mid-run.
/// Equally deterministic: a pure function of the config.
pub fn tournament_scenarios(cfg: &CampaignConfig) -> Vec<Scenario> {
    let mut master = SimRng::seed_from(cfg.seed ^ 0x70ac_4a3e_0000_0000);
    (0..cfg.runs)
        .map(|run| {
            let mut rng = master.fork();
            // Rejection-sample until the drawn fault matches this run's
            // assigned kind — deterministic, and keeps every draw flowing
            // through the same campaign_fault distribution.
            let want = (run % 18) as usize;
            let fault = loop {
                let f = campaign_fault(&mut rng);
                if fault_kind_index(&f) == want {
                    break f;
                }
            };
            let inject_at_s = 8 + rng.uniform_u64(8);
            let second = if rng.chance(0.25) {
                Some(SecondFault {
                    fault: campaign_fault(&mut rng),
                    at_s: inject_at_s + 2 + rng.uniform_u64(8),
                })
            } else {
                None
            };
            let flap = if flappable(&fault) && rng.chance(0.5) {
                Some(FlapSchedule {
                    recurrences: 1 + rng.uniform_u64(3) as u32,
                    gap_s: 35 + rng.uniform_u64(15),
                })
            } else {
                None
            };
            let rm_crash = if rng.chance(0.25) {
                Some(RmCrashSchedule {
                    at_s: inject_at_s + 1 + rng.uniform_u64(20),
                    outage_s: 10 + rng.uniform_u64(30),
                })
            } else {
                None
            };
            Scenario {
                run,
                sim_seed: cfg.seed ^ (run + 1).wrapping_mul(0x517c_c1b7_2722_0a95),
                fault,
                inject_at_s,
                second,
                flap,
                comparison_detector: rng.chance(0.5),
                parallel_rm: false,
                rm_crash,
                budgeted_retry: false,
            }
        })
        .collect()
}

/// Maps a fault to its `campaign_fault` catalogue index (the arm that
/// produced it), used by the tournament's round-robin kind assignment.
fn fault_kind_index(fault: &Fault) -> usize {
    match fault {
        Fault::Deadlock { .. } => 0,
        Fault::InfiniteLoop { .. } => 1,
        Fault::AppMemoryLeak { .. } => 2,
        Fault::TransientException { .. } => 3,
        Fault::Intermittent { .. } => 4,
        Fault::SpuriousReports { .. } => 5,
        Fault::CorruptPrimaryKeys { .. } => 6,
        Fault::CorruptJndi { .. } => 7,
        Fault::CorruptTxnMap { .. } => 8,
        Fault::CorruptBeanAttrs { .. } => 9,
        Fault::CorruptFastS { .. } => 10,
        Fault::CorruptSsm => 11,
        Fault::CorruptDb { .. } => 12,
        Fault::MemLeakIntraJvm { .. } => 13,
        Fault::MemLeakExtraJvm { .. } => 14,
        Fault::BitFlipMemory => 15,
        Fault::BitFlipRegisters => 16,
        Fault::BadSyscalls => 17,
        // Outside the classic 18-kind draw: only `degraded_fault`
        // generates it, so the tournament round-robin (mod 18) and the
        // classic campaign digests never see this index.
        Fault::Degraded { .. } => 18,
        // 19–26: the state-plane and network tier, likewise outside the
        // classic draw — only `netstate_fault` generates them.
        Fault::BrickCrash { .. } => 19,
        Fault::BrickCorrupt { .. } => 20,
        Fault::LeaseStorm => 21,
        Fault::StoreSlow { .. } => 22,
        Fault::LinkPartition { .. } => 23,
        Fault::LinkLossy { .. } => 24,
        Fault::LinkDelay { .. } => 25,
        Fault::LinkDupe { .. } => 26,
    }
}

/// Draws one fail-slow fault for the degraded campaign. Lives beside
/// [`campaign_fault`] instead of inside its 18-way draw so the classic
/// campaign's pinned digests never move; urb-lint rule E005 accepts
/// `Fault` variants handled by either generator.
pub fn degraded_fault(rng: &mut SimRng) -> Fault {
    let component = *rng
        .pick(DEGRADED_TARGETS)
        .expect("DEGRADED_TARGETS is non-empty");
    Fault::Degraded {
        component,
        // 3x–6x service-time inflation: far past any sane anomaly
        // multiplier even after end-to-end overheads (network, queueing)
        // dilute the per-component slowdown, yet correct answers
        // throughout. A mere 2x on one op sits at the black-box
        // detector's ROC floor and would probe the detector, not the
        // recovery loop.
        factor_permille: 3000 + 1000 * rng.uniform_u64(4) as u32,
    }
}

/// Generates the degraded campaign matrix: every run injects a fail-slow
/// [`Fault::Degraded`], and a fraction re-inject it after recovery (the
/// warm-restart-residual scenario — each microreboot leaves the slowdown
/// behind, so the ladder must climb). A pure function of the config,
/// with forked per-run streams like [`scenarios`].
pub fn degraded_scenarios(cfg: &CampaignConfig) -> Vec<Scenario> {
    let mut master = SimRng::seed_from(cfg.seed ^ 0xd39d_4ded_0000_0000);
    (0..cfg.runs)
        .map(|run| {
            let mut rng = master.fork();
            let fault = degraded_fault(&mut rng);
            // Injection lands after the perf plane's default 30 s
            // baseline freeze: a fail-slow fault is only detectable
            // against a frozen pre-fault snapshot.
            let inject_at_s = 35 + rng.uniform_u64(10);
            let flap = if rng.chance(0.30) {
                Some(FlapSchedule {
                    recurrences: 1 + rng.uniform_u64(2) as u32,
                    gap_s: 35 + rng.uniform_u64(15),
                })
            } else {
                None
            };
            Scenario {
                run,
                sim_seed: cfg.seed ^ (run + 1).wrapping_mul(0xa076_1d64_78bd_642f),
                fault,
                inject_at_s,
                second: None,
                flap,
                comparison_detector: false,
                parallel_rm: false,
                rm_crash: None,
                budgeted_retry: false,
            }
        })
        .collect()
}

/// Draws one state-plane or network fault for the netstate campaign.
/// Lives beside [`campaign_fault`] instead of inside its 18-way draw so
/// the classic campaign's pinned digests never move; urb-lint rule E005
/// accepts `Fault` variants handled by any of the generators.
pub fn netstate_fault(rng: &mut SimRng) -> Fault {
    // The SSM replicates across 3 bricks; a single-brick fault must be
    // masked by the surviving replicas.
    let brick = rng.uniform_usize(3);
    let edge = if rng.chance(0.5) {
        NetEdge::LbNode
    } else {
        NetEdge::NodeStore
    };
    // Long enough for detectors and clients to feel it, short enough
    // that goodput can recover well inside the post-heal tail.
    let heals_after_s = 15 + rng.uniform_u64(20);
    match rng.uniform_usize(8) {
        0 => Fault::BrickCrash {
            brick,
            heals_after_s,
        },
        1 => Fault::BrickCorrupt { brick },
        2 => Fault::LeaseStorm,
        3 => Fault::StoreSlow {
            // 2x–5x access-time inflation.
            factor_permille: 2000 + 1000 * rng.uniform_u64(4) as u32,
            heals_after_s,
        },
        4 => Fault::LinkPartition {
            edge,
            heals_after_s,
        },
        5 => Fault::LinkLossy {
            edge,
            // 10%–40% loss.
            permille: 100 + 100 * rng.uniform_u64(4) as u32,
            heals_after_s,
        },
        6 => Fault::LinkDelay {
            edge,
            // 20–100 ms of added one-way latency.
            extra_ms: 20 + 20 * rng.uniform_u64(5),
            heals_after_s,
        },
        _ => Fault::LinkDupe {
            edge,
            // 5%–20% duplication.
            permille: 50 + 50 * rng.uniform_u64(4) as u32,
            heals_after_s,
        },
    }
}

/// Generates the netstate campaign matrix: every run injects one
/// state-plane or network fault, round-robin over the 8 kinds so even a
/// small matrix covers the whole tier, with half the runs arming the
/// budgeted client retry policy. A pure function of the config, with
/// forked per-run streams like [`scenarios`].
pub fn netstate_scenarios(cfg: &CampaignConfig) -> Vec<Scenario> {
    let mut master = SimRng::seed_from(cfg.seed ^ 0x4e75_7a7e_0000_0000);
    (0..cfg.runs)
        .map(|run| {
            let mut rng = master.fork();
            // Rejection-sample until the drawn fault matches this run's
            // assigned kind, like the tournament's round-robin.
            let want = 19 + (run % 8) as usize;
            let fault = loop {
                let f = netstate_fault(&mut rng);
                if fault_kind_index(&f) == want {
                    break f;
                }
            };
            let inject_at_s = 8 + rng.uniform_u64(8);
            Scenario {
                run,
                sim_seed: cfg.seed ^ (run + 1).wrapping_mul(0x2545_f491_4f6c_dd1d),
                fault,
                inject_at_s,
                second: None,
                flap: None,
                comparison_detector: rng.chance(0.5),
                parallel_rm: false,
                rm_crash: None,
                budgeted_retry: rng.chance(0.5),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic() {
        let cfg = CampaignConfig { seed: 7, runs: 64 };
        let a = scenarios(&cfg);
        let b = scenarios(&cfg);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn campaign_covers_the_adversarial_kinds() {
        // 200 runs at the acceptance seed must exercise the paper's
        // catalogue *and* the adversarial extensions.
        let cfg = CampaignConfig { seed: 7, runs: 200 };
        let all = scenarios(&cfg);
        let has = |pred: &dyn Fn(&Fault) -> bool| {
            all.iter()
                .any(|s| pred(&s.fault) || s.second.is_some_and(|sf| pred(&sf.fault)))
        };
        assert!(has(&|f| matches!(f, Fault::Intermittent { .. })));
        assert!(has(&|f| matches!(f, Fault::SpuriousReports { .. })));
        assert!(has(&|f| matches!(f, Fault::Deadlock { .. })));
        assert!(has(&|f| matches!(f, Fault::CorruptDb { .. })));
        assert!(has(&|f| matches!(f, Fault::MemLeakExtraJvm { .. })));
        assert!(has(&|f| matches!(f, Fault::BitFlipRegisters)));
        assert!(all.iter().any(|s| s.flap.is_some()), "flapping covered");
        assert!(
            all.iter().any(|s| s.second.is_some()),
            "fault-during-recovery covered"
        );
        assert!(
            all.iter().any(|s| s.comparison_detector) && all.iter().any(|s| !s.comparison_detector)
        );
        assert!(all.iter().any(|s| s.parallel_rm) && all.iter().any(|s| !s.parallel_rm));
    }

    #[test]
    fn tournament_round_robin_covers_every_fault_kind() {
        let cfg = CampaignConfig { seed: 7, runs: 18 };
        let all = tournament_scenarios(&cfg);
        let mut kinds: Vec<usize> = all.iter().map(|s| fault_kind_index(&s.fault)).collect();
        kinds.sort_unstable();
        assert_eq!(kinds, (0..18).collect::<Vec<_>>());
        assert!(
            all.iter().all(|s| !s.parallel_rm),
            "tournament RM is serial"
        );
        // Determinism: same config, same scenarios.
        let again = tournament_scenarios(&cfg);
        for (x, y) in all.iter().zip(&again) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn tournament_schedules_rm_crashes_on_a_fraction_of_runs() {
        let cfg = CampaignConfig { seed: 7, runs: 100 };
        let all = tournament_scenarios(&cfg);
        let crashes = all.iter().filter(|s| s.rm_crash.is_some()).count();
        assert!(crashes > 5 && crashes < 50, "got {crashes} rm crashes");
        for s in &all {
            if let Some(c) = s.rm_crash {
                assert!(c.outage_s >= 10);
                assert!(c.at_s > s.inject_at_s);
            }
        }
    }

    #[test]
    fn degraded_scenarios_are_deterministic_and_all_fail_slow() {
        let cfg = CampaignConfig { seed: 7, runs: 48 };
        let a = degraded_scenarios(&cfg);
        let b = degraded_scenarios(&cfg);
        assert_eq!(a.len(), 48);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        for s in &a {
            match s.fault {
                Fault::Degraded {
                    factor_permille, ..
                } => {
                    assert!((3000..=6000).contains(&factor_permille));
                }
                other => panic!("degraded campaign drew {other:?}"),
            }
            assert!(
                (35..45).contains(&s.inject_at_s),
                "injection must land after the 30 s baseline freeze"
            );
            assert!(s.second.is_none() && s.rm_crash.is_none() && !s.parallel_rm);
        }
        assert!(a.iter().any(|s| s.flap.is_some()), "residual flap covered");
        // Every target component is eventually drawn.
        let mut hit: Vec<&str> = a
            .iter()
            .map(|s| match s.fault {
                Fault::Degraded { component, .. } => component,
                _ => unreachable!(),
            })
            .collect();
        hit.sort_unstable();
        hit.dedup();
        assert_eq!(
            hit.len(),
            DEGRADED_TARGETS.len(),
            "all hot-path targets covered: {hit:?}"
        );
        assert!(
            hit.iter().all(|c| DEGRADED_TARGETS.contains(c)),
            "only hot-path targets drawn: {hit:?}"
        );
    }

    #[test]
    fn netstate_round_robin_covers_the_whole_tier() {
        let cfg = CampaignConfig { seed: 7, runs: 32 };
        let all = netstate_scenarios(&cfg);
        let mut kinds: Vec<usize> = all.iter().map(|s| fault_kind_index(&s.fault)).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds, (19..27).collect::<Vec<_>>());
        // Both client populations are represented.
        assert!(all.iter().any(|s| s.budgeted_retry) && all.iter().any(|s| !s.budgeted_retry));
        // Both faultable edges are represented.
        let edges: Vec<NetEdge> = all
            .iter()
            .filter_map(|s| match s.fault {
                Fault::LinkPartition { edge, .. }
                | Fault::LinkLossy { edge, .. }
                | Fault::LinkDelay { edge, .. }
                | Fault::LinkDupe { edge, .. } => Some(edge),
                _ => None,
            })
            .collect();
        assert!(edges.contains(&NetEdge::LbNode) && edges.contains(&NetEdge::NodeStore));
        // Structural knobs the netstate campaign never uses stay off.
        for s in &all {
            assert!(s.second.is_none() && s.flap.is_none() && s.rm_crash.is_none());
            assert!(!s.parallel_rm);
            assert!((8..16).contains(&s.inject_at_s));
        }
        // Determinism: same config, same scenarios.
        let again = netstate_scenarios(&cfg);
        for (x, y) in all.iter().zip(&again) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
    }

    #[test]
    fn classic_generators_never_arm_client_retries() {
        let cfg = CampaignConfig { seed: 7, runs: 50 };
        assert!(scenarios(&cfg).iter().all(|s| !s.budgeted_retry));
        assert!(tournament_scenarios(&cfg).iter().all(|s| !s.budgeted_retry));
        assert!(degraded_scenarios(&cfg).iter().all(|s| !s.budgeted_retry));
    }

    #[test]
    fn flapping_only_targets_microreboot_curable_faults() {
        let cfg = CampaignConfig {
            seed: 11,
            runs: 300,
        };
        for s in scenarios(&cfg) {
            if s.flap.is_some() {
                assert!(flappable(&s.fault), "{:?} cannot flap", s.fault);
            }
        }
    }
}
