//! The fault-injection catalogue of Section 5.1 / Table 2.
//!
//! The paper's industry contacts identified the failure modes that plague
//! production J2EE systems — deadlocked threads, leak-induced resource
//! exhaustion, corruption of volatile metadata, mishandled exceptions —
//! and the authors added hooks for injecting each, plus data corruption in
//! the session stores and the database, and low-level faults underneath
//! the JVM (FIG / FAUmachine). This crate enumerates that catalogue as
//! [`Fault`], drives injection against an eBid server, and records the
//! paper's observed worst-case recovery level per row so the Table 2
//! experiment can print paper-vs-measured.

#![forbid(unsafe_code)]

use ebid::EBid;
use simcore::{SimDuration, SimTime};
use statestore::session::CorruptKind;
use statestore::Value;
use urb_core::server::ServerFault;
use urb_core::{AppServer, Response};

pub mod campaign;

/// Every fault class Table 2 injects.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// Deadlock calls into a component.
    Deadlock {
        /// Target component.
        component: &'static str,
    },
    /// Spin calls into a component forever.
    InfiniteLoop {
        /// Target component.
        component: &'static str,
    },
    /// Leak application memory on each invocation.
    AppMemoryLeak {
        /// Target component.
        component: &'static str,
        /// Bytes per invocation.
        bytes_per_call: u64,
        /// Whether the leak resumes after reboots (a code bug, as in the
        /// rejuvenation experiments) or is a one-shot injection.
        persistent: bool,
    },
    /// Transient Java exceptions stressing the handling code.
    TransientException {
        /// Target component.
        component: &'static str,
        /// Number of failing calls.
        calls: u32,
    },
    /// Intermittent fault: calls fail with probability `permille`/1000
    /// until the fault self-heals (or a microreboot cures it). The
    /// adversarial case for a hint-driven recovery policy — the symptoms
    /// come and go.
    Intermittent {
        /// Target component.
        component: &'static str,
        /// Per-call failure probability, in permille.
        permille: u32,
        /// Self-heal delay in seconds (`None` = never heals on its own).
        heals_after_s: Option<u64>,
    },
    /// Detector false positives: fabricated failure reports against a
    /// perfectly healthy node (a buggy or adversarial monitor). There is
    /// no underlying fault to cure — the recovery policy must stay cheap
    /// and convergent anyway.
    SpuriousReports {
        /// How many reports to fabricate.
        reports: u32,
    },
    /// Corrupt the application's primary-key generation code.
    CorruptPrimaryKeys {
        /// Null / invalid / wrong.
        kind: CorruptKind,
    },
    /// Corrupt a component's JNDI entry.
    CorruptJndi {
        /// Target component.
        component: &'static str,
        /// Null / invalid / wrong.
        kind: CorruptKind,
    },
    /// Corrupt a container's transaction method map.
    CorruptTxnMap {
        /// Target component.
        component: &'static str,
        /// Null / invalid / wrong.
        kind: CorruptKind,
    },
    /// Corrupt a stateless session bean's instance attributes.
    CorruptBeanAttrs {
        /// Target component.
        component: &'static str,
        /// Null / invalid / wrong.
        kind: CorruptKind,
    },
    /// Corrupt a session object inside FastS.
    CorruptFastS {
        /// Null / invalid / wrong.
        kind: CorruptKind,
    },
    /// Flip bits in a session object inside SSM.
    CorruptSsm,
    /// Manually alter database table contents.
    CorruptDb {
        /// Null / invalid / wrong.
        kind: CorruptKind,
    },
    /// Leak memory inside the JVM, outside the application.
    MemLeakIntraJvm {
        /// Bytes per second.
        bytes_per_sec: u64,
    },
    /// Leak memory outside the JVM.
    MemLeakExtraJvm {
        /// Bytes per second.
        bytes_per_sec: u64,
    },
    /// Fail-slow degradation: the component keeps answering correctly but
    /// its service times inflate by `factor_permille`/1000. The paper's
    /// detectors punt on exactly this class — nothing fails, nothing
    /// throws, goodput stays up — so only the latency-anomaly detector
    /// can see it. Microreboots leave a residual fraction of the slowdown
    /// behind (a warm restart reuses the degraded pools); only a coarser
    /// reboot clears it fully.
    Degraded {
        /// Target component.
        component: &'static str,
        /// Service-time multiplier, in permille (2000 = 2x slower).
        factor_permille: u32,
    },
    /// Bit flips in process memory.
    BitFlipMemory,
    /// Bit flips in process registers.
    BitFlipRegisters,
    /// Bad system-call return values.
    BadSyscalls,
    /// An SSM brick process crashes, taking its replica offline until the
    /// operator (or supervisor) restarts it.
    BrickCrash {
        /// Which brick (index into the SSM's replica set).
        brick: usize,
        /// Restart delay in seconds.
        heals_after_s: u64,
    },
    /// Bit flips across every object held by one SSM brick; surviving
    /// replicas mask the damage (checksum discard on read).
    BrickCorrupt {
        /// Which brick (index into the SSM's replica set).
        brick: usize,
    },
    /// Every live lease in the SSM expires at once — the pathological
    /// burst the lease protocol must absorb without losing accounting.
    LeaseStorm,
    /// The state store answers correctly but slowly: every access gains
    /// `factor_permille`/1000 of its base latency.
    StoreSlow {
        /// Extra latency, in permille of the base SSM access time.
        factor_permille: u32,
        /// Self-heal delay in seconds.
        heals_after_s: u64,
    },
    /// A network edge black-holes all traffic until it heals.
    LinkPartition {
        /// Which edge.
        edge: NetEdge,
        /// Heal delay in seconds.
        heals_after_s: u64,
    },
    /// A network edge drops `permille`/1000 of its messages.
    LinkLossy {
        /// Which edge.
        edge: NetEdge,
        /// Drop rate, in permille.
        permille: u32,
        /// Heal delay in seconds.
        heals_after_s: u64,
    },
    /// A network edge delays every message by a fixed extra latency.
    LinkDelay {
        /// Which edge.
        edge: NetEdge,
        /// Added one-way latency in milliseconds.
        extra_ms: u64,
        /// Heal delay in seconds.
        heals_after_s: u64,
    },
    /// A network edge duplicates `permille`/1000 of its messages — the
    /// at-least-once delivery case the store's applied-id check must
    /// absorb without applying a write twice.
    LinkDupe {
        /// Which edge.
        edge: NetEdge,
        /// Duplication rate, in permille.
        permille: u32,
        /// Heal delay in seconds.
        heals_after_s: u64,
    },
}

/// A faultable network edge in the three-tier topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetEdge {
    /// Load balancer ↔ application node.
    LbNode,
    /// Application node ↔ state store.
    NodeStore,
}

impl NetEdge {
    /// Stable wire code for telemetry (0 = LB↔node, 1 = node↔store).
    pub fn code(self) -> u8 {
        match self {
            NetEdge::LbNode => 0,
            NetEdge::NodeStore => 1,
        }
    }
}

/// State-store-plane fault payload carried by [`Injection::StorePlane`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreFault {
    /// Crash a brick; it restarts after the delay.
    BrickCrash {
        /// Which brick.
        brick: usize,
        /// Restart delay.
        heals_after: SimDuration,
    },
    /// Flip bits across one brick's objects.
    BrickCorrupt {
        /// Which brick.
        brick: usize,
    },
    /// Expire every live lease at once.
    LeaseStorm,
    /// Inflate every store access by `factor_permille`/1000 of its base
    /// latency until the heal.
    Slow {
        /// Extra latency, in permille of the base access time.
        factor_permille: u32,
        /// Self-heal delay.
        heals_after: SimDuration,
    },
}

/// Network-link fault payload carried by [`Injection::NetPlane`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkFault {
    /// Black-hole everything.
    Partition,
    /// Drop this fraction of messages, in permille.
    Lossy {
        /// Drop rate, in permille.
        permille: u32,
    },
    /// Delay every message by this much extra.
    Delay {
        /// Added one-way latency.
        extra: SimDuration,
    },
    /// Duplicate this fraction of messages, in permille.
    Dupe {
        /// Duplication rate, in permille.
        permille: u32,
    },
}

/// The recovery level Table 2 reports as sufficient (worst case).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExpectedLevel {
    /// No reboot needed: the fault is naturally expunged.
    Unnecessary,
    /// EJB-level microreboot.
    Ejb,
    /// EJB plus WAR microreboot.
    EjbWar,
    /// WAR microreboot.
    War,
    /// Detected via checksum; bad object automatically discarded.
    ChecksumDiscard,
    /// Database table repair needed (manual).
    TableRepair,
    /// JVM/JBoss process restart.
    Jvm,
    /// OS/kernel reboot.
    OsKernel,
}

impl ExpectedLevel {
    /// Table 2's text for this level.
    pub fn label(self) -> &'static str {
        match self {
            ExpectedLevel::Unnecessary => "unnecessary",
            ExpectedLevel::Ejb => "EJB",
            ExpectedLevel::EjbWar => "EJB+WAR",
            ExpectedLevel::War => "WAR",
            ExpectedLevel::ChecksumDiscard => "checksum discard",
            ExpectedLevel::TableRepair => "table repair",
            ExpectedLevel::Jvm => "JVM/JBoss",
            ExpectedLevel::OsKernel => "OS kernel",
        }
    }
}

/// One Table 2 row: a fault, the paper's worst-case level, and whether
/// the paper marks it ≈ (additional manual repair for full correctness).
#[derive(Clone, Copy, Debug)]
pub struct CatalogueRow {
    /// Display label (Table 2's left column).
    pub label: &'static str,
    /// The fault to inject.
    pub fault: Fault,
    /// The paper's worst-case recovery level.
    pub expected: ExpectedLevel,
    /// Paper's ≈ mark: manual data repair needed for 100% correctness.
    pub manual_repair: bool,
}

/// Returns Table 2's 26 rows, with concrete injection targets.
pub fn table2_catalogue() -> Vec<CatalogueRow> {
    use CorruptKind::*;
    use ExpectedLevel::*;
    let row = |label, fault, expected, manual_repair| CatalogueRow {
        label,
        fault,
        expected,
        manual_repair,
    };
    vec![
        row(
            "Deadlock",
            Fault::Deadlock {
                component: "MakeBid",
            },
            Ejb,
            false,
        ),
        row(
            "Infinite loop",
            Fault::InfiniteLoop {
                component: "SearchItemsByCategory",
            },
            Ejb,
            false,
        ),
        row(
            "Application memory leak",
            Fault::AppMemoryLeak {
                component: "ViewItem",
                // Fast enough to pressure a 1 GB heap within a couple of
                // minutes, slow enough that the recursive policy can act
                // before the JVM dies outright.
                bytes_per_call: 1 << 20,
                persistent: false,
            },
            Ejb,
            false,
        ),
        row(
            "Transient exception",
            Fault::TransientException {
                component: "BrowseCategories",
                // Keeps recurring until the component's state is rebuilt.
                calls: u32::MAX,
            },
            Ejb,
            false,
        ),
        row(
            "Corrupt primary keys (null)",
            Fault::CorruptPrimaryKeys { kind: SetNull },
            Ejb,
            false,
        ),
        row(
            "Corrupt primary keys (invalid)",
            Fault::CorruptPrimaryKeys { kind: SetInvalid },
            Ejb,
            false,
        ),
        row(
            "Corrupt primary keys (wrong)",
            Fault::CorruptPrimaryKeys { kind: SetWrong },
            Ejb,
            true,
        ),
        row(
            "Corrupt JNDI entry (null)",
            Fault::CorruptJndi {
                component: "RegisterNewUser",
                kind: SetNull,
            },
            Ejb,
            false,
        ),
        row(
            "Corrupt JNDI entry (invalid)",
            Fault::CorruptJndi {
                component: "RegisterNewUser",
                kind: SetInvalid,
            },
            Ejb,
            false,
        ),
        row(
            "Corrupt JNDI entry (wrong)",
            Fault::CorruptJndi {
                component: "RegisterNewUser",
                kind: SetWrong,
            },
            Ejb,
            false,
        ),
        row(
            "Corrupt txn method map (null)",
            Fault::CorruptTxnMap {
                component: "CommitBid",
                kind: SetNull,
            },
            Ejb,
            false,
        ),
        row(
            "Corrupt txn method map (invalid)",
            Fault::CorruptTxnMap {
                component: "CommitBid",
                kind: SetInvalid,
            },
            Ejb,
            false,
        ),
        row(
            "Corrupt txn method map (wrong)",
            Fault::CorruptTxnMap {
                component: "Item",
                kind: SetWrong,
            },
            Ejb,
            true,
        ),
        row(
            "Corrupt session EJB attrs (null)",
            Fault::CorruptBeanAttrs {
                component: "ViewItem",
                kind: SetNull,
            },
            Unnecessary,
            false,
        ),
        row(
            "Corrupt session EJB attrs (invalid)",
            Fault::CorruptBeanAttrs {
                component: "ViewItem",
                kind: SetInvalid,
            },
            Unnecessary,
            false,
        ),
        row(
            "Corrupt session EJB attrs (wrong)",
            Fault::CorruptBeanAttrs {
                // A *writing* bean: its wrong attributes end up in the
                // database (the ≈ of this row).
                component: "CommitBid",
                kind: SetWrong,
            },
            EjbWar,
            true,
        ),
        row(
            "Corrupt FastS data (null)",
            Fault::CorruptFastS { kind: SetNull },
            War,
            false,
        ),
        row(
            "Corrupt FastS data (invalid)",
            Fault::CorruptFastS { kind: SetInvalid },
            War,
            false,
        ),
        row(
            "Corrupt FastS data (wrong)",
            Fault::CorruptFastS { kind: SetWrong },
            War,
            true,
        ),
        row(
            "Corrupt SSM data (bit flips)",
            Fault::CorruptSsm,
            ChecksumDiscard,
            false,
        ),
        row(
            "Corrupt MySQL data",
            Fault::CorruptDb { kind: SetWrong },
            TableRepair,
            true,
        ),
        row(
            "Memory leak outside app (intra-JVM)",
            Fault::MemLeakIntraJvm {
                bytes_per_sec: 40 << 20,
            },
            Jvm,
            false,
        ),
        row(
            "Memory leak outside app (extra-JVM)",
            Fault::MemLeakExtraJvm {
                bytes_per_sec: 40 << 20,
            },
            OsKernel,
            false,
        ),
        row(
            "Bit flips in process memory",
            Fault::BitFlipMemory,
            Jvm,
            true,
        ),
        row(
            "Bit flips in process registers",
            Fault::BitFlipRegisters,
            Jvm,
            true,
        ),
        row(
            "Bad system call return values",
            Fault::BadSyscalls,
            Jvm,
            false,
        ),
    ]
}

/// The injection route a [`Fault`] takes into the system under test.
///
/// [`conversion`] is the single source of truth mapping the catalogue onto
/// these routes; [`inject`] (and the cluster layer, for client-plane
/// faults) interprets them. New `Fault` variants must add exactly one arm
/// to `conversion` — urb-lint rule E005 enforces this.
#[derive(Clone, Copy, Debug)]
pub enum Injection {
    /// Delivered through the server's `ServerFault` hooks.
    Server(ServerFault),
    /// Corrupt the application's primary-key generation code.
    KeyGen(CorruptKind),
    /// Corrupt the most recently created FastS sessions.
    FastS(CorruptKind),
    /// Flip bits in a stored SSM object.
    Ssm,
    /// Alter database table contents.
    Db(CorruptKind),
    /// Fabricate this many failure reports in the client population.
    /// Nothing touches the server — only the cluster layer (which owns
    /// the client pool) can deliver these.
    ClientReports(u32),
    /// A state-store-plane fault. Nothing touches the server process —
    /// only the cluster layer (which owns the shared SSM) can deliver
    /// these.
    StorePlane(StoreFault),
    /// A network-link fault on one edge. Delivered by the cluster layer,
    /// which owns the simulated wire.
    NetPlane {
        /// Which edge the fault sits on.
        edge: NetEdge,
        /// What the edge does to traffic.
        fault: LinkFault,
        /// When the edge heals.
        heals_after: SimDuration,
    },
}

/// Maps every catalogue fault to its unique injection route.
pub fn conversion(fault: &Fault) -> Injection {
    match *fault {
        Fault::Deadlock { component } => Injection::Server(ServerFault::Deadlock { component }),
        Fault::InfiniteLoop { component } => {
            Injection::Server(ServerFault::InfiniteLoop { component })
        }
        Fault::AppMemoryLeak {
            component,
            bytes_per_call,
            persistent,
        } => Injection::Server(ServerFault::AppLeak {
            component,
            bytes_per_call,
            persistent,
        }),
        Fault::TransientException { component, calls } => {
            Injection::Server(ServerFault::TransientExceptions { component, calls })
        }
        Fault::Intermittent {
            component,
            permille,
            heals_after_s,
        } => Injection::Server(ServerFault::Intermittent {
            component,
            permille,
            heals_after: heals_after_s.map(SimDuration::from_secs),
        }),
        Fault::SpuriousReports { reports } => Injection::ClientReports(reports),
        Fault::CorruptPrimaryKeys { kind } => Injection::KeyGen(kind),
        Fault::CorruptJndi { component, kind } => {
            Injection::Server(ServerFault::CorruptJndi { component, kind })
        }
        Fault::CorruptTxnMap { component, kind } => {
            Injection::Server(ServerFault::CorruptTxnMap { component, kind })
        }
        Fault::CorruptBeanAttrs { component, kind } => {
            Injection::Server(ServerFault::CorruptBeanAttrs { component, kind })
        }
        Fault::CorruptFastS { kind } => Injection::FastS(kind),
        Fault::CorruptSsm => Injection::Ssm,
        Fault::CorruptDb { kind } => Injection::Db(kind),
        Fault::MemLeakIntraJvm { bytes_per_sec } => {
            Injection::Server(ServerFault::IntraJvmLeak { bytes_per_sec })
        }
        Fault::MemLeakExtraJvm { bytes_per_sec } => {
            Injection::Server(ServerFault::ExtraJvmLeak { bytes_per_sec })
        }
        Fault::Degraded {
            component,
            factor_permille,
        } => Injection::Server(ServerFault::Degraded {
            component,
            factor_permille,
        }),
        Fault::BitFlipMemory => Injection::Server(ServerFault::BitFlipMemory),
        Fault::BitFlipRegisters => Injection::Server(ServerFault::BitFlipRegisters),
        Fault::BadSyscalls => Injection::Server(ServerFault::BadSyscalls),
        Fault::BrickCrash {
            brick,
            heals_after_s,
        } => Injection::StorePlane(StoreFault::BrickCrash {
            brick,
            heals_after: SimDuration::from_secs(heals_after_s),
        }),
        Fault::BrickCorrupt { brick } => Injection::StorePlane(StoreFault::BrickCorrupt { brick }),
        Fault::LeaseStorm => Injection::StorePlane(StoreFault::LeaseStorm),
        Fault::StoreSlow {
            factor_permille,
            heals_after_s,
        } => Injection::StorePlane(StoreFault::Slow {
            factor_permille,
            heals_after: SimDuration::from_secs(heals_after_s),
        }),
        Fault::LinkPartition {
            edge,
            heals_after_s,
        } => Injection::NetPlane {
            edge,
            fault: LinkFault::Partition,
            heals_after: SimDuration::from_secs(heals_after_s),
        },
        Fault::LinkLossy {
            edge,
            permille,
            heals_after_s,
        } => Injection::NetPlane {
            edge,
            fault: LinkFault::Lossy { permille },
            heals_after: SimDuration::from_secs(heals_after_s),
        },
        Fault::LinkDelay {
            edge,
            extra_ms,
            heals_after_s,
        } => Injection::NetPlane {
            edge,
            fault: LinkFault::Delay {
                extra: SimDuration::from_millis(extra_ms),
            },
            heals_after: SimDuration::from_secs(heals_after_s),
        },
        Fault::LinkDupe {
            edge,
            permille,
            heals_after_s,
        } => Injection::NetPlane {
            edge,
            fault: LinkFault::Dupe { permille },
            heals_after: SimDuration::from_secs(heals_after_s),
        },
    }
}

/// Injects `fault` into a running eBid server.
///
/// Returns responses for requests killed as an immediate consequence
/// (only register bit flips kill anything on the spot). Client-plane
/// faults ([`Injection::ClientReports`]) are a no-op here: they never
/// touch the server and are delivered by the cluster layer instead.
pub fn inject(server: &mut AppServer<EBid>, fault: &Fault, now: SimTime) -> Vec<Response> {
    match conversion(fault) {
        Injection::Server(f) => server.inject(f, now),
        Injection::KeyGen(kind) => {
            server.app_mut().corrupt_keygen(kind);
            Vec::new()
        }
        Injection::FastS(kind) => {
            // Bit flips hit a swath of stored objects. Target the most
            // recently created sessions: abandoned sessions linger in the
            // store until they time out, and corrupting those would be
            // invisible.
            if let Some(fasts) = server.session_mut().fasts_mut() {
                let victims: Vec<_> = fasts.session_ids().into_iter().rev().take(25).collect();
                for id in victims {
                    fasts.corrupt(id, kind);
                }
            }
            Vec::new()
        }
        Injection::Ssm => {
            if let Some(ssm) = server.session().ssm_handle() {
                ssm.borrow_mut().corrupt_any();
            }
            Vec::new()
        }
        Injection::Db(kind) => {
            let db = server.db();
            let mut db = db.borrow_mut();
            match kind {
                CorruptKind::SetNull => {
                    let _ = db.corrupt_cell("items", 1, 1, Value::Null);
                }
                CorruptKind::SetInvalid => {
                    let _ = db.corrupt_cell("items", 1, 6, Value::Float(-500.0));
                }
                CorruptKind::SetWrong => {
                    let _ = db.corrupt_swap_rows("items", 1, 2);
                }
            }
            Vec::new()
        }
        Injection::ClientReports(_) => Vec::new(),
        // Store-plane and net-plane faults hit infrastructure the server
        // process cannot see; the cluster layer (owner of the shared SSM
        // and the simulated wire) delivers them, like ClientReports.
        Injection::StorePlane(_) | Injection::NetPlane { .. } => Vec::new(),
    }
}

/// Returns true if the paper classifies this row as curable by a
/// microreboot (EJB or WAR level) — the first 19 rows of Table 2.
pub fn microreboot_curable(row: &CatalogueRow) -> bool {
    matches!(
        row.expected,
        ExpectedLevel::Unnecessary
            | ExpectedLevel::Ejb
            | ExpectedLevel::EjbWar
            | ExpectedLevel::War
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_26_rows_19_curable() {
        let rows = table2_catalogue();
        assert_eq!(rows.len(), 26);
        let curable = rows.iter().filter(|r| microreboot_curable(r)).count();
        assert_eq!(curable, 19, "Table 2: first 19 rows are µRB-curable");
    }

    #[test]
    fn approx_rows_match_the_paper() {
        // ≈ rows: wrong keys, wrong txn map, wrong bean attrs, wrong FastS
        // data, MySQL corruption, both bit-flip rows.
        let rows = table2_catalogue();
        let approx = rows.iter().filter(|r| r.manual_repair).count();
        assert_eq!(approx, 7);
    }

    #[test]
    fn labels_are_unique() {
        let rows = table2_catalogue();
        let mut labels: Vec<&str> = rows.iter().map(|r| r.label).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), rows.len());
    }

    #[test]
    fn adversarial_variants_route_as_expected() {
        let i = conversion(&Fault::Intermittent {
            component: "MakeBid",
            permille: 500,
            heals_after_s: Some(30),
        });
        match i {
            Injection::Server(ServerFault::Intermittent {
                component,
                permille,
                heals_after,
            }) => {
                assert_eq!(component, "MakeBid");
                assert_eq!(permille, 500);
                assert_eq!(heals_after, Some(SimDuration::from_secs(30)));
            }
            other => panic!("unexpected route {other:?}"),
        }
        assert!(matches!(
            conversion(&Fault::SpuriousReports { reports: 9 }),
            Injection::ClientReports(9)
        ));
    }

    #[test]
    fn state_plane_faults_route_to_the_store() {
        assert!(matches!(
            conversion(&Fault::BrickCrash {
                brick: 1,
                heals_after_s: 20
            }),
            Injection::StorePlane(StoreFault::BrickCrash {
                brick: 1,
                heals_after
            }) if heals_after == SimDuration::from_secs(20)
        ));
        assert!(matches!(
            conversion(&Fault::BrickCorrupt { brick: 2 }),
            Injection::StorePlane(StoreFault::BrickCorrupt { brick: 2 })
        ));
        assert!(matches!(
            conversion(&Fault::LeaseStorm),
            Injection::StorePlane(StoreFault::LeaseStorm)
        ));
        assert!(matches!(
            conversion(&Fault::StoreSlow {
                factor_permille: 3000,
                heals_after_s: 15
            }),
            Injection::StorePlane(StoreFault::Slow {
                factor_permille: 3000,
                ..
            })
        ));
    }

    #[test]
    fn net_plane_faults_route_to_their_edge() {
        for (fault, want_edge, want_kind) in [
            (
                Fault::LinkPartition {
                    edge: NetEdge::LbNode,
                    heals_after_s: 10,
                },
                NetEdge::LbNode,
                LinkFault::Partition,
            ),
            (
                Fault::LinkLossy {
                    edge: NetEdge::NodeStore,
                    permille: 250,
                    heals_after_s: 10,
                },
                NetEdge::NodeStore,
                LinkFault::Lossy { permille: 250 },
            ),
            (
                Fault::LinkDelay {
                    edge: NetEdge::LbNode,
                    extra_ms: 40,
                    heals_after_s: 10,
                },
                NetEdge::LbNode,
                LinkFault::Delay {
                    extra: SimDuration::from_millis(40),
                },
            ),
            (
                Fault::LinkDupe {
                    edge: NetEdge::NodeStore,
                    permille: 100,
                    heals_after_s: 10,
                },
                NetEdge::NodeStore,
                LinkFault::Dupe { permille: 100 },
            ),
        ] {
            match conversion(&fault) {
                Injection::NetPlane {
                    edge,
                    fault: kind,
                    heals_after,
                } => {
                    assert_eq!(edge, want_edge);
                    assert_eq!(kind, want_kind);
                    assert_eq!(heals_after, SimDuration::from_secs(10));
                }
                other => panic!("unexpected route {other:?}"),
            }
        }
        assert_eq!(NetEdge::LbNode.code(), 0);
        assert_eq!(NetEdge::NodeStore.code(), 1);
    }

    #[test]
    fn injection_targets_exist_in_ebid() {
        let names: Vec<&str> = ebid::components::descriptors()
            .iter()
            .map(|d| d.name)
            .collect();
        for row in table2_catalogue() {
            let target = match row.fault {
                Fault::Deadlock { component }
                | Fault::InfiniteLoop { component }
                | Fault::AppMemoryLeak { component, .. }
                | Fault::TransientException { component, .. }
                | Fault::CorruptJndi { component, .. }
                | Fault::CorruptTxnMap { component, .. }
                | Fault::CorruptBeanAttrs { component, .. } => Some(component),
                _ => None,
            };
            if let Some(t) = target {
                assert!(names.contains(&t), "unknown target {t}");
            }
        }
    }
}
