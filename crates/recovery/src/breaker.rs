//! Circuit-breaker recovery: trip on error-rate windows, probe half-open
//! after each recovery, escalate the repair and the cooldown on re-trips.
//!
//! The breaker treats each recovery as opening the circuit; the
//! acknowledgement arms a half-open probe. Failures during the probe
//! window re-trip the breaker, climbing a reboot ladder (suspect
//! microreboot → WAR → process → OS) under an exponential cooldown; a
//! clean probe closes the circuit and resets the ladder.

use simcore::telemetry::{DecisionKind, TelemetryEvent};
use simcore::SimTime;
use workload::detect::FailureReport;

use crate::manager::{RecoveryAction, RmConfig};
use crate::policy::{Evidence, PathOf, PolicyCtx, PolicyLevel, RecoveryPolicy};

/// Breaker wire states (the `BreakerTransition` telemetry payload).
const CLOSED: u8 = 0;
const OPEN: u8 = 1;
const HALF_OPEN: u8 = 2;

#[derive(Debug, Default)]
struct Node {
    ev: Evidence,
    state: u8,
    /// Consecutive trips without an intervening clean probe.
    trips: u32,
    in_flight: usize,
    /// No new trip before this deadline (exponential cooldown).
    cooldown_until: Option<SimTime>,
    paged: bool,
}

/// The repair commanded at the node's current trip count.
fn rung_action(
    node: &mut Node,
    network_dominated: bool,
    path_of: PathOf,
    web: &'static str,
) -> (RecoveryAction, DecisionKind) {
    // Connection-level evidence: component repair is pointless.
    let trips = if network_dominated {
        node.trips.max(3)
    } else {
        node.trips
    };
    match trips {
        0 | 1 => match node.ev.suspect(path_of, web) {
            Some(c) => (
                RecoveryAction::microreboot(&[c]),
                DecisionKind::EjbMicroreboot,
            ),
            None => (
                RecoveryAction::microreboot(&[web]),
                DecisionKind::WarMicroreboot,
            ),
        },
        2 => (
            RecoveryAction::microreboot(&[web]),
            DecisionKind::WarMicroreboot,
        ),
        3 => (RecoveryAction::RestartProcess, DecisionKind::ProcessRestart),
        4 => (RecoveryAction::RebootOs, DecisionKind::OsReboot),
        _ => {
            if node.paged {
                // Page once, then keep reviving the process underneath.
                (RecoveryAction::RestartProcess, DecisionKind::ProcessRestart)
            } else {
                node.paged = true;
                (RecoveryAction::NotifyHuman, DecisionKind::NotifyHuman)
            }
        }
    }
}

/// Circuit-breaker policy (see module docs).
// urb-lint: volatile-state(crash)
pub struct CircuitBreakerPolicy {
    // urb-lint: allow(S001) — immutable policy configuration; a ReHype reboot reloads it from the build.
    config: RmConfig,
    // urb-lint: allow(S001) — immutable policy configuration; a ReHype reboot reloads it from the build.
    path_of: PathOf,
    // urb-lint: allow(S001) — immutable policy configuration; a ReHype reboot reloads it from the build.
    web: &'static str,
    nodes: Vec<Node>,
}

impl CircuitBreakerPolicy {
    /// Creates the breaker for `nodes` nodes.
    pub fn new(nodes: usize, config: RmConfig, path_of: PathOf, web: &'static str) -> Self {
        CircuitBreakerPolicy {
            config,
            path_of,
            web,
            nodes: (0..nodes).map(|_| Node::default()).collect(),
        }
    }
}

impl RecoveryPolicy for CircuitBreakerPolicy {
    fn name(&self) -> &'static str {
        "circuit-breaker"
    }

    fn observe(&mut self, r: &FailureReport, _ctx: &mut PolicyCtx<'_>) {
        if let Some(node) = self.nodes.get_mut(r.node) {
            node.ev.observe(r, self.config.settle);
        }
    }

    fn decide(
        &mut self,
        node_idx: usize,
        now: SimTime,
        ctx: &mut PolicyCtx<'_>,
    ) -> Option<RecoveryAction> {
        let config = self.config;
        let path_of = self.path_of;
        let web = self.web;
        let node = self.nodes.get_mut(node_idx)?;
        if node.in_flight > 0 {
            return None;
        }
        node.ev
            .prune(now, config.score_window + config.detection_delay);
        let enough = node.ev.enough(config.score_threshold, path_of, web);
        // A clean half-open probe (quiet past the settle + observation
        // window) closes the circuit and resets the trip ladder.
        if node.state == HALF_OPEN && !enough {
            let end = node.ev.last_recovery_end.unwrap_or(SimTime::ZERO);
            if now - end > config.settle + config.observation {
                node.state = CLOSED;
                node.trips = 0;
                node.paged = false;
                ctx.emit(TelemetryEvent::BreakerTransition {
                    node: node_idx,
                    state: CLOSED,
                    at: now,
                });
            }
        }
        if !enough {
            return None;
        }
        let first = node.ev.first_report_at?;
        if now - first < config.detection_delay {
            return None;
        }
        // Exponential cooldown between re-trips: back off harder the more
        // the breaker flaps (bounded so convergence stays within grace).
        if let Some(until) = node.cooldown_until {
            if now < until {
                return None;
            }
        }
        // A fresh burst long after the last episode starts a new ladder.
        if node.state == CLOSED && node.trips > 0 {
            let quiet = node
                .ev
                .last_recovery_end
                .is_none_or(|end| first > end + config.settle + config.observation);
            if quiet {
                node.trips = 0;
                node.paged = false;
            }
        }
        node.trips += 1;
        node.state = OPEN;
        ctx.emit(TelemetryEvent::BreakerTransition {
            node: node_idx,
            state: OPEN,
            at: now,
        });
        let exp = node.trips.saturating_sub(1).min(3);
        node.cooldown_until = Some(now + config.storm_backoff * (1u64 << exp));
        let (network, other) = node.ev.counts();
        let (action, decision) = rung_action(node, network > other, path_of, web);
        ctx.emit(TelemetryEvent::RecoveryDecision {
            node: node_idx,
            decision,
            at: now,
        });
        node.in_flight += 1;
        node.ev.clear();
        Some(action)
    }

    fn recovery_finished(&mut self, node_idx: usize, now: SimTime, ctx: &mut PolicyCtx<'_>) {
        let Some(node) = self.nodes.get_mut(node_idx) else {
            return;
        };
        node.in_flight = node.in_flight.saturating_sub(1);
        node.ev.last_recovery_end = Some(now);
        node.ev.clear();
        if node.state == OPEN {
            node.state = HALF_OPEN;
            ctx.emit(TelemetryEvent::BreakerTransition {
                node: node_idx,
                state: HALF_OPEN,
                at: now,
            });
        }
    }

    fn in_flight(&self, node: usize) -> usize {
        self.nodes.get(node).map_or(0, |n| n.in_flight)
    }

    fn level_of(&self, node: usize) -> PolicyLevel {
        match self.nodes.get(node).map_or(0, |n| n.trips) {
            0 | 1 => PolicyLevel::Ejb,
            2 => PolicyLevel::War,
            3 => PolicyLevel::Process,
            4 => PolicyLevel::Os,
            _ => PolicyLevel::Human,
        }
    }

    fn crash(&mut self, _now: SimTime, _ctx: &mut PolicyCtx<'_>) {
        for node in &mut self.nodes {
            *node = Node::default();
        }
    }
}
