//! The recursive recovery policy ladder.
//!
//! "RM first microreboots EJBs, then eBid's WAR, then the entire eBid
//! application, then the JVM running the JBoss application server, and
//! finally reboots the OS; if none of these actions cure the failure
//! symptoms, RM notifies a human administrator." (Section 4)

/// One rung of the recursive recovery ladder.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PolicyLevel {
    /// Microreboot the suspected EJB (and its recovery group).
    Ejb,
    /// Microreboot the web component.
    War,
    /// Restart the whole application.
    App,
    /// Restart the JVM process.
    Process,
    /// Reboot the operating system.
    Os,
    /// Out of automated options: page a human.
    Human,
}

impl PolicyLevel {
    /// Returns the next-coarser rung.
    pub fn escalate(self) -> PolicyLevel {
        match self {
            PolicyLevel::Ejb => PolicyLevel::War,
            PolicyLevel::War => PolicyLevel::App,
            PolicyLevel::App => PolicyLevel::Process,
            PolicyLevel::Process => PolicyLevel::Os,
            PolicyLevel::Os | PolicyLevel::Human => PolicyLevel::Human,
        }
    }

    /// Returns a display label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyLevel::Ejb => "EJB microreboot",
            PolicyLevel::War => "WAR microreboot",
            PolicyLevel::App => "application restart",
            PolicyLevel::Process => "JVM restart",
            PolicyLevel::Os => "OS reboot",
            PolicyLevel::Human => "notify human",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_order_matches_the_paper() {
        let mut level = PolicyLevel::Ejb;
        let expected = [
            PolicyLevel::War,
            PolicyLevel::App,
            PolicyLevel::Process,
            PolicyLevel::Os,
            PolicyLevel::Human,
        ];
        for e in expected {
            level = level.escalate();
            assert_eq!(level, e);
        }
        assert_eq!(PolicyLevel::Human.escalate(), PolicyLevel::Human);
    }

    #[test]
    fn levels_are_ordered_cheapest_first() {
        assert!(PolicyLevel::Ejb < PolicyLevel::War);
        assert!(PolicyLevel::War < PolicyLevel::Process);
        assert!(PolicyLevel::Os < PolicyLevel::Human);
    }
}
