//! The recovery-policy layer: the ladder's rungs, the [`RecoveryPolicy`]
//! trait every strategy implements, and the tournament registry.
//!
//! "RM first microreboots EJBs, then eBid's WAR, then the entire eBid
//! application, then the JVM running the JBoss application server, and
//! finally reboots the OS; if none of these actions cure the failure
//! symptoms, RM notifies a human administrator." (Section 4)
//!
//! That recursive ladder is one *policy* among several: the systematic
//! review of resilient-microservice patterns catalogues circuit breakers,
//! bulkhead isolation, retry budgets with hedging, and failover-first
//! strategies as competitors. Each lives behind [`RecoveryPolicy`], a
//! deterministic, seeded, telemetry-fed decision interface; the
//! [`RecoveryManager`](crate::RecoveryManager) hosts whichever one
//! [`PolicyChoice`] names, and `urb-chaos policy-tournament` races them
//! under an identical fault matrix.

use components::CompName;
use simcore::telemetry::{SharedBus, TelemetryEvent, TelemetrySink};
use simcore::{MetricsRegistry, SimTime};
use urb_core::OpCode;
use workload::detect::{FailureKind, FailureReport};

use crate::manager::{RecoveryAction, RmConfig};

/// One rung of the recursive recovery ladder.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PolicyLevel {
    /// Microreboot the suspected EJB (and its recovery group).
    Ejb,
    /// Microreboot the web component.
    War,
    /// Restart the whole application.
    App,
    /// Restart the JVM process.
    Process,
    /// Reboot the operating system.
    Os,
    /// Out of automated options: page a human.
    Human,
}

impl PolicyLevel {
    /// Returns the next-coarser rung.
    pub fn escalate(self) -> PolicyLevel {
        match self {
            PolicyLevel::Ejb => PolicyLevel::War,
            PolicyLevel::War => PolicyLevel::App,
            PolicyLevel::App => PolicyLevel::Process,
            PolicyLevel::Process => PolicyLevel::Os,
            PolicyLevel::Os => PolicyLevel::Human,
            // Already saturated: there is no rung past a human.
            PolicyLevel::Human => PolicyLevel::Human,
        }
    }

    /// Returns a display label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyLevel::Ejb => "EJB microreboot",
            PolicyLevel::War => "WAR microreboot",
            PolicyLevel::App => "application restart",
            PolicyLevel::Process => "JVM restart",
            PolicyLevel::Os => "OS reboot",
            PolicyLevel::Human => "notify human",
        }
    }
}

/// The emission side-channel a policy decides through: every telemetry
/// event a policy produces folds into the host manager's metrics registry
/// and is forwarded to the attached bus, exactly as the pre-trait manager
/// emitted. Handed in per call so policies never own bus handles (their
/// state stays crash-wipeable for the ReHype scenarios).
pub struct PolicyCtx<'a> {
    /// The host manager's metrics registry.
    pub metrics: &'a mut MetricsRegistry,
    /// The host manager's telemetry bus, if attached.
    pub bus: &'a Option<SharedBus>,
}

impl PolicyCtx<'_> {
    /// Folds `ev` into the registry and forwards it to the bus.
    pub fn emit(&mut self, ev: TelemetryEvent) {
        self.metrics.on_event(&ev);
        if let Some(bus) = self.bus {
            bus.borrow_mut().emit(&ev);
        }
    }
}

/// A pluggable recovery strategy.
///
/// Contract (enforced by `bench/tests/policy_conformance.rs`):
///
/// * **Deterministic**: decisions are a pure function of the observation
///   history and the build seed — no wall clocks, no ambient randomness.
/// * **Convergent**: under any campaign fault (including `FlapSchedule`
///   re-injection) every episode terminates within bounded grace; no
///   absorbing state may swallow the ladder.
/// * **Ack-conserving**: each `Some(action)` returned from `decide` is
///   answered by exactly one `recovery_finished` call; policies gate on
///   their own in-flight bookkeeping.
/// * **Crash-survivable**: `crash` wipes all volatile per-node state (the
///   ReHype scenario — the RM host reboots mid-episode); the policy must
///   re-converge from fresh evidence afterwards, and tolerate late
///   `recovery_finished` acks for decisions it no longer remembers.
pub trait RecoveryPolicy {
    /// The policy's registry label.
    fn name(&self) -> &'static str;

    /// Ingests one failure report (`DetectorFired` has already been
    /// emitted by the host).
    fn observe(&mut self, r: &FailureReport, ctx: &mut PolicyCtx<'_>);

    /// Decides whether (and how) to recover `node` right now. A returned
    /// action must eventually be acknowledged via `recovery_finished`.
    fn decide(
        &mut self,
        node: usize,
        now: SimTime,
        ctx: &mut PolicyCtx<'_>,
    ) -> Option<RecoveryAction>;

    /// Acknowledges one completed (or abandoned) action on `node`.
    fn recovery_finished(&mut self, node: usize, now: SimTime, ctx: &mut PolicyCtx<'_>);

    /// Actions issued on `node` still awaiting acknowledgement.
    fn in_flight(&self, node: usize) -> usize;

    /// The node's current escalation rung (reporting only).
    fn level_of(&self, node: usize) -> PolicyLevel;

    /// The RM host crashed (ReHype): all volatile state is lost. The
    /// in-flight counts vanish with it — late conductor acks must be
    /// absorbed safely (saturating decrements).
    fn crash(&mut self, now: SimTime, ctx: &mut PolicyCtx<'_>);
}

/// The tournament registry: every [`RecoveryPolicy`] implementation the
/// repo ships, by name. urb-lint rule E006 checks that each
/// `impl RecoveryPolicy` appears in [`PolicyChoice::build`] and that
/// every variant here is constructible, labelled and coded.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum PolicyChoice {
    /// The paper's recursive ladder (the pinned default).
    Ladder,
    /// The ladder started at the JVM rung: the "recover by process
    /// restart" baseline the paper compares microreboots against.
    RebootFirst,
    /// Circuit breaker: trip on error-rate windows, half-open probe after
    /// recovery, escalating cooldowns and rungs on re-trips.
    CircuitBreaker,
    /// Bulkhead: admission-isolate the suspect blast radius first; only
    /// reboot when isolation alone does not clear the evidence.
    Bulkhead,
    /// Retry budget with hedging: spend a deferral budget letting client
    /// retries absorb the failure, hedging with a cheap microreboot;
    /// escalate when the budget runs dry.
    RetryHedge,
    /// Failover-first: move traffic away before rebooting anything.
    FailoverFirst,
}

/// URL-prefix → component-path mapping used by diagnosis.
pub type PathOf = fn(OpCode) -> &'static [&'static str];

impl PolicyChoice {
    /// Every registered policy, in tournament order.
    pub const ALL: &'static [PolicyChoice] = &[
        PolicyChoice::Ladder,
        PolicyChoice::RebootFirst,
        PolicyChoice::CircuitBreaker,
        PolicyChoice::Bulkhead,
        PolicyChoice::RetryHedge,
        PolicyChoice::FailoverFirst,
    ];

    /// The policy's stable registry label (report keys, CLI `--policies`).
    pub fn label(self) -> &'static str {
        match self {
            PolicyChoice::Ladder => "paper-ladder",
            PolicyChoice::RebootFirst => "reboot-first",
            PolicyChoice::CircuitBreaker => "circuit-breaker",
            PolicyChoice::Bulkhead => "bulkhead",
            PolicyChoice::RetryHedge => "retry-hedge",
            PolicyChoice::FailoverFirst => "failover-first",
        }
    }

    /// The policy's wire code (the `PolicyArmed` telemetry payload).
    pub fn code(self) -> u8 {
        match self {
            PolicyChoice::Ladder => 0,
            PolicyChoice::RebootFirst => 1,
            PolicyChoice::CircuitBreaker => 2,
            PolicyChoice::Bulkhead => 3,
            PolicyChoice::RetryHedge => 4,
            PolicyChoice::FailoverFirst => 5,
        }
    }

    /// Resolves a CLI label back to its choice.
    pub fn from_label(label: &str) -> Option<PolicyChoice> {
        PolicyChoice::ALL
            .iter()
            .copied()
            .find(|c| c.label() == label)
    }

    /// Builds the policy for an `nodes`-node cluster.
    ///
    /// `seed` feeds any randomized tie-breaking the policy performs (only
    /// `RetryHedge` draws from it today); the same seed must reproduce
    /// the same decision stream bit-for-bit.
    pub fn build(
        self,
        nodes: usize,
        config: RmConfig,
        path_of: PathOf,
        web: &'static str,
        seed: u64,
    ) -> Box<dyn RecoveryPolicy> {
        match self {
            PolicyChoice::Ladder => Box::new(crate::ladder::LadderPolicy::new(
                nodes, config, path_of, web,
            )),
            PolicyChoice::RebootFirst => Box::new(crate::ladder::LadderPolicy::new(
                nodes,
                RmConfig {
                    start_level: PolicyLevel::Process,
                    ..config
                },
                path_of,
                web,
            )),
            PolicyChoice::CircuitBreaker => Box::new(crate::breaker::CircuitBreakerPolicy::new(
                nodes, config, path_of, web,
            )),
            PolicyChoice::Bulkhead => Box::new(crate::bulkhead::BulkheadPolicy::new(
                nodes, config, path_of, web,
            )),
            PolicyChoice::RetryHedge => Box::new(crate::hedge::RetryHedgePolicy::new(
                nodes, config, path_of, web, seed,
            )),
            PolicyChoice::FailoverFirst => Box::new(crate::failover::FailoverFirstPolicy::new(
                nodes, config, path_of, web,
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Shared evidence bookkeeping for the non-ladder policies
// ---------------------------------------------------------------------------

/// Per-node failure evidence shared by the non-ladder policies: the same
/// report hygiene the ladder applies (session-loss skip, aftershock
/// settle suppression, sliding-window pruning) without the ladder's
/// escalation state. The ladder keeps its own verbatim bookkeeping so the
/// pinned digests cannot move.
#[derive(Debug, Default)]
pub(crate) struct Evidence {
    /// Recent reports: (time, op for path scoring — `None` for network
    /// failures — and the error page's component hint, if any).
    pub recent: Vec<(SimTime, Option<OpCode>, Option<CompName>)>,
    /// When the oldest surviving report arrived.
    pub first_report_at: Option<SimTime>,
    /// When the last acknowledged recovery completed.
    pub last_recovery_end: Option<SimTime>,
}

impl Evidence {
    /// Ingests one report with the standard hygiene.
    pub fn observe(&mut self, r: &FailureReport, settle: simcore::SimDuration) {
        if r.kind == FailureKind::SessionLoss {
            return;
        }
        if let Some(end) = self.last_recovery_end {
            if r.at <= end + settle {
                return;
            }
        }
        self.first_report_at.get_or_insert(r.at);
        match r.kind {
            FailureKind::Network => self.recent.push((r.at, None, None)),
            _ => self.recent.push((r.at, Some(r.op), r.hint)),
        }
    }

    /// Forgets reports older than `window`.
    pub fn prune(&mut self, now: SimTime, window: simcore::SimDuration) {
        self.recent.retain(|(t, _, _)| now - *t <= window);
        self.first_report_at = self.recent.first().map(|(t, _, _)| *t);
    }

    /// Drops all evidence (a decision consumed it).
    pub fn clear(&mut self) {
        self.recent.clear();
        self.first_report_at = None;
    }

    /// `(network_reports, other_reports)` counts over the window.
    pub fn counts(&self) -> (u64, u64) {
        let network = self.recent.iter().filter(|(_, op, _)| op.is_none()).count() as u64;
        (network, self.recent.len() as u64 - network)
    }

    /// Whether the evidence implicates a single component (or shows enough
    /// connection failures) to cross `threshold` — the ladder's trigger
    /// condition, shared so policies fire at comparable sensitivities.
    pub fn enough(&self, threshold: f64, path_of: PathOf, web: &'static str) -> bool {
        let (network, _) = self.counts();
        if network as f64 >= threshold {
            return true;
        }
        let mut scores: std::collections::BTreeMap<&'static str, f64> =
            std::collections::BTreeMap::new();
        for (_, op, _) in &self.recent {
            if let Some(op) = op {
                for comp in (path_of)(*op) {
                    let w = if *comp == web { 0.2 } else { 1.0 };
                    *scores.entry(comp).or_insert(0.0) += w;
                }
            }
        }
        scores.values().copied().fold(0.0, f64::max) >= threshold
    }

    /// The most suspicious non-web component (ladder's diagnosis, shared).
    pub fn suspect(&self, path_of: PathOf, web: &'static str) -> Option<&'static str> {
        let mut scores: std::collections::BTreeMap<&'static str, f64> =
            std::collections::BTreeMap::new();
        let mut failing_ops: Vec<OpCode> = Vec::new();
        for (_, op, _) in &self.recent {
            if let Some(op) = op {
                if !failing_ops.contains(op) {
                    failing_ops.push(*op);
                }
                for comp in (path_of)(*op) {
                    let w = if *comp == web { 0.2 } else { 1.0 };
                    *scores.entry(comp).or_insert(0.0) += w;
                }
            }
        }
        crate::ladder::pick_suspect(&failing_ops, &scores, path_of, web)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_order_matches_the_paper() {
        let mut level = PolicyLevel::Ejb;
        let expected = [
            PolicyLevel::War,
            PolicyLevel::App,
            PolicyLevel::Process,
            PolicyLevel::Os,
            PolicyLevel::Human,
        ];
        for e in expected {
            level = level.escalate();
            assert_eq!(level, e);
        }
        assert_eq!(PolicyLevel::Human.escalate(), PolicyLevel::Human);
    }

    #[test]
    fn levels_are_ordered_cheapest_first() {
        assert!(PolicyLevel::Ejb < PolicyLevel::War);
        assert!(PolicyLevel::War < PolicyLevel::Process);
        assert!(PolicyLevel::Os < PolicyLevel::Human);
    }

    #[test]
    fn registry_labels_and_codes_are_distinct() {
        let mut labels: Vec<&str> = PolicyChoice::ALL.iter().map(|c| c.label()).collect();
        let mut codes: Vec<u8> = PolicyChoice::ALL.iter().map(|c| c.code()).collect();
        labels.sort_unstable();
        labels.dedup();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(labels.len(), PolicyChoice::ALL.len());
        assert_eq!(codes.len(), PolicyChoice::ALL.len());
        for c in PolicyChoice::ALL {
            assert_eq!(PolicyChoice::from_label(c.label()), Some(*c));
        }
        assert_eq!(PolicyChoice::from_label("no-such-policy"), None);
    }

    #[test]
    fn every_registered_policy_builds_and_reports_its_name() {
        for c in PolicyChoice::ALL {
            let p = c.build(2, RmConfig::default(), |_| &["WAR"], "WAR", 0x5eed);
            assert_eq!(p.name(), c.label());
            assert_eq!(p.in_flight(0), 0);
        }
    }
}
