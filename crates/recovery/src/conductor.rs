//! The recovery conductor: dependency-aware parallel microreboots.
//!
//! The recovery manager diagnoses *what* to recover; the conductor decides
//! *when*. It sits between [`RecoveryManager`](crate::RecoveryManager)
//! decisions and the per-node reboot lifecycle, and turns the serial
//! "one recovery at a time" discipline into a schedule:
//!
//! * every action is expanded to its full recovery group (the transitive
//!   closure of container-spanning references, Section 3.2), so conflict
//!   detection sees the true blast radius;
//! * two actions **conflict** when their expanded groups overlap, or when
//!   they serve a common URL (their static call-path masks intersect) —
//!   running those concurrently would stack both groups' `Retry-After`
//!   windows onto the same requests;
//! * overlapping actions are **coalesced** into one reboot instead of run
//!   twice (a superset in flight simply absorbs the newcomer);
//! * non-conflicting actions run **concurrently**, up to a per-node cap —
//!   K independent faults then recover in ≈ the time of the slowest
//!   single recovery instead of the sum;
//! * a coarser action (application/process/OS restart) **drains** the
//!   in-flight finer ones and **supersedes** the queued ones: it parks at
//!   the queue front as a barrier, absorbing every finer queued ticket,
//!   and starts once the node is quiet;
//! * while component groups are mid-reboot the conductor publishes the
//!   union of their members as the node's **quarantine** set, which the
//!   server's admission check and the load balancer use to shed only the
//!   requests whose call path touches the blast radius.
//!
//! The conductor owes the manager exactly one
//! [`RecoveryManager::recovery_finished`](crate::RecoveryManager) call per
//! submitted action: a finished ticket reports `merged + 1` acknowledgements
//! (itself plus every action coalesced into it), so the manager's in-flight
//! accounting balances no matter how aggressively tickets merge.

use std::collections::BTreeMap;

use components::graph::DependencyGraph;
use components::CompName;
use simcore::telemetry::{RebootLevel, SharedBus, TelemetryEvent};
use simcore::SimTime;
use urb_core::OpCode;

use crate::manager::RecoveryAction;

/// Conductor configuration.
#[derive(Clone, Copy, Debug)]
pub struct ConductorConfig {
    /// How many non-conflicting component microreboots may run
    /// concurrently on one node.
    pub max_concurrent_per_node: usize,
    /// Whether to publish quarantine sets (admission-level shedding of
    /// requests bound for the blast radius).
    pub quarantine: bool,
}

impl Default for ConductorConfig {
    fn default() -> Self {
        ConductorConfig {
            max_concurrent_per_node: 4,
            quarantine: true,
        }
    }
}

/// Identifier of a conducted recovery ticket.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TicketId(u64);

/// An order to start executing a ticket now.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StartCmd {
    /// The ticket to report back via [`Conductor::on_finished`].
    pub ticket: TicketId,
    /// The action to execute (microreboots carry the expanded group).
    pub action: RecoveryAction,
}

/// What became of a submitted action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Submission {
    /// Run it now.
    Started(StartCmd),
    /// Deferred behind a conflicting in-flight or queued recovery.
    Queued(TicketId),
    /// Merged into an overlapping ticket; nothing new to execute.
    Coalesced(TicketId),
}

/// Result of finishing a ticket.
#[derive(Clone, Debug, Default)]
pub struct Finished {
    /// How many manager acknowledgements this ticket settles (itself plus
    /// every action coalesced into it).
    pub acks: u32,
    /// Queued tickets promoted to running by this completion.
    pub start: Vec<StartCmd>,
}

struct Ticket {
    id: TicketId,
    level: RebootLevel,
    action: RecoveryAction,
    /// Expanded recovery-group members (component level; empty coarse).
    members: Vec<CompName>,
    /// Bitmask over operation codes whose call path touches `members`.
    mask: u64,
    /// Actions coalesced into this ticket.
    merged: u32,
}

impl Ticket {
    fn is_component(&self) -> bool {
        self.level == RebootLevel::Component
    }

    /// True if this ticket already covers a component action on `members`
    /// (coarse tickets cover everything on the node).
    fn covers(&self, members: &[CompName]) -> bool {
        !self.is_component() || members.iter().all(|m| self.members.contains(m))
    }

    fn conflicts(&self, other: &Ticket) -> bool {
        if !self.is_component() || !other.is_component() {
            return true;
        }
        self.mask & other.mask != 0 || self.members.iter().any(|m| other.members.contains(m))
    }
}

#[derive(Default)]
struct NodeSched {
    active: Vec<Ticket>,
    queue: Vec<Ticket>,
}

/// The conductor: one per cluster, scheduling per node.
pub struct Conductor {
    config: ConductorConfig,
    /// Component → its full recovery group (sorted).
    group_of: BTreeMap<CompName, Vec<CompName>>,
    /// Component → bitmask of the operations whose call path contains it.
    op_mask: BTreeMap<CompName, u64>,
    sched: Vec<NodeSched>,
    /// Last published quarantine size per node (transition detection).
    q_members: Vec<u32>,
    next_ticket: u64,
    bus: Option<SharedBus>,
}

impl Conductor {
    /// Builds a conductor for `nodes` nodes from the application's
    /// dependency graph and its URL-prefix → component-path map.
    pub fn new(
        nodes: usize,
        config: ConductorConfig,
        graph: &DependencyGraph,
        path_of: fn(OpCode) -> &'static [&'static str],
    ) -> Self {
        let mut group_of = BTreeMap::new();
        for group in graph.recovery_groups() {
            let names: Vec<CompName> = group
                .iter()
                .map(|id| CompName::intern(graph.name_of(*id)))
                .collect();
            for m in &names {
                group_of.insert(*m, names.clone());
            }
        }
        // One bit per operation code; the map is static, so this is the
        // whole conflict-relevant universe (ops ≥ 64 would need a wider
        // mask, far beyond eBid's 25).
        let mut op_mask: BTreeMap<CompName, u64> = BTreeMap::new();
        for op in 0u16..64 {
            for comp in (path_of)(OpCode(op)) {
                *op_mask.entry(CompName::intern(comp)).or_insert(0) |= 1 << op;
            }
        }
        Conductor {
            config,
            group_of,
            op_mask,
            sched: (0..nodes).map(|_| NodeSched::default()).collect(),
            q_members: vec![0; nodes],
            next_ticket: 0,
            bus: None,
        }
    }

    /// Attaches a telemetry bus for the conductor's own events.
    pub fn attach_telemetry(&mut self, bus: SharedBus) {
        self.bus = Some(bus);
    }

    /// Returns the conductor configuration.
    pub fn config(&self) -> ConductorConfig {
        self.config
    }

    fn emit(bus: &Option<SharedBus>, ev: TelemetryEvent) {
        if let Some(bus) = bus {
            bus.borrow_mut().emit(&ev);
        }
    }

    fn alloc_id(&mut self) -> TicketId {
        self.next_ticket += 1;
        TicketId(self.next_ticket)
    }

    fn level_of(action: &RecoveryAction) -> RebootLevel {
        match action {
            RecoveryAction::Microreboot { .. } => RebootLevel::Component,
            RecoveryAction::RestartApp => RebootLevel::Application,
            RecoveryAction::RestartProcess => RebootLevel::Process,
            // NotifyHuman, Isolate and Failover normally bypass the
            // conductor (the executor handles them directly); if submitted
            // anyway they are treated as maximally exclusive.
            RecoveryAction::RebootOs
            | RecoveryAction::NotifyHuman
            | RecoveryAction::Isolate { .. }
            | RecoveryAction::Failover => RebootLevel::OperatingSystem,
        }
    }

    /// Expands component names to the union of their recovery groups.
    pub fn expand(&self, components: &[CompName]) -> Vec<CompName> {
        let mut members: Vec<CompName> = Vec::new();
        for c in components {
            match self.group_of.get(c) {
                Some(group) => {
                    for m in group {
                        if !members.contains(m) {
                            members.push(*m);
                        }
                    }
                }
                None => {
                    if !members.contains(c) {
                        members.push(*c);
                    }
                }
            }
        }
        // Sort by name, not symbol id: symbol ids depend on global
        // interning order, and member order is visible in logs and traces.
        members.sort_unstable_by_key(|m| m.as_str());
        members
    }

    fn mask_of(&self, members: &[CompName]) -> u64 {
        members
            .iter()
            .map(|m| self.op_mask.get(m).copied().unwrap_or(0))
            .fold(0, |acc, m| acc | m)
    }

    /// Whether microreboots of the two (already expanded) member sets
    /// conflict: overlapping members, or a shared call path. This is the
    /// scheduling hot path the conductor bench exercises.
    pub fn conflict_between(&self, a: &[CompName], b: &[CompName]) -> bool {
        self.mask_of(a) & self.mask_of(b) != 0 || a.iter().any(|m| b.contains(m))
    }

    /// Submits a manager decision for `node`, returning what to do with it.
    pub fn submit(&mut self, node: usize, action: RecoveryAction, now: SimTime) -> Submission {
        let level = Self::level_of(&action);
        if level == RebootLevel::Component {
            let RecoveryAction::Microreboot { components } = &action else {
                unreachable!("component level implies a microreboot action");
            };
            let members = self.expand(components);
            let mask = self.mask_of(&members);
            self.submit_component(node, members, mask, now)
        } else {
            self.submit_coarse(node, level, action, now)
        }
    }

    fn submit_component(
        &mut self,
        node: usize,
        members: Vec<CompName>,
        mask: u64,
        now: SimTime,
    ) -> Submission {
        let id = self.alloc_id();
        let cap = self.config.max_concurrent_per_node.max(1);
        let sched = &mut self.sched[node];
        // An in-flight or queued ticket that already covers the whole
        // group absorbs the action — the reboot it wants is happening (or
        // about to). This is also what makes re-diagnosis of a fault whose
        // cure is still in flight harmless: it coalesces instead of
        // double-killing.
        if let Some(t) = sched
            .active
            .iter_mut()
            .chain(sched.queue.iter_mut())
            .find(|t| t.covers(&members))
        {
            t.merged += 1;
            let tid = t.id;
            Self::emit(
                &self.bus,
                TelemetryEvent::RecoveryCoalesced { node, at: now },
            );
            return Submission::Coalesced(tid);
        }
        // A *queued* ticket with overlapping members merges: the two blast
        // radii intersect, so they could never run concurrently — one
        // union reboot is strictly cheaper than two serial ones.
        if let Some(t) = sched
            .queue
            .iter_mut()
            .find(|t| t.is_component() && members.iter().any(|m| t.members.contains(m)))
        {
            for m in members {
                if !t.members.contains(&m) {
                    t.members.push(m);
                }
            }
            t.members.sort_unstable_by_key(|m| m.as_str());
            t.mask |= mask;
            t.merged += 1;
            t.action = RecoveryAction::Microreboot {
                components: t.members.clone(),
            };
            let tid = t.id;
            Self::emit(
                &self.bus,
                TelemetryEvent::RecoveryCoalesced { node, at: now },
            );
            return Submission::Coalesced(tid);
        }
        let ticket = Ticket {
            id,
            level: RebootLevel::Component,
            action: RecoveryAction::Microreboot {
                components: members.clone(),
            },
            members,
            mask,
            merged: 0,
        };
        // Start only when there is capacity and no conflict with anything
        // in flight *or* queued ahead (jumping a conflicting queued ticket
        // would reorder recoveries of the same resources).
        let clear = sched.active.len() < cap
            && !sched
                .active
                .iter()
                .chain(sched.queue.iter())
                .any(|t| t.conflicts(&ticket));
        if clear {
            let cmd = StartCmd {
                ticket: ticket.id,
                action: ticket.action.clone(),
            };
            sched.active.push(ticket);
            self.sync_quarantine(node, now);
            Submission::Started(cmd)
        } else {
            Self::emit(
                &self.bus,
                TelemetryEvent::RecoveryQueued {
                    node,
                    level: RebootLevel::Component,
                    at: now,
                },
            );
            sched.queue.push(ticket);
            Submission::Queued(id)
        }
    }

    fn submit_coarse(
        &mut self,
        node: usize,
        level: RebootLevel,
        action: RecoveryAction,
        now: SimTime,
    ) -> Submission {
        let id = self.alloc_id();
        let sched = &mut self.sched[node];
        // An equal-or-coarser restart already pending covers this one.
        if let Some(t) = sched
            .active
            .iter_mut()
            .chain(sched.queue.iter_mut())
            .find(|t| !t.is_component() && t.level >= level)
        {
            t.merged += 1;
            let tid = t.id;
            Self::emit(
                &self.bus,
                TelemetryEvent::RecoveryCoalesced { node, at: now },
            );
            return Submission::Coalesced(tid);
        }
        // Supersede every strictly finer *queued* ticket: the coarse
        // restart reboots their blast radius wholesale, so they will never
        // run — but their acknowledgements are inherited, keeping the
        // manager's in-flight count balanced.
        let mut merged = 0u32;
        let mut absorbed = 0usize;
        sched.queue.retain(|t| {
            if t.level < level {
                merged += t.merged + 1;
                absorbed += 1;
                false
            } else {
                true
            }
        });
        for _ in 0..absorbed {
            Self::emit(
                &self.bus,
                TelemetryEvent::RecoveryCoalesced { node, at: now },
            );
        }
        let ticket = Ticket {
            id,
            level,
            action,
            members: Vec::new(),
            mask: u64::MAX,
            merged,
        };
        let sched = &mut self.sched[node];
        if sched.active.is_empty() {
            let cmd = StartCmd {
                ticket: ticket.id,
                action: ticket.action.clone(),
            };
            sched.active.push(ticket);
            Submission::Started(cmd)
        } else {
            // Drain: the in-flight finer recoveries run out while the
            // coarse ticket barriers the queue front.
            Self::emit(
                &self.bus,
                TelemetryEvent::RecoveryQueued {
                    node,
                    level,
                    at: now,
                },
            );
            sched.queue.insert(0, ticket);
            Submission::Queued(id)
        }
    }

    /// Reports a started ticket as finished; returns how many manager
    /// acknowledgements it settles and which queued tickets start now.
    pub fn on_finished(&mut self, node: usize, id: TicketId, now: SimTime) -> Finished {
        let sched = &mut self.sched[node];
        let Some(pos) = sched.active.iter().position(|t| t.id == id) else {
            return Finished::default();
        };
        let done = sched.active.remove(pos);
        let acks = done.merged + 1;
        let cap = self.config.max_concurrent_per_node.max(1);
        let mut start = Vec::new();
        let mut i = 0;
        while i < sched.queue.len() {
            if !sched.queue[i].is_component() {
                if sched.active.is_empty() {
                    let t = sched.queue.remove(i);
                    start.push(StartCmd {
                        ticket: t.id,
                        action: t.action.clone(),
                    });
                    sched.active.push(t);
                }
                // Either way a coarse ticket is a barrier: nothing behind
                // it may jump ahead of it.
                break;
            }
            let clear = sched.active.len() < cap
                && !sched.active.iter().any(|a| a.conflicts(&sched.queue[i]))
                && !sched.queue[..i]
                    .iter()
                    .any(|e| e.conflicts(&sched.queue[i]));
            if clear {
                let t = sched.queue.remove(i);
                start.push(StartCmd {
                    ticket: t.id,
                    action: t.action.clone(),
                });
                sched.active.push(t);
            } else {
                i += 1;
            }
        }
        self.sync_quarantine(node, now);
        Finished { acks, start }
    }

    /// The node's current quarantine set: the union of all in-flight
    /// component-level recovery groups (empty when quarantine is off).
    pub fn quarantined(&self, node: usize) -> Vec<CompName> {
        if !self.config.quarantine {
            return Vec::new();
        }
        let mut v: Vec<CompName> = self.sched[node]
            .active
            .iter()
            .filter(|t| t.is_component())
            .flat_map(|t| t.members.iter().copied())
            .collect();
        v.sort_unstable_by_key(|m| m.as_str());
        v.dedup();
        v
    }

    /// Emits `QuarantineOn`/`QuarantineOff` on blast-radius transitions.
    fn sync_quarantine(&mut self, node: usize, now: SimTime) {
        if !self.config.quarantine {
            return;
        }
        let n = self.quarantined(node).len() as u32;
        let prev = self.q_members[node];
        if n == prev {
            return;
        }
        self.q_members[node] = n;
        let ev = if n == 0 {
            TelemetryEvent::QuarantineOff { node, at: now }
        } else {
            TelemetryEvent::QuarantineOn {
                node,
                members: n,
                at: now,
            }
        };
        Self::emit(&self.bus, ev);
    }

    /// Returns how many tickets are running on `node`.
    pub fn active_count(&self, node: usize) -> usize {
        self.sched[node].active.len()
    }

    /// Returns how many tickets are queued on `node`.
    pub fn queued_count(&self, node: usize) -> usize {
        self.sched[node].queue.len()
    }

    /// Returns true if a coarse (non-component) recovery is running.
    pub fn has_coarse_active(&self, node: usize) -> bool {
        self.sched[node].active.iter().any(|t| !t.is_component())
    }

    /// Returns true if any component microreboot is running.
    pub fn has_component_active(&self, node: usize) -> bool {
        self.sched[node].active.iter().any(|t| t.is_component())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use components::descriptor::{ComponentDescriptor, ComponentKind};

    fn graph() -> DependencyGraph {
        let d = |name, group: &'static [&'static str]| {
            ComponentDescriptor::new(name, ComponentKind::EntityBean).with_group_refs(group)
        };
        DependencyGraph::build(&[
            ComponentDescriptor::new("W", ComponentKind::Web),
            d("A", &["B"]),
            d("B", &[]),
            d("C", &[]),
            d("D", &[]),
        ])
        .unwrap()
    }

    fn path(op: OpCode) -> &'static [&'static str] {
        match op.0 {
            0 => &["W", "A"],
            1 => &["W", "C"],
            2 => &["W", "D"],
            3 => &["W", "C", "D"],
            _ => &[],
        }
    }

    fn conductor(cap: usize) -> Conductor {
        Conductor::new(
            1,
            ConductorConfig {
                max_concurrent_per_node: cap,
                quarantine: true,
            },
            &graph(),
            path,
        )
    }

    fn mrb(names: &[&'static str]) -> RecoveryAction {
        RecoveryAction::microreboot(names)
    }

    fn t0() -> SimTime {
        SimTime::from_secs(1)
    }

    #[test]
    fn disjoint_microreboots_run_concurrently() {
        let mut c = conductor(4);
        let a = c.submit(0, mrb(&["A"]), t0());
        let b = c.submit(0, mrb(&["C"]), t0());
        assert!(matches!(a, Submission::Started(_)));
        assert!(matches!(b, Submission::Started(_)));
        assert_eq!(c.active_count(0), 2);
    }

    #[test]
    fn group_expansion_feeds_conflict_detection() {
        let mut c = conductor(4);
        // A expands to {A, B}; a reboot of B overlaps it and coalesces.
        let Submission::Started(cmd) = c.submit(0, mrb(&["A"]), t0()) else {
            panic!("first action starts");
        };
        assert_eq!(cmd.action, mrb(&["A", "B"]));
        let b = c.submit(0, mrb(&["B"]), t0());
        assert_eq!(b, Submission::Coalesced(cmd.ticket));
        // Coalesced actions owe one ack each.
        let fin = c.on_finished(0, cmd.ticket, t0());
        assert_eq!(fin.acks, 2);
    }

    #[test]
    fn shared_call_path_serializes() {
        let mut c = conductor(4);
        // C and D are member-disjoint but share op 3's path.
        assert!(matches!(
            c.submit(0, mrb(&["C"]), t0()),
            Submission::Started(_)
        ));
        let d = c.submit(0, mrb(&["D"]), t0());
        assert!(matches!(d, Submission::Queued(_)));
        assert_eq!(c.queued_count(0), 1);
    }

    #[test]
    fn capacity_limits_concurrency_and_finish_promotes() {
        let mut c = conductor(1);
        let Submission::Started(first) = c.submit(0, mrb(&["A"]), t0()) else {
            panic!("first action starts");
        };
        assert!(matches!(
            c.submit(0, mrb(&["C"]), t0()),
            Submission::Queued(_)
        ));
        let fin = c.on_finished(0, first.ticket, t0());
        assert_eq!(fin.acks, 1);
        assert_eq!(fin.start.len(), 1);
        assert_eq!(fin.start[0].action, mrb(&["C"]));
        assert_eq!(c.active_count(0), 1);
        assert_eq!(c.queued_count(0), 0);
    }

    #[test]
    fn overlapping_queued_tickets_merge() {
        let mut c = conductor(1);
        let Submission::Started(first) = c.submit(0, mrb(&["C"]), t0()) else {
            panic!("first action starts");
        };
        // Two queued overlapping reboots merge into one union ticket.
        assert!(matches!(
            c.submit(0, mrb(&["A"]), t0()),
            Submission::Queued(_)
        ));
        assert!(matches!(
            c.submit(0, mrb(&["B"]), t0()),
            Submission::Coalesced(_)
        ));
        assert_eq!(c.queued_count(0), 1);
        let fin = c.on_finished(0, first.ticket, t0());
        assert_eq!(fin.start.len(), 1);
        assert_eq!(fin.start[0].action, mrb(&["A", "B"]));
        // The merged ticket settles both submissions when it finishes.
        let fin = c.on_finished(0, fin.start[0].ticket, t0());
        assert_eq!(fin.acks, 2);
    }

    #[test]
    fn coarse_drains_actives_and_supersedes_queued() {
        let mut c = conductor(4);
        let Submission::Started(a) = c.submit(0, mrb(&["A"]), t0()) else {
            panic!("first action starts");
        };
        let Submission::Started(_c2) = c.submit(0, mrb(&["C"]), t0()) else {
            panic!("second action starts");
        };
        // D conflicts with C (op 3) and queues.
        assert!(matches!(
            c.submit(0, mrb(&["D"]), t0()),
            Submission::Queued(_)
        ));
        // The app restart absorbs queued D and barriers the queue front.
        let r = c.submit(0, RecoveryAction::RestartApp, t0());
        assert!(matches!(r, Submission::Queued(_)));
        assert_eq!(c.queued_count(0), 1, "queued D superseded");
        // Draining one active does not start the coarse ticket yet...
        let fin = c.on_finished(0, a.ticket, t0());
        assert!(fin.start.is_empty());
        // ...draining the last one does, and it carries D's ack.
        let fin = c.on_finished(0, _c2.ticket, t0());
        assert_eq!(fin.start.len(), 1);
        assert_eq!(fin.start[0].action, RecoveryAction::RestartApp);
        assert!(c.has_coarse_active(0));
        let fin = c.on_finished(0, fin.start[0].ticket, t0());
        assert_eq!(fin.acks, 2, "the restart settles itself and D");
    }

    #[test]
    fn component_submitted_behind_coarse_barrier_coalesces_into_it() {
        let mut c = conductor(4);
        let Submission::Started(a) = c.submit(0, mrb(&["A"]), t0()) else {
            panic!("first action starts");
        };
        let Submission::Queued(restart) = c.submit(0, RecoveryAction::RestartApp, t0()) else {
            panic!("restart drains the in-flight microreboot");
        };
        // A fresh microreboot of C is covered by the pending restart: it
        // merges instead of queueing behind the barrier.
        assert_eq!(
            c.submit(0, mrb(&["C"]), t0()),
            Submission::Coalesced(restart)
        );
        assert_eq!(c.queued_count(0), 1);
        let fin = c.on_finished(0, a.ticket, t0());
        assert_eq!(fin.start.len(), 1);
        assert_eq!(fin.start[0].action, RecoveryAction::RestartApp);
        let fin = c.on_finished(0, fin.start[0].ticket, t0());
        assert_eq!(fin.acks, 2, "the restart settles itself and C");
    }

    #[test]
    fn coarse_coalesces_into_equal_or_coarser() {
        let mut c = conductor(4);
        let Submission::Started(first) = c.submit(0, RecoveryAction::RestartProcess, t0()) else {
            panic!("restart starts on an idle node");
        };
        assert_eq!(
            c.submit(0, RecoveryAction::RestartApp, t0()),
            Submission::Coalesced(first.ticket)
        );
        assert_eq!(
            c.submit(0, RecoveryAction::RestartProcess, t0()),
            Submission::Coalesced(first.ticket)
        );
        let fin = c.on_finished(0, first.ticket, t0());
        assert_eq!(fin.acks, 3);
    }

    #[test]
    fn quarantine_tracks_active_members() {
        let mut c = conductor(4);
        let Submission::Started(cmd) = c.submit(0, mrb(&["A"]), t0()) else {
            panic!("first action starts");
        };
        let q: Vec<&str> = c.quarantined(0).iter().map(|m| m.as_str()).collect();
        assert_eq!(q, vec!["A", "B"]);
        c.on_finished(0, cmd.ticket, t0());
        assert!(c.quarantined(0).is_empty());
    }
}
