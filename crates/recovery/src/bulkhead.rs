//! Bulkhead recovery: wall off the failing compartment before rebooting
//! anything.
//!
//! Generalizes the conductor's quarantine into a first-class recovery
//! rung: the first response to failure evidence is an [`Isolate`] action
//! — admission control sheds the suspect components' traffic for a hold
//! period while the rest of the application keeps serving. Only when the
//! evidence survives the isolation hold does the bulkhead fall back to
//! reboots (suspect microreboot → process → OS), so transient faults cost
//! zero reboot-seconds.
//!
//! [`Isolate`]: RecoveryAction::Isolate

use simcore::telemetry::{DecisionKind, TelemetryEvent};
use simcore::SimTime;
use workload::detect::FailureReport;

use crate::manager::{RecoveryAction, RmConfig};
use crate::policy::{Evidence, PathOf, PolicyCtx, PolicyLevel, RecoveryPolicy};

#[derive(Debug, Default)]
struct Node {
    ev: Evidence,
    /// Escalation rung: 0 isolate, 1 microreboot, 2 process, 3 OS,
    /// 4 page-once-then-process.
    rung: u8,
    in_flight: usize,
    paged: bool,
}

/// Bulkhead/admission-isolation policy (see module docs).
// urb-lint: volatile-state(crash)
pub struct BulkheadPolicy {
    // urb-lint: allow(S001) — immutable policy configuration; a ReHype reboot reloads it from the build.
    config: RmConfig,
    // urb-lint: allow(S001) — immutable policy configuration; a ReHype reboot reloads it from the build.
    path_of: PathOf,
    // urb-lint: allow(S001) — immutable policy configuration; a ReHype reboot reloads it from the build.
    web: &'static str,
    nodes: Vec<Node>,
}

impl BulkheadPolicy {
    /// Creates the bulkhead for `nodes` nodes.
    pub fn new(nodes: usize, config: RmConfig, path_of: PathOf, web: &'static str) -> Self {
        BulkheadPolicy {
            config,
            path_of,
            web,
            nodes: (0..nodes).map(|_| Node::default()).collect(),
        }
    }
}

impl RecoveryPolicy for BulkheadPolicy {
    fn name(&self) -> &'static str {
        "bulkhead"
    }

    fn observe(&mut self, r: &FailureReport, _ctx: &mut PolicyCtx<'_>) {
        if let Some(node) = self.nodes.get_mut(r.node) {
            node.ev.observe(r, self.config.settle);
        }
    }

    fn decide(
        &mut self,
        node_idx: usize,
        now: SimTime,
        ctx: &mut PolicyCtx<'_>,
    ) -> Option<RecoveryAction> {
        let config = self.config;
        let path_of = self.path_of;
        let web = self.web;
        let node = self.nodes.get_mut(node_idx)?;
        if node.in_flight > 0 {
            return None;
        }
        node.ev
            .prune(now, config.score_window + config.detection_delay);
        if !node.ev.enough(config.score_threshold, path_of, web) {
            return None;
        }
        let first = node.ev.first_report_at?;
        if now - first < config.detection_delay {
            return None;
        }
        // Ladder bookkeeping: evidence surviving a completed action (past
        // settle, inside observation) escalates; a fresh burst after a
        // quiet spell restarts at the isolation rung.
        if let Some(end) = node.ev.last_recovery_end {
            if first <= end + config.settle + config.observation {
                node.rung = (node.rung + 1).min(4);
            } else {
                node.rung = 0;
                node.paged = false;
            }
        }
        // Connection-level failures: nothing to admission-control — the
        // process is gone; jump straight to reviving it.
        let (network, other) = node.ev.counts();
        if network > other && node.rung < 2 {
            node.rung = 2;
        }
        let (action, decision) = match node.rung {
            0 => match node.ev.suspect(path_of, web) {
                Some(c) => (RecoveryAction::isolate(&[c]), DecisionKind::Isolate),
                None => (RecoveryAction::isolate(&[web]), DecisionKind::Isolate),
            },
            1 => match node.ev.suspect(path_of, web) {
                Some(c) => (
                    RecoveryAction::microreboot(&[c]),
                    DecisionKind::EjbMicroreboot,
                ),
                None => (
                    RecoveryAction::microreboot(&[web]),
                    DecisionKind::WarMicroreboot,
                ),
            },
            2 => (RecoveryAction::RestartProcess, DecisionKind::ProcessRestart),
            3 => (RecoveryAction::RebootOs, DecisionKind::OsReboot),
            _ => {
                if node.paged {
                    (RecoveryAction::RestartProcess, DecisionKind::ProcessRestart)
                } else {
                    node.paged = true;
                    (RecoveryAction::NotifyHuman, DecisionKind::NotifyHuman)
                }
            }
        };
        ctx.emit(TelemetryEvent::RecoveryDecision {
            node: node_idx,
            decision,
            at: now,
        });
        node.in_flight += 1;
        node.ev.clear();
        Some(action)
    }

    fn recovery_finished(&mut self, node_idx: usize, now: SimTime, _ctx: &mut PolicyCtx<'_>) {
        let Some(node) = self.nodes.get_mut(node_idx) else {
            return;
        };
        node.in_flight = node.in_flight.saturating_sub(1);
        node.ev.last_recovery_end = Some(now);
        node.ev.clear();
    }

    fn in_flight(&self, node: usize) -> usize {
        self.nodes.get(node).map_or(0, |n| n.in_flight)
    }

    fn level_of(&self, node: usize) -> PolicyLevel {
        match self.nodes.get(node).map_or(0, |n| n.rung) {
            0 | 1 => PolicyLevel::Ejb,
            2 => PolicyLevel::Process,
            3 => PolicyLevel::Os,
            _ => PolicyLevel::Human,
        }
    }

    fn crash(&mut self, _now: SimTime, _ctx: &mut PolicyCtx<'_>) {
        for node in &mut self.nodes {
            *node = Node::default();
        }
    }
}
