//! The recovery manager (RM) of Section 4.
//!
//! The RM listens for failure reports from the client-side monitors (each
//! carrying the failed URL and failure type), diagnoses by *scoring*: a
//! static URL-prefix → component-path map attributes each failed request
//! to the components on its path, and the component accumulating the most
//! suspicion is recovered first. Diagnosis is deliberately simplistic —
//! "our simplistic approach often yields false positives, but part of our
//! goal is to show that even the mistakes resulting from sloppy diagnosis
//! are tolerable because of the very low cost of µRBs."
//!
//! Recovery follows the **recursive recovery policy**: try the cheapest
//! action first, escalating through progressively larger reboots when the
//! failure persists — EJB microreboot, then the WAR, then the whole
//! application, then the JVM process, then the operating system, then a
//! human (Section 4). Recurring failure patterns also notify a human.
//!
//! The [`conductor`] module schedules the manager's decisions: it expands
//! actions to recovery groups, coalesces overlapping microreboots, runs
//! non-conflicting ones concurrently, and publishes quarantine sets for
//! admission-level shedding during recovery.

#![forbid(unsafe_code)]

pub mod breaker;
pub mod bulkhead;
pub mod conductor;
pub mod failover;
pub mod hedge;
pub mod ladder;
pub mod manager;
pub mod policy;

pub use conductor::{Conductor, ConductorConfig, Finished, StartCmd, Submission, TicketId};
pub use manager::{RecoveryAction, RecoveryManager, RmConfig, RmStats};
pub use policy::{PolicyChoice, PolicyCtx, PolicyLevel, RecoveryPolicy};
