//! The paper's recursive recovery ladder as a [`RecoveryPolicy`].
//!
//! This is the pre-trait `RecoveryManager` decision machinery moved
//! verbatim behind the policy interface: scoring diagnosis over static
//! call paths, the EJB → WAR → App → Process → OS → Human ladder,
//! recurrence paging, and the hardened-mode dampers (storm backoff, flap
//! escalation, convergence watchdog). The pinned seed-7/seed-11 trace
//! digests certify that hosting the ladder behind the trait changed
//! nothing observable.

use std::collections::BTreeMap;

use components::CompName;
use simcore::telemetry::{DecisionKind, TelemetryEvent};
use simcore::{SimDuration, SimTime};
use urb_core::OpCode;
use workload::detect::{FailureKind, FailureReport};

use crate::manager::{RecoveryAction, RmConfig};
use crate::policy::{PathOf, PolicyCtx, PolicyLevel, RecoveryPolicy};

/// Evidence weight of one latency-anomaly report in the diagnosis score.
///
/// An anomaly report is emitted once per judgement window and stands for
/// every slow request in it, whereas an error report stands for a single
/// failed request — without the heavier weight, a fail-slow fault feeding
/// one report per window would take most of a score-window to cross the
/// decision threshold, and re-offending after a microreboot would never
/// accumulate enough evidence to climb the ladder. Classic (error-driven)
/// runs never emit these reports, so their decisions are unchanged.
const ANOMALY_REPORT_WEIGHT: f64 = 3.0;

#[derive(Debug)]
struct NodeDiag {
    /// Recent reports: (time, op for path scoring — `None` for network
    /// failures — the error page's component hint, if any, and the
    /// report's evidence weight). Ordinary failure reports weigh 1.0;
    /// a latency-anomaly report weighs [`ANOMALY_REPORT_WEIGHT`], since
    /// it summarizes a whole judgement window of slow requests rather
    /// than one failed request.
    recent: Vec<(SimTime, Option<OpCode>, Option<CompName>, f64)>,
    first_report_at: Option<SimTime>,
    /// When the current failure *episode* started: like `first_report_at`
    /// but not advanced when issued actions consume their evidence, so
    /// under `max_concurrent > 1` the detection-delay gate measures how
    /// long the node has been failing, not the age of the oldest report
    /// that happens to survive consumption.
    episode_first: Option<SimTime>,
    level: PolicyLevel,
    /// How many issued actions are awaiting `recovery_finished`.
    in_flight: usize,
    /// A coarse action (restart/reboot/human) is in flight: no further
    /// decisions until it is acknowledged, whatever `max_concurrent` says.
    exclusive: bool,
    last_recovery_end: Option<SimTime>,
    episode_ends: Vec<SimTime>,
    /// Per-component microreboot history: when the component was last
    /// microrebooted and how many consecutive microreboots (each within
    /// `flap_window` of the previous) it has accumulated. Deliberately
    /// *not* cleared when the ladder resets after a quiet period — a slow
    /// flap looks exactly like a sequence of fresh episodes.
    urb_history: BTreeMap<CompName, (SimTime, u32)>,
    /// Storm-damper deadlines: no new microreboot of the component before
    /// its deadline.
    damped_until: BTreeMap<CompName, SimTime>,
    /// Watchdog anchor: when the current failure episode began. Survives
    /// `recovery_finished` (an episode spans repeated recoveries) and
    /// resets only when a quiet period resets the ladder.
    episode_anchor: Option<SimTime>,
    /// When a recurring-failure page last went out (hardened mode only).
    last_human_page: Option<SimTime>,
}

impl NodeDiag {
    fn new(start: PolicyLevel) -> Self {
        NodeDiag {
            recent: Vec::new(),
            first_report_at: None,
            episode_first: None,
            level: start,
            in_flight: 0,
            exclusive: false,
            last_recovery_end: None,
            episode_ends: Vec::new(),
            urb_history: BTreeMap::new(),
            damped_until: BTreeMap::new(),
            episode_anchor: None,
            last_human_page: None,
        }
    }

    fn clear_scores(&mut self) {
        self.recent.clear();
        self.first_report_at = None;
        self.episode_first = None;
    }

    fn prune(&mut self, now: SimTime, window: SimDuration) {
        self.recent.retain(|(t, _, _, _)| now - *t <= window);
        if self.recent.is_empty() {
            self.first_report_at = None;
            self.episode_first = None;
        } else {
            self.first_report_at = Some(self.recent[0].0);
        }
    }

    /// Drops the evidence that implicated `components` — each report whose
    /// URL path traverses (or whose hint names) one of them. Called when a
    /// microreboot of `components` is issued under `max_concurrent > 1`,
    /// so the remaining evidence can implicate a *different* concurrent
    /// fault instead of re-diagnosing the one already being cured.
    fn consume(&mut self, components: &[CompName], path_of: PathOf) {
        self.recent.retain(|(_, op, hint, _)| {
            if hint.is_some_and(|h| components.contains(&h)) {
                return false;
            }
            match op {
                None => true,
                Some(op) => !(path_of)(*op)
                    .iter()
                    .any(|c| CompName::lookup(c).is_some_and(|c| components.contains(&c))),
            }
        });
        self.first_report_at = self.recent.first().map(|(t, _, _, _)| *t);
    }
}

/// Picks the most suspicious non-web component from the failure evidence.
///
/// Strategy (static analysis over the URL → path map):
/// 1. Components common to *every* failing URL's path are the prime
///    suspects — the fault must lie where all failing flows meet.
/// 2. Ties break toward the component that appears on the *fewest*
///    paths overall: a component shared by many URLs (IdentityManager,
///    User, ...) would be making other URLs fail too, and they are not
///    failing.
/// 3. If the intersection is empty (noisy evidence), fall back to the
///    rarity-weighted score maximum.
pub(crate) fn pick_suspect(
    failing_ops: &[OpCode],
    scores: &BTreeMap<&'static str, f64>,
    path_of: PathOf,
    web: &'static str,
) -> Option<&'static str> {
    // How many distinct URLs each component serves (IDF weight).
    let paths_containing = |comp: &str| -> usize {
        (0u16..64)
            .map(OpCode)
            .filter(|op| (path_of)(*op).contains(&comp))
            .count()
    };
    if !failing_ops.is_empty() {
        let mut common: Vec<&'static str> = (path_of)(failing_ops[0])
            .iter()
            .copied()
            .filter(|c| *c != web)
            .collect();
        for op in &failing_ops[1..] {
            let path = (path_of)(*op);
            common.retain(|c| path.contains(c));
        }
        common.sort_by_key(|c| (paths_containing(c), *c));
        if let Some(best) = common.first() {
            return Some(best);
        }
    }
    // Fallback: rarity-weighted maximum score.
    let mut best: Option<(&'static str, f64)> = None;
    for (c, s) in scores {
        if *c == web {
            continue;
        }
        let weighted = *s / paths_containing(c).max(1) as f64;
        let better = match best {
            Some((bc, bs)) => weighted > bs || (weighted == bs && *c < bc),
            None => true,
        };
        if better {
            best = Some((c, weighted));
        }
    }
    best.map(|(c, _)| c)
}

/// Maps a ladder rung to the concrete action (and decision kind) the
/// current evidence supports.
pub(crate) fn action_for(
    level: PolicyLevel,
    hinted: Option<&'static str>,
    failing_ops: &[OpCode],
    scores: &BTreeMap<&'static str, f64>,
    path_of: PathOf,
    web: &'static str,
) -> (RecoveryAction, DecisionKind) {
    match level {
        PolicyLevel::Ejb => {
            match hinted.or_else(|| pick_suspect(failing_ops, scores, path_of, web)) {
                Some(comp) => (
                    RecoveryAction::microreboot(&[comp]),
                    DecisionKind::EjbMicroreboot,
                ),
                None => (
                    RecoveryAction::microreboot(&[web]),
                    DecisionKind::WarMicroreboot,
                ),
            }
        }
        PolicyLevel::War => (
            RecoveryAction::microreboot(&[web]),
            DecisionKind::WarMicroreboot,
        ),
        PolicyLevel::App => (RecoveryAction::RestartApp, DecisionKind::AppRestart),
        PolicyLevel::Process => (RecoveryAction::RestartProcess, DecisionKind::ProcessRestart),
        PolicyLevel::Os => (RecoveryAction::RebootOs, DecisionKind::OsReboot),
        PolicyLevel::Human => (RecoveryAction::NotifyHuman, DecisionKind::NotifyHuman),
    }
}

/// The paper's recursive ladder (see module docs).
// urb-lint: volatile-state(crash)
pub struct LadderPolicy {
    config: RmConfig,
    /// URL-prefix → component-path mapping (from static analysis).
    // urb-lint: allow(S001) — immutable policy configuration; a ReHype reboot reloads it from the build.
    path_of: PathOf,
    /// Name of the web component, scored down (it is on every path).
    // urb-lint: allow(S001) — immutable policy configuration; a ReHype reboot reloads it from the build.
    web: &'static str,
    nodes: Vec<NodeDiag>,
}

impl LadderPolicy {
    /// Creates the ladder for `nodes` nodes.
    pub fn new(nodes: usize, config: RmConfig, path_of: PathOf, web: &'static str) -> Self {
        LadderPolicy {
            config,
            path_of,
            web,
            nodes: (0..nodes)
                .map(|_| NodeDiag::new(config.start_level))
                .collect(),
        }
    }

    /// Climbs one rung, emitting [`TelemetryEvent::EscalationSaturated`]
    /// when the ladder is already at `Human` and has nowhere left to go
    /// (previously a silent saturation).
    fn escalate_level(
        ctx: &mut PolicyCtx<'_>,
        node: usize,
        level: PolicyLevel,
        now: SimTime,
    ) -> PolicyLevel {
        if level == PolicyLevel::Human {
            ctx.emit(TelemetryEvent::EscalationSaturated { node, at: now });
        }
        level.escalate()
    }
}

impl RecoveryPolicy for LadderPolicy {
    fn name(&self) -> &'static str {
        if self.config.start_level == PolicyLevel::Process {
            "reboot-first"
        } else {
            "paper-ladder"
        }
    }

    fn observe(&mut self, r: &FailureReport, _ctx: &mut PolicyCtx<'_>) {
        let Some(diag) = self.nodes.get_mut(r.node) else {
            return;
        };
        // Session loss (a login prompt served to a logged-in user) means
        // state was lost — by a restart here, a failover away from a
        // recovering node, or an eviction. No reboot cures it, and acting
        // on it cascades: the recovery would destroy yet more sessions.
        if r.kind == FailureKind::SessionLoss {
            return;
        }
        if let Some(end) = diag.last_recovery_end {
            // Aftershock suppression: the recovery's own collateral damage
            // is not evidence that the fault persists.
            if r.at <= end + self.config.settle {
                return;
            }
        }
        diag.first_report_at.get_or_insert(r.at);
        diag.episode_first.get_or_insert(r.at);
        let weight = if r.kind == FailureKind::LatencyAnomaly {
            ANOMALY_REPORT_WEIGHT
        } else {
            1.0
        };
        match r.kind {
            FailureKind::Network => diag.recent.push((r.at, None, None, weight)),
            _ => diag.recent.push((r.at, Some(r.op), r.hint, weight)),
        }
    }

    /// Decides whether (and how) to recover `node` right now.
    ///
    /// Returns `None` while evidence is insufficient, detection is still
    /// within `Tdet`, or a recovery is already in flight.
    fn decide(
        &mut self,
        node: usize,
        now: SimTime,
        ctx: &mut PolicyCtx<'_>,
    ) -> Option<RecoveryAction> {
        let config = self.config;
        let web = self.web;
        let path_of = self.path_of;
        let diag = self.nodes.get_mut(node)?;
        if diag.exclusive || diag.in_flight >= config.max_concurrent.max(1) {
            return None;
        }
        // Reports must survive at least the configured detection delay,
        // or a large Tdet (Figure 5's sweep) would forget the evidence
        // before it may be acted on.
        diag.prune(now, config.score_window + config.detection_delay);
        // Under the conductor several decisions may be issued per episode,
        // each consuming its suspect's reports; gate on when the episode
        // began, or the surviving (younger) evidence would re-arm Tdet and
        // stagger concurrent diagnoses. Serial runs gate exactly as before.
        let first = if config.max_concurrent > 1 {
            diag.episode_first?
        } else {
            diag.first_report_at?
        };
        if now - first < config.detection_delay {
            return None;
        }
        // Score components along the failed URLs' static call paths. The
        // web component is on every path, so hits on it carry little
        // information.
        let mut scores: BTreeMap<&'static str, f64> = BTreeMap::new();
        let mut failing_ops: Vec<OpCode> = Vec::new();
        let mut network_reports = 0u64;
        let mut other_reports = 0u64;
        for (_, op, hint, rw) in &diag.recent {
            match op {
                None => network_reports += 1,
                Some(op) => {
                    other_reports += 1;
                    if !failing_ops.contains(op) {
                        failing_ops.push(*op);
                    }
                    for comp in (path_of)(*op) {
                        let w = if *comp == web { 0.2 } else { 1.0 };
                        *scores.entry(comp).or_insert(0.0) += w * rw;
                    }
                    // An error page naming the failing bean is far stronger
                    // evidence than path membership. Only weighed in when
                    // running under the conductor (`max_concurrent > 1`):
                    // the serial baseline must keep its exact decisions.
                    if config.max_concurrent > 1 {
                        if let Some(h) = hint {
                            *scores.entry(h.as_str()).or_insert(0.0) += 2.0;
                        }
                    }
                }
            }
        }
        // The evidence must implicate *some single component* strongly
        // enough (or show enough connection-level failures); summing over
        // a whole path would let one failed request trip the threshold.
        let max_score = scores.values().copied().fold(0.0, f64::max);
        let enough =
            max_score >= config.score_threshold || network_reports as f64 >= config.score_threshold;
        if !enough {
            return None;
        }
        // Level bookkeeping: failures shortly after a completed recovery
        // escalate; failures after a quiet period restart the ladder.
        if let Some(end) = diag.last_recovery_end {
            if first <= end + config.settle + config.observation {
                diag.level = Self::escalate_level(ctx, node, diag.level, now);
            } else {
                diag.level = config.start_level;
                diag.episode_anchor = None;
            }
        }
        // Convergence watchdog: an episode that has outlived its bound
        // forces an extra climb on every decision until it converges.
        let anchor = *diag.episode_anchor.get_or_insert(first);
        if let Some(bound) = config.watchdog_bound {
            if now - anchor > bound {
                diag.level = Self::escalate_level(ctx, node, diag.level, now);
                ctx.emit(TelemetryEvent::WatchdogEscalated {
                    node,
                    elapsed: now - anchor,
                    at: now,
                });
            }
        }
        // Recurring failure patterns page a human (Section 4). Without the
        // convergence watchdog this branch absorbs the policy outright,
        // which replicates the paper's serial behaviour — but every
        // notification acks as a completed episode, so once it trips it
        // re-trips forever and the ladder below (including the dead-node
        // Process floor) never runs again. With the watchdog armed the
        // page goes out once per recurrence window and automated first aid
        // continues underneath it: paging an operator must not stop the
        // manager from restarting a process that has since died.
        diag.episode_ends
            .retain(|e| now - *e <= config.recurrence_window);
        if diag.episode_ends.len() as u32 >= config.recurrence_limit {
            let page_suppressed = config.watchdog_bound.is_some()
                && diag
                    .last_human_page
                    .is_some_and(|t| now - t <= config.recurrence_window);
            if !page_suppressed {
                diag.last_human_page = Some(now);
                ctx.emit(TelemetryEvent::RecoveryDecision {
                    node,
                    decision: DecisionKind::NotifyHuman,
                    at: now,
                });
                diag.in_flight += 1;
                diag.exclusive = true;
                return Some(RecoveryAction::NotifyHuman);
            }
        }
        // Connection-level failures mean the process (or node) is gone:
        // component recovery is pointless.
        if network_reports > other_reports && diag.level < PolicyLevel::Process {
            diag.level = PolicyLevel::Process;
        }
        // Dead-node floor (hardened mode): at `Human` the ladder's action
        // is another page, but connection-dominated evidence means the
        // process is dead and no page revives it. Drop back to `Process`
        // so the node is restarted while the operator is on the way.
        if config.watchdog_bound.is_some()
            && diag.level == PolicyLevel::Human
            && network_reports > other_reports
        {
            diag.level = PolicyLevel::Process;
        }
        // Under the conductor, error-page hints name the failing bean
        // outright; trusting the most frequent hint separates overlapping
        // failure streams that path intersection (which sees the union of
        // all failing URLs) cannot. Serial runs never take this shortcut.
        let hinted: Option<&'static str> = if config.max_concurrent > 1 {
            let mut counts: BTreeMap<CompName, u64> = BTreeMap::new();
            for (_, _, hint, _) in &diag.recent {
                if let Some(h) = hint {
                    if h.as_str() != web {
                        *counts.entry(*h).or_insert(0) += 1;
                    }
                }
            }
            counts
                .into_iter()
                .max_by_key(|(c, n)| (*n, std::cmp::Reverse(c.as_str())))
                .map(|(c, _)| c.as_str())
        } else {
            None
        };
        let (mut action, mut decision) =
            action_for(diag.level, hinted, &failing_ops, &scores, path_of, web);
        // Flap-driven escalation: a component that keeps coming back
        // inside the flap window climbs the ladder instead of being
        // microrebooted forever.
        if config.flap_limit > 0 {
            while let RecoveryAction::Microreboot { components } = &action {
                let flaps = components
                    .iter()
                    .filter_map(|c| match diag.urb_history.get(c) {
                        Some((last, strikes)) if now - *last <= config.flap_window => {
                            Some(*strikes)
                        }
                        _ => None,
                    })
                    .max()
                    .unwrap_or(0);
                if flaps < config.flap_limit {
                    break;
                }
                ctx.emit(TelemetryEvent::FlapEscalated {
                    node,
                    flaps,
                    at: now,
                });
                diag.level = Self::escalate_level(ctx, node, diag.level, now);
                (action, decision) =
                    action_for(diag.level, hinted, &failing_ops, &scores, path_of, web);
            }
        }
        // Reboot-storm damper: a component still in backoff defers the
        // whole decision; the evidence is retained, so a later poll
        // retries once the backoff expires.
        if config.storm_limit > 0 {
            if let RecoveryAction::Microreboot { components } = &action {
                diag.damped_until.retain(|_, until| *until > now);
                if let Some(until) = components
                    .iter()
                    .filter_map(|c| diag.damped_until.get(c).copied())
                    .max()
                {
                    let strikes = components
                        .iter()
                        .filter_map(|c| diag.urb_history.get(c).map(|(_, s)| *s))
                        .max()
                        .unwrap_or(0);
                    ctx.emit(TelemetryEvent::StormDamped {
                        node,
                        strikes,
                        backoff: until - now,
                        at: now,
                    });
                    return None;
                }
            }
        }
        ctx.emit(TelemetryEvent::RecoveryDecision {
            node,
            decision,
            at: now,
        });
        diag.in_flight += 1;
        match &action {
            RecoveryAction::Microreboot { components } => {
                if config.storm_limit > 0 || config.flap_limit > 0 {
                    for c in components {
                        let strikes = match diag.urb_history.get(c) {
                            Some((last, s)) if now - *last <= config.flap_window => s + 1,
                            _ => 1,
                        };
                        diag.urb_history.insert(*c, (now, strikes));
                        if config.storm_limit > 0 && strikes >= config.storm_limit {
                            let exp = u64::from((strikes - config.storm_limit).min(6));
                            diag.damped_until
                                .insert(*c, now + config.storm_backoff * (1u64 << exp));
                        }
                    }
                }
                if config.max_concurrent > 1 {
                    diag.consume(components, path_of);
                }
            }
            _ => diag.exclusive = true,
        }
        Some(action)
    }

    /// Marks a commanded recovery as finished, closing the episode.
    ///
    /// With several actions in flight each acknowledgement decrements the
    /// count; the episode bookkeeping (settle window, recurrence history,
    /// score reset) runs per acknowledgement exactly as in the serial
    /// case, so a `max_concurrent = 1` run is indistinguishable from the
    /// pre-conductor manager.
    fn recovery_finished(&mut self, node: usize, now: SimTime, _ctx: &mut PolicyCtx<'_>) {
        let Some(diag) = self.nodes.get_mut(node) else {
            return;
        };
        diag.in_flight = diag.in_flight.saturating_sub(1);
        if diag.in_flight == 0 {
            diag.exclusive = false;
        }
        diag.last_recovery_end = Some(now);
        diag.episode_ends.push(now);
        diag.clear_scores();
    }

    fn in_flight(&self, node: usize) -> usize {
        self.nodes.get(node).map_or(0, |d| d.in_flight)
    }

    fn level_of(&self, node: usize) -> PolicyLevel {
        self.nodes[node].level
    }

    fn crash(&mut self, _now: SimTime, _ctx: &mut PolicyCtx<'_>) {
        // ReHype: the host rebooted and all volatile diagnosis state is
        // gone — including in-flight counts, so late conductor acks land
        // on zero and saturate instead of underflowing.
        let start = self.config.start_level;
        for diag in &mut self.nodes {
            *diag = NodeDiag::new(start);
        }
    }
}
