//! The recovery manager: the host that wires a pluggable
//! [`RecoveryPolicy`] to monitors, telemetry and the executor.
//!
//! The manager owns the metrics registry and the telemetry bus; the
//! hosted policy (the paper's recursive ladder by default — see
//! [`crate::ladder`]) owns all diagnosis state. The host is also what
//! makes the RM itself rebootable (ReHype-style): [`RecoveryManager::crash`]
//! wipes the policy's volatile state while the host survives, and late
//! acknowledgements for pre-crash actions are absorbed safely.

use simcore::telemetry::{SharedBus, TelemetryEvent, TelemetrySink};
use simcore::{MetricsRegistry, SimDuration, SimTime};
use urb_core::OpCode;
use workload::detect::{FailureKind, FailureReport};

use components::CompName;

use crate::policy::{PolicyChoice, PolicyCtx, PolicyLevel, RecoveryPolicy};

/// A recovery action the manager wants executed on a node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Microreboot these components (the server expands recovery groups).
    Microreboot {
        /// Interned component names to reboot — the same symbols the
        /// naming registry keys on, so the conductor's conflict sets and
        /// the server's group expansion agree by identity, not by string.
        components: Vec<CompName>,
    },
    /// Restart the whole application.
    RestartApp,
    /// Restart the JVM process.
    RestartProcess,
    /// Reboot the operating system.
    RebootOs,
    /// Quarantine these components behind admission control instead of
    /// rebooting anything (the bulkhead policy's first rung). The
    /// executor sheds their traffic for a hold period, then acknowledges.
    Isolate {
        /// Interned component names to wall off.
        components: Vec<CompName>,
    },
    /// Redirect the node's traffic to its peers before (instead of)
    /// recovering in place — the failover-first policy's opening move.
    Failover,
    /// Automated recovery is exhausted or failures recur endlessly.
    NotifyHuman,
}

impl RecoveryAction {
    /// Builds a microreboot action from string names, interning them.
    pub fn microreboot(names: &[&'static str]) -> RecoveryAction {
        RecoveryAction::Microreboot {
            components: names.iter().map(|n| CompName::intern(n)).collect(),
        }
    }

    /// Builds an isolation action from string names, interning them.
    pub fn isolate(names: &[&'static str]) -> RecoveryAction {
        RecoveryAction::Isolate {
            components: names.iter().map(|n| CompName::intern(n)).collect(),
        }
    }
}

/// Manager configuration.
#[derive(Clone, Copy, Debug)]
pub struct RmConfig {
    /// Failure reports needed before the manager acts (the hand-tuned
    /// threshold of Section 4).
    pub score_threshold: f64,
    /// Reports older than this are forgotten — scores are computed over a
    /// sliding window so background noise never accumulates into a
    /// spurious recovery.
    pub score_window: SimDuration,
    /// Extra detection delay before acting on the first report (the
    /// `Tdet` knob swept in Figure 5).
    pub detection_delay: SimDuration,
    /// Aftershock suppression: reports arriving within this long of a
    /// completed recovery are ignored — they are the recovery's own damage
    /// (killed requests, 503s during the reboot), not evidence that the
    /// fault persists.
    pub settle: SimDuration,
    /// How long after a recovery completes (past the settle window) new
    /// failures count as "the same problem" and escalate the ladder.
    pub observation: SimDuration,
    /// The rung recovery starts at. `Ejb` is the paper's policy; setting
    /// `Process` reproduces the "recover by JVM restart" baseline runs.
    pub start_level: PolicyLevel,
    /// How many completed recovery episodes within `recurrence_window`
    /// trigger a human notification for a recurring failure pattern.
    pub recurrence_limit: u32,
    /// Window for recurrence detection.
    pub recurrence_window: SimDuration,
    /// How many component microreboots may be in flight per node at once.
    ///
    /// At the default of 1 the manager behaves exactly as the serial
    /// baseline (one decision, then silence until it is acknowledged).
    /// Above 1 — which only makes sense with the conductor executing the
    /// actions — each issued microreboot *consumes* the evidence that
    /// implicated its suspect, so the next `decide` call in the same poll
    /// can diagnose a different concurrent fault from what remains.
    pub max_concurrent: usize,
    /// Reboot-storm damper: once a component has been microrebooted this
    /// many consecutive times (within `flap_window` of each other), an
    /// exponential backoff defers further microreboots of it. `0`
    /// disables the damper (the pre-hardening behaviour).
    pub storm_limit: u32,
    /// Base backoff of the storm damper; doubles with every strike past
    /// `storm_limit`.
    pub storm_backoff: SimDuration,
    /// Flap-driven escalation: a component microrebooted this many times
    /// within `flap_window` escalates the ladder instead of being
    /// microrebooted forever. `0` disables flap escalation.
    ///
    /// The window is deliberately longer than `observation`: a slow flap
    /// (one that recurs after the quiet period resets the ladder) is
    /// exactly the pattern the plain ladder cannot see.
    pub flap_limit: u32,
    /// Window over which same-component microreboots count as a flap.
    pub flap_window: SimDuration,
    /// Convergence watchdog: a failure episode older than this bound
    /// forces an extra escalation on every decision until it converges.
    /// `None` disables the watchdog.
    pub watchdog_bound: Option<SimDuration>,
}

impl Default for RmConfig {
    fn default() -> Self {
        RmConfig {
            score_threshold: 6.0,
            score_window: SimDuration::from_secs(10),
            detection_delay: SimDuration::ZERO,
            settle: SimDuration::from_secs(3),
            observation: SimDuration::from_secs(30),
            start_level: PolicyLevel::Ejb,
            recurrence_limit: 8,
            recurrence_window: SimDuration::from_secs(120),
            max_concurrent: 1,
            storm_limit: 0,
            storm_backoff: SimDuration::from_secs(5),
            flap_limit: 0,
            flap_window: SimDuration::from_secs(300),
            watchdog_bound: None,
        }
    }
}

/// Lifetime counters.
///
/// A *view* over the manager's [`MetricsRegistry`]: the manager folds
/// every emitted [`TelemetryEvent`] into the registry and
/// [`RmStats::from_registry`] materialises the classic counter struct
/// from registry reads.
#[derive(Clone, Copy, Debug, Default)]
pub struct RmStats {
    /// Reports received.
    pub reports: u64,
    /// EJB microreboots commanded.
    pub ejb_microreboots: u64,
    /// WAR microreboots commanded.
    pub war_microreboots: u64,
    /// Application restarts commanded.
    pub app_restarts: u64,
    /// Process restarts commanded.
    pub process_restarts: u64,
    /// OS reboots commanded.
    pub os_reboots: u64,
    /// Human notifications raised.
    pub human_notifications: u64,
    /// Escalations requested while the ladder was already at `Human`
    /// (automated recovery exhausted; previously silent).
    pub escalations_saturated: u64,
    /// Microreboot decisions deferred by the reboot-storm damper.
    pub storm_damped: u64,
    /// Escalations forced by flap detection.
    pub flap_escalations: u64,
    /// Escalations forced by the convergence watchdog.
    pub watchdog_escalations: u64,
}

impl RmStats {
    /// Reads the classic counter struct out of the manager's registry.
    pub fn from_registry(reg: &MetricsRegistry) -> Self {
        use simcore::symbol;
        RmStats {
            reports: reg.counter_sym(symbol::DETECTOR_FIRES),
            ejb_microreboots: reg.counter_sym(symbol::DECISIONS_EJB_MICROREBOOT),
            war_microreboots: reg.counter_sym(symbol::DECISIONS_WAR_MICROREBOOT),
            app_restarts: reg.counter_sym(symbol::DECISIONS_APP_RESTART),
            process_restarts: reg.counter_sym(symbol::DECISIONS_PROCESS_RESTART),
            os_reboots: reg.counter_sym(symbol::DECISIONS_OS_REBOOT),
            human_notifications: reg.counter_sym(symbol::DECISIONS_NOTIFY_HUMAN),
            escalations_saturated: reg.counter_sym(symbol::ESCALATIONS_SATURATED),
            storm_damped: reg.counter_sym(symbol::STORM_DAMPED),
            flap_escalations: reg.counter_sym(symbol::FLAP_ESCALATIONS),
            watchdog_escalations: reg.counter_sym(symbol::WATCHDOG_ESCALATIONS),
        }
    }
}

/// The recovery manager: telemetry plumbing around a hosted
/// [`RecoveryPolicy`].
///
/// One manager oversees a whole cluster; diagnosis state lives in the
/// policy, per node. The simulation forwards monitor reports via
/// [`RecoveryManager::report`], polls [`RecoveryManager::decide`], and
/// acknowledges completed actions via
/// [`RecoveryManager::recovery_finished`].
// urb-lint: volatile-state(crash)
pub struct RecoveryManager {
    // urb-lint: allow(S001) — registry identity, not diagnosis state: a ReHype reboot restarts the same policy.
    choice: PolicyChoice,
    policy: Box<dyn RecoveryPolicy>,
    metrics: MetricsRegistry,
    bus: Option<SharedBus>,
    // urb-lint: allow(S001) — an evidence tally for the run report, not diagnosis state a reboot must clear.
    store_evidence: u64,
}

impl RecoveryManager {
    /// Creates a manager hosting the paper's ladder — the pinned-digest
    /// default, bit-identical to the pre-trait manager.
    pub fn new(
        nodes: usize,
        config: RmConfig,
        path_of: fn(OpCode) -> &'static [&'static str],
        web: &'static str,
    ) -> Self {
        Self::with_policy(PolicyChoice::Ladder, nodes, config, path_of, web, 0)
    }

    /// Creates a manager hosting the named policy.
    pub fn with_policy(
        choice: PolicyChoice,
        nodes: usize,
        config: RmConfig,
        path_of: fn(OpCode) -> &'static [&'static str],
        web: &'static str,
        seed: u64,
    ) -> Self {
        RecoveryManager {
            choice,
            policy: choice.build(nodes, config, path_of, web, seed),
            metrics: MetricsRegistry::new(),
            bus: None,
            store_evidence: 0,
        }
    }

    /// Attaches a telemetry bus: every event the manager emits is
    /// forwarded to it (in addition to updating the local counters).
    ///
    /// Non-default policies announce themselves with a `PolicyArmed`
    /// event; the ladder stays silent so pinned baseline traces are
    /// byte-identical to the pre-trait manager's.
    pub fn attach_telemetry(&mut self, bus: SharedBus) {
        self.bus = Some(bus);
        if self.choice != PolicyChoice::Ladder {
            let ev = TelemetryEvent::PolicyArmed {
                policy: self.choice.code(),
                at: SimTime::ZERO,
            };
            self.metrics.on_event(&ev);
            if let Some(bus) = &self.bus {
                bus.borrow_mut().emit(&ev);
            }
        }
    }

    /// Returns the hosted policy's registry choice.
    pub fn policy_choice(&self) -> PolicyChoice {
        self.choice
    }

    /// Returns lifetime counters (a view over the metrics registry).
    pub fn stats(&self) -> RmStats {
        RmStats::from_registry(&self.metrics)
    }

    /// Returns the manager's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Returns the node's current ladder rung.
    pub fn level_of(&self, node: usize) -> PolicyLevel {
        self.policy.level_of(node)
    }

    /// Actions issued on `node` still awaiting `recovery_finished`.
    pub fn in_flight(&self, node: usize) -> usize {
        self.policy.in_flight(node)
    }

    /// Ingests one failure report from a monitor.
    pub fn report(&mut self, r: &FailureReport) {
        let mut ctx = PolicyCtx {
            metrics: &mut self.metrics,
            bus: &self.bus,
        };
        ctx.emit(TelemetryEvent::DetectorFired {
            node: r.node,
            op: r.op.0,
            at: r.at,
        });
        // Store-attributed failures are evidence against the state store,
        // not the component that happened to touch it: feeding them to the
        // policy would microreboot a healthy EJB every time the SSM brick
        // or the node↔store link is the culprit (the paper's "recover the
        // faulty part, not the innocent bystander"). Tally and stop.
        if r.kind == FailureKind::StateStore {
            self.store_evidence += 1;
            return;
        }
        self.policy.observe(r, &mut ctx);
    }

    /// Reports attributed to the state store rather than any component
    /// (withheld from the hosted policy).
    pub fn store_evidence(&self) -> u64 {
        self.store_evidence
    }

    /// Decides whether (and how) to recover `node` right now.
    ///
    /// Returns `None` while evidence is insufficient, detection is still
    /// within `Tdet`, or a recovery is already in flight.
    pub fn decide(&mut self, node: usize, now: SimTime) -> Option<RecoveryAction> {
        let mut ctx = PolicyCtx {
            metrics: &mut self.metrics,
            bus: &self.bus,
        };
        self.policy.decide(node, now, &mut ctx)
    }

    /// Marks a commanded recovery as finished, closing the episode.
    pub fn recovery_finished(&mut self, node: usize, now: SimTime) {
        let mut ctx = PolicyCtx {
            metrics: &mut self.metrics,
            bus: &self.bus,
        };
        self.policy.recovery_finished(node, now, &mut ctx);
    }

    /// The RM host crashes (ReHype): the hosted policy loses all volatile
    /// diagnosis state; the registry and bus (stable storage) survive.
    pub fn crash(&mut self, now: SimTime) {
        let mut ctx = PolicyCtx {
            metrics: &mut self.metrics,
            bus: &self.bus,
        };
        ctx.emit(TelemetryEvent::RmCrashed { at: now });
        self.policy.crash(now, &mut ctx);
    }

    /// The RM host finishes rebooting and resumes duty.
    pub fn rebooted(&mut self, now: SimTime) {
        let mut ctx = PolicyCtx {
            metrics: &mut self.metrics,
            bus: &self.bus,
        };
        ctx.emit(TelemetryEvent::RmRebooted { at: now });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;
    use workload::detect::{FailureKind, FailureReport};

    fn path(op: OpCode) -> &'static [&'static str] {
        match op.0 {
            0 => &["WAR", "Browse", "Item"],
            1 => &["WAR", "Bid", "Item"],
            2 => &["WAR", "Account"],
            _ => &["WAR"],
        }
    }

    fn rm(config: RmConfig) -> RecoveryManager {
        // Tests drive single-digit report volumes; pin a low threshold
        // (production default is tuned for 70 req/s noise floors).
        let config = RmConfig {
            score_threshold: 3.0,
            ..config
        };
        RecoveryManager::new(2, config, path, "WAR")
    }

    fn rep(op: u16, node: usize, at: u64, kind: FailureKind) -> FailureReport {
        FailureReport {
            at: SimTime::from_secs(at),
            op: OpCode(op),
            kind,
            node,
            hint: None,
        }
    }

    #[test]
    fn no_action_below_threshold() {
        let mut m = rm(RmConfig::default());
        m.report(&rep(0, 0, 1, FailureKind::Http));
        assert_eq!(m.decide(0, SimTime::from_secs(1)), None);
    }

    #[test]
    fn scores_pick_the_common_component() {
        let mut m = rm(RmConfig::default());
        // Ops 0 and 1 both traverse Item; it should outscore Browse/Bid.
        m.report(&rep(0, 0, 1, FailureKind::Http));
        m.report(&rep(1, 0, 1, FailureKind::Http));
        m.report(&rep(0, 0, 2, FailureKind::Keyword));
        let action = m.decide(0, SimTime::from_secs(2)).unwrap();
        assert_eq!(action, RecoveryAction::microreboot(&["Item"]));
        assert_eq!(m.stats().ejb_microreboots, 1);
    }

    #[test]
    fn store_evidence_is_withheld_from_the_policy() {
        let mut m = rm(RmConfig::default());
        // A flood of store-attributed reports must not push any component
        // over the threshold: the store is the culprit, not the beans.
        for t in 0..10 {
            m.report(&rep(0, 0, t, FailureKind::StateStore));
        }
        assert_eq!(m.decide(0, SimTime::from_secs(10)), None);
        assert_eq!(m.store_evidence(), 10);
        // Reports still count as detector fires for the run record.
        assert_eq!(m.stats().reports, 10);
        // Component-attributed evidence still escalates as before.
        for _ in 0..3 {
            m.report(&rep(0, 0, 11, FailureKind::Http));
        }
        assert!(m.decide(0, SimTime::from_secs(11)).is_some());
    }

    #[test]
    fn busy_recovering_defers_new_actions() {
        let mut m = rm(RmConfig::default());
        for _ in 0..3 {
            m.report(&rep(0, 0, 1, FailureKind::Http));
        }
        assert!(m.decide(0, SimTime::from_secs(1)).is_some());
        m.report(&rep(0, 0, 2, FailureKind::Http));
        assert_eq!(m.decide(0, SimTime::from_secs(2)), None, "in flight");
    }

    #[test]
    fn persistent_failures_escalate_the_ladder() {
        let mut m = rm(RmConfig::default());
        let mut t = 1;
        let mut labels = Vec::new();
        for _ in 0..5 {
            for _ in 0..3 {
                m.report(&rep(0, 0, t, FailureKind::Http));
            }
            let action = m.decide(0, SimTime::from_secs(t)).unwrap();
            labels.push(format!("{action:?}"));
            m.recovery_finished(0, SimTime::from_secs(t + 1));
            // New failures after the settle window but inside the
            // observation window.
            t += 6;
        }
        assert!(labels[0].contains("Microreboot"));
        assert!(labels[1].contains("WAR") || labels[1].contains("Microreboot"));
        assert!(labels[2].contains("RestartApp"));
        assert!(labels[3].contains("RestartProcess"));
        assert!(labels[4].contains("RebootOs"));
    }

    #[test]
    fn quiet_period_resets_the_ladder() {
        let mut m = rm(RmConfig::default());
        for _ in 0..3 {
            m.report(&rep(0, 0, 1, FailureKind::Http));
        }
        m.decide(0, SimTime::from_secs(1)).unwrap();
        m.recovery_finished(0, SimTime::from_secs(2));
        // A long quiet spell, then a fresh failure burst.
        for _ in 0..3 {
            m.report(&rep(1, 0, 500, FailureKind::Http));
        }
        let action = m.decide(0, SimTime::from_secs(500)).unwrap();
        assert!(
            matches!(action, RecoveryAction::Microreboot { .. }),
            "ladder restarted at the cheapest rung"
        );
    }

    #[test]
    fn network_failures_jump_to_process_restart() {
        let mut m = rm(RmConfig::default());
        for _ in 0..4 {
            m.report(&rep(0, 0, 1, FailureKind::Network));
        }
        assert_eq!(
            m.decide(0, SimTime::from_secs(1)),
            Some(RecoveryAction::RestartProcess)
        );
    }

    #[test]
    fn detection_delay_postpones_action() {
        let mut m = rm(RmConfig {
            detection_delay: SimDuration::from_secs(10),
            ..RmConfig::default()
        });
        for _ in 0..5 {
            m.report(&rep(0, 0, 1, FailureKind::Http));
        }
        assert_eq!(m.decide(0, SimTime::from_secs(5)), None, "within Tdet");
        assert!(m.decide(0, SimTime::from_secs(11)).is_some());
    }

    #[test]
    fn start_level_process_models_the_jvm_restart_baseline() {
        let mut m = rm(RmConfig {
            start_level: PolicyLevel::Process,
            ..RmConfig::default()
        });
        for _ in 0..3 {
            m.report(&rep(0, 0, 1, FailureKind::Http));
        }
        assert_eq!(
            m.decide(0, SimTime::from_secs(1)),
            Some(RecoveryAction::RestartProcess)
        );
    }

    #[test]
    fn recurring_episodes_notify_a_human() {
        let mut m = rm(RmConfig {
            recurrence_limit: 3,
            ..RmConfig::default()
        });
        let mut t = 1;
        let mut saw_human = false;
        for _ in 0..6 {
            for _ in 0..3 {
                m.report(&rep(0, 0, t, FailureKind::Http));
            }
            if m.decide(0, SimTime::from_secs(t)) == Some(RecoveryAction::NotifyHuman) {
                saw_human = true;
                break;
            }
            m.recovery_finished(0, SimTime::from_secs(t + 1));
            t += 6;
        }
        assert!(saw_human);
    }

    #[test]
    fn hardened_recurrence_pages_once_then_keeps_reviving_the_node() {
        // The un-hardened recurrence branch absorbs the policy: every page
        // acks as a completed episode, so once it trips it re-trips on
        // every poll, and a node that dies afterwards is never restarted.
        // With the watchdog armed the page is one-shot per recurrence
        // window and the ladder (including the dead-node Process floor)
        // keeps running underneath it.
        let mut m = rm(RmConfig {
            recurrence_limit: 2,
            recurrence_window: SimDuration::from_secs(1_000),
            watchdog_bound: Some(SimDuration::from_secs(100_000)),
            ..RmConfig::default()
        });
        let mut t = 1;
        loop {
            for _ in 0..3 {
                m.report(&rep(0, 0, t, FailureKind::Http));
            }
            let action = m.decide(0, SimTime::from_secs(t)).expect("enough evidence");
            m.recovery_finished(0, SimTime::from_secs(t + 1));
            t += 50;
            if action == RecoveryAction::NotifyHuman {
                break;
            }
        }
        // The node dies: every report is now a connection failure. The
        // already-paged manager must restart the process, not page again.
        for _ in 0..3 {
            m.report(&rep(0, 0, t, FailureKind::Network));
        }
        assert_eq!(
            m.decide(0, SimTime::from_secs(t)),
            Some(RecoveryAction::RestartProcess)
        );
    }

    #[test]
    fn dead_node_floor_restarts_process_even_at_human() {
        // Hardened: connection-dominated evidence at the Human rung drops
        // back to Process — a page cannot revive a dead JVM.
        let mut m = rm(RmConfig {
            start_level: PolicyLevel::Human,
            watchdog_bound: Some(SimDuration::from_secs(100_000)),
            ..RmConfig::default()
        });
        for _ in 0..3 {
            m.report(&rep(0, 0, 1, FailureKind::Network));
        }
        assert_eq!(
            m.decide(0, SimTime::from_secs(1)),
            Some(RecoveryAction::RestartProcess)
        );
        // Un-hardened, the same evidence keeps paging (baseline pinned).
        let mut m = rm(RmConfig {
            start_level: PolicyLevel::Human,
            ..RmConfig::default()
        });
        for _ in 0..3 {
            m.report(&rep(0, 0, 1, FailureKind::Network));
        }
        assert_eq!(
            m.decide(0, SimTime::from_secs(1)),
            Some(RecoveryAction::NotifyHuman)
        );
    }

    #[test]
    fn parallel_mode_diagnoses_concurrent_faults_in_one_poll() {
        let mut m = rm(RmConfig {
            max_concurrent: 4,
            ..RmConfig::default()
        });
        // Two concurrent faults with disjoint evidence: op 0 (Browse/Item)
        // and op 2 (Account).
        for _ in 0..3 {
            m.report(&rep(0, 0, 1, FailureKind::Http));
            m.report(&rep(2, 0, 1, FailureKind::Http));
        }
        let first = m.decide(0, SimTime::from_secs(1)).unwrap();
        assert_eq!(first, RecoveryAction::microreboot(&["Account"]));
        // Issuing the first action consumed the Account evidence; the next
        // call in the same poll diagnoses the other stream.
        let second = m.decide(0, SimTime::from_secs(1)).unwrap();
        assert_eq!(second, RecoveryAction::microreboot(&["Browse"]));
        assert_eq!(m.decide(0, SimTime::from_secs(1)), None, "evidence spent");
        // Both stay in flight until acknowledged.
        m.recovery_finished(0, SimTime::from_secs(2));
        m.recovery_finished(0, SimTime::from_secs(2));
    }

    #[test]
    fn hints_separate_overlapping_failure_streams() {
        let hrep = |op: u16, at: u64, hint: &'static str| FailureReport {
            hint: Some(components::CompName::intern(hint)),
            ..rep(op, 0, at, FailureKind::Keyword)
        };
        let mut m = rm(RmConfig {
            max_concurrent: 4,
            ..RmConfig::default()
        });
        // Ops 0 and 1 share Item, so path intersection alone would blame
        // Item; the error pages name the true culprits.
        for _ in 0..3 {
            m.report(&hrep(0, 1, "Browse"));
            m.report(&hrep(1, 1, "Bid"));
        }
        let first = m.decide(0, SimTime::from_secs(1)).unwrap();
        assert_eq!(first, RecoveryAction::microreboot(&["Bid"]));
        let second = m.decide(0, SimTime::from_secs(1)).unwrap();
        assert_eq!(second, RecoveryAction::microreboot(&["Browse"]));
    }

    #[test]
    fn serial_mode_ignores_hints() {
        let mut m = rm(RmConfig::default());
        for _ in 0..3 {
            m.report(&FailureReport {
                hint: Some(components::CompName::intern("Browse")),
                ..rep(1, 0, 1, FailureKind::Keyword)
            });
        }
        // max_concurrent = 1: the pre-conductor intersection diagnosis
        // must be reproduced exactly (Bid is on fewer paths than Item).
        let action = m.decide(0, SimTime::from_secs(1)).unwrap();
        assert_eq!(action, RecoveryAction::microreboot(&["Bid"]));
    }

    #[test]
    fn storm_damper_defers_repeated_microreboots() {
        let mut m = rm(RmConfig {
            storm_limit: 2,
            storm_backoff: SimDuration::from_secs(100),
            ..RmConfig::default()
        });
        let mut t = 1;
        let mut issued = 0;
        for _ in 0..4 {
            for _ in 0..3 {
                m.report(&rep(0, 0, t, FailureKind::Http));
            }
            if m.decide(0, SimTime::from_secs(t)).is_some() {
                issued += 1;
                m.recovery_finished(0, SimTime::from_secs(t + 1));
            }
            // Recur outside settle + observation so the undamped ladder
            // would reset and re-microreboot forever.
            t += 40;
        }
        assert_eq!(issued, 2, "third and fourth attempts sit in backoff");
        assert!(m.stats().storm_damped >= 2);
    }

    #[test]
    fn flap_escalation_climbs_instead_of_re_microrebooting() {
        let mut m = rm(RmConfig {
            flap_limit: 2,
            flap_window: SimDuration::from_secs(600),
            ..RmConfig::default()
        });
        let mut t = 1;
        let mut actions = Vec::new();
        for _ in 0..6 {
            for _ in 0..3 {
                m.report(&rep(0, 0, t, FailureKind::Http));
            }
            if let Some(a) = m.decide(0, SimTime::from_secs(t)) {
                actions.push(a);
                m.recovery_finished(0, SimTime::from_secs(t + 1));
            }
            t += 40; // slow flap: each burst looks like a fresh episode
        }
        assert!(
            actions.contains(&RecoveryAction::RestartApp),
            "flap escalation must leave the microreboot rungs: {actions:?}"
        );
        let same_comp_urbs = actions
            .iter()
            .filter(|a| matches!(a, RecoveryAction::Microreboot { components } if components[0].as_str() == "Item"))
            .count();
        assert!(same_comp_urbs <= 2, "flap cap exceeded: {actions:?}");
        assert!(m.stats().flap_escalations >= 1);
    }

    #[test]
    fn watchdog_escalates_overlong_episodes() {
        let mut m = rm(RmConfig {
            watchdog_bound: Some(SimDuration::from_secs(10)),
            ..RmConfig::default()
        });
        for _ in 0..3 {
            m.report(&rep(0, 0, 1, FailureKind::Http));
        }
        assert!(m.decide(0, SimTime::from_secs(1)).is_some());
        m.recovery_finished(0, SimTime::from_secs(2));
        // Still failing 19 s into the episode: the plain ladder would only
        // reach War; the watchdog forces one extra rung.
        for _ in 0..3 {
            m.report(&rep(0, 0, 20, FailureKind::Http));
        }
        assert_eq!(
            m.decide(0, SimTime::from_secs(20)),
            Some(RecoveryAction::RestartApp)
        );
        assert_eq!(m.stats().watchdog_escalations, 1);
    }

    #[test]
    fn saturation_at_human_is_visible() {
        let mut m = rm(RmConfig {
            recurrence_limit: 100,
            ..RmConfig::default()
        });
        let mut t = 1;
        for _ in 0..8 {
            for _ in 0..3 {
                m.report(&rep(0, 0, t, FailureKind::Http));
            }
            let _ = m.decide(0, SimTime::from_secs(t));
            m.recovery_finished(0, SimTime::from_secs(t + 1));
            t += 6;
        }
        assert!(
            m.stats().escalations_saturated >= 1,
            "escalating past Human must be counted, not silent"
        );
        assert!(m.stats().human_notifications >= 2);
    }

    #[test]
    fn nodes_are_diagnosed_independently() {
        let mut m = rm(RmConfig::default());
        for _ in 0..3 {
            m.report(&rep(0, 1, 1, FailureKind::Http));
        }
        assert_eq!(m.decide(0, SimTime::from_secs(1)), None);
        assert!(m.decide(1, SimTime::from_secs(1)).is_some());
    }

    #[test]
    fn rm_crash_wipes_volatile_state_and_absorbs_late_acks() {
        let mut m = rm(RmConfig::default());
        for _ in 0..3 {
            m.report(&rep(0, 0, 1, FailureKind::Http));
        }
        assert!(m.decide(0, SimTime::from_secs(1)).is_some());
        assert_eq!(m.in_flight(0), 1);
        // The RM host crashes mid-episode (ReHype): volatile state gone.
        m.crash(SimTime::from_secs(2));
        assert_eq!(m.in_flight(0), 0);
        m.rebooted(SimTime::from_secs(4));
        // A late ack for the pre-crash action lands on zero, safely.
        m.recovery_finished(0, SimTime::from_secs(5));
        assert_eq!(m.in_flight(0), 0);
        // The crash and reboot are visible in telemetry.
        use simcore::symbol;
        assert_eq!(m.metrics().counter_sym(symbol::RM_CRASHES), 1);
        assert_eq!(m.metrics().counter_sym(symbol::RM_REBOOTS), 1);
        // Fresh evidence re-converges from the bottom rung.
        for _ in 0..3 {
            m.report(&rep(0, 0, 40, FailureKind::Http));
        }
        assert!(matches!(
            m.decide(0, SimTime::from_secs(40)),
            Some(RecoveryAction::Microreboot { .. })
        ));
    }
}
