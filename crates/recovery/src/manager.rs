//! The recovery manager: scoring diagnosis plus the recursive policy.

use std::collections::HashMap;

use simcore::telemetry::{DecisionKind, SharedBus, TelemetryEvent, TelemetrySink};
use simcore::{SimDuration, SimTime};
use urb_core::OpCode;
use workload::detect::{FailureKind, FailureReport};

use crate::policy::PolicyLevel;

/// A recovery action the manager wants executed on a node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Microreboot these components (the server expands recovery groups).
    Microreboot {
        /// Component names to reboot.
        components: Vec<&'static str>,
    },
    /// Restart the whole application.
    RestartApp,
    /// Restart the JVM process.
    RestartProcess,
    /// Reboot the operating system.
    RebootOs,
    /// Automated recovery is exhausted or failures recur endlessly.
    NotifyHuman,
}

/// Manager configuration.
#[derive(Clone, Copy, Debug)]
pub struct RmConfig {
    /// Failure reports needed before the manager acts (the hand-tuned
    /// threshold of Section 4).
    pub score_threshold: f64,
    /// Reports older than this are forgotten — scores are computed over a
    /// sliding window so background noise never accumulates into a
    /// spurious recovery.
    pub score_window: SimDuration,
    /// Extra detection delay before acting on the first report (the
    /// `Tdet` knob swept in Figure 5).
    pub detection_delay: SimDuration,
    /// Aftershock suppression: reports arriving within this long of a
    /// completed recovery are ignored — they are the recovery's own damage
    /// (killed requests, 503s during the reboot), not evidence that the
    /// fault persists.
    pub settle: SimDuration,
    /// How long after a recovery completes (past the settle window) new
    /// failures count as "the same problem" and escalate the ladder.
    pub observation: SimDuration,
    /// The rung recovery starts at. `Ejb` is the paper's policy; setting
    /// `Process` reproduces the "recover by JVM restart" baseline runs.
    pub start_level: PolicyLevel,
    /// How many completed recovery episodes within `recurrence_window`
    /// trigger a human notification for a recurring failure pattern.
    pub recurrence_limit: u32,
    /// Window for recurrence detection.
    pub recurrence_window: SimDuration,
}

impl Default for RmConfig {
    fn default() -> Self {
        RmConfig {
            score_threshold: 6.0,
            score_window: SimDuration::from_secs(10),
            detection_delay: SimDuration::ZERO,
            settle: SimDuration::from_secs(3),
            observation: SimDuration::from_secs(30),
            start_level: PolicyLevel::Ejb,
            recurrence_limit: 8,
            recurrence_window: SimDuration::from_secs(120),
        }
    }
}

/// Lifetime counters.
///
/// A pure [`TelemetrySink`]: the manager emits [`TelemetryEvent`]s and
/// this fold turns them into counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct RmStats {
    /// Reports received.
    pub reports: u64,
    /// EJB microreboots commanded.
    pub ejb_microreboots: u64,
    /// WAR microreboots commanded.
    pub war_microreboots: u64,
    /// Application restarts commanded.
    pub app_restarts: u64,
    /// Process restarts commanded.
    pub process_restarts: u64,
    /// OS reboots commanded.
    pub os_reboots: u64,
    /// Human notifications raised.
    pub human_notifications: u64,
}

impl TelemetrySink for RmStats {
    fn on_event(&mut self, event: &TelemetryEvent) {
        match event {
            TelemetryEvent::DetectorFired { .. } => self.reports += 1,
            TelemetryEvent::RecoveryDecision { decision, .. } => match decision {
                DecisionKind::EjbMicroreboot => self.ejb_microreboots += 1,
                DecisionKind::WarMicroreboot => self.war_microreboots += 1,
                DecisionKind::AppRestart => self.app_restarts += 1,
                DecisionKind::ProcessRestart => self.process_restarts += 1,
                DecisionKind::OsReboot => self.os_reboots += 1,
                DecisionKind::NotifyHuman => self.human_notifications += 1,
            },
            _ => {}
        }
    }
}

#[derive(Debug)]
struct NodeDiag {
    /// Recent reports: (time, op for path scoring, was-network).
    recent: Vec<(SimTime, Option<OpCode>)>,
    first_report_at: Option<SimTime>,
    level: PolicyLevel,
    recovering: bool,
    last_recovery_end: Option<SimTime>,
    episode_ends: Vec<SimTime>,
}

impl NodeDiag {
    fn new(start: PolicyLevel) -> Self {
        NodeDiag {
            recent: Vec::new(),
            first_report_at: None,
            level: start,
            recovering: false,
            last_recovery_end: None,
            episode_ends: Vec::new(),
        }
    }

    fn clear_scores(&mut self) {
        self.recent.clear();
        self.first_report_at = None;
    }

    fn prune(&mut self, now: SimTime, window: SimDuration) {
        self.recent.retain(|(t, _)| now - *t <= window);
        if self.recent.is_empty() {
            self.first_report_at = None;
        } else {
            self.first_report_at = Some(self.recent[0].0);
        }
    }
}

/// The recovery manager.
///
/// One manager oversees a whole cluster; diagnosis state is per node. The
/// simulation forwards monitor reports via [`RecoveryManager::report`],
/// polls [`RecoveryManager::decide`], and acknowledges completed actions
/// via [`RecoveryManager::recovery_finished`].
pub struct RecoveryManager {
    config: RmConfig,
    /// URL-prefix → component-path mapping (from static analysis).
    path_of: fn(OpCode) -> &'static [&'static str],
    /// Name of the web component, scored down (it is on every path).
    web: &'static str,
    nodes: Vec<NodeDiag>,
    stats: RmStats,
    bus: Option<SharedBus>,
}

impl RecoveryManager {
    /// Creates a manager for `nodes` nodes.
    pub fn new(
        nodes: usize,
        config: RmConfig,
        path_of: fn(OpCode) -> &'static [&'static str],
        web: &'static str,
    ) -> Self {
        RecoveryManager {
            config,
            path_of,
            web,
            nodes: (0..nodes)
                .map(|_| NodeDiag::new(config.start_level))
                .collect(),
            stats: RmStats::default(),
            bus: None,
        }
    }

    /// Attaches a telemetry bus: every event the manager emits is
    /// forwarded to it (in addition to updating the local counters).
    pub fn attach_telemetry(&mut self, bus: SharedBus) {
        self.bus = Some(bus);
    }

    /// Returns lifetime counters.
    pub fn stats(&self) -> RmStats {
        self.stats
    }

    /// Folds `ev` into the counters and forwards it to the bus.
    ///
    /// An associated function over the split fields so it composes with a
    /// live `&mut self.nodes[..]` borrow in [`RecoveryManager::decide`].
    fn emit(stats: &mut RmStats, bus: &Option<SharedBus>, ev: TelemetryEvent) {
        stats.on_event(&ev);
        if let Some(bus) = bus {
            bus.borrow_mut().emit(&ev);
        }
    }

    /// Returns the node's current ladder rung.
    pub fn level_of(&self, node: usize) -> PolicyLevel {
        self.nodes[node].level
    }

    /// Ingests one failure report from a monitor.
    pub fn report(&mut self, r: &FailureReport) {
        Self::emit(
            &mut self.stats,
            &self.bus,
            TelemetryEvent::DetectorFired {
                node: r.node,
                op: r.op.0,
                at: r.at,
            },
        );
        let Some(diag) = self.nodes.get_mut(r.node) else {
            return;
        };
        // Session loss (a login prompt served to a logged-in user) means
        // state was lost — by a restart here, a failover away from a
        // recovering node, or an eviction. No reboot cures it, and acting
        // on it cascades: the recovery would destroy yet more sessions.
        if r.kind == FailureKind::SessionLoss {
            return;
        }
        if let Some(end) = diag.last_recovery_end {
            // Aftershock suppression: the recovery's own collateral damage
            // is not evidence that the fault persists.
            if r.at <= end + self.config.settle {
                return;
            }
        }
        diag.first_report_at.get_or_insert(r.at);
        match r.kind {
            FailureKind::Network => diag.recent.push((r.at, None)),
            _ => diag.recent.push((r.at, Some(r.op))),
        }
    }

    /// Marks a commanded recovery as finished, closing the episode.
    pub fn recovery_finished(&mut self, node: usize, now: SimTime) {
        let Some(diag) = self.nodes.get_mut(node) else {
            return;
        };
        diag.recovering = false;
        diag.last_recovery_end = Some(now);
        diag.episode_ends.push(now);
        diag.clear_scores();
    }

    /// Picks the most suspicious non-web component from the failure
    /// evidence.
    ///
    /// Strategy (static analysis over the URL → path map):
    /// 1. Components common to *every* failing URL's path are the prime
    ///    suspects — the fault must lie where all failing flows meet.
    /// 2. Ties break toward the component that appears on the *fewest*
    ///    paths overall: a component shared by many URLs (IdentityManager,
    ///    User, ...) would be making other URLs fail too, and they are not
    ///    failing.
    /// 3. If the intersection is empty (noisy evidence), fall back to the
    ///    rarity-weighted score maximum.
    fn pick_suspect(
        failing_ops: &[OpCode],
        scores: &HashMap<&'static str, f64>,
        path_of: fn(OpCode) -> &'static [&'static str],
        web: &'static str,
    ) -> Option<&'static str> {
        // How many distinct URLs each component serves (IDF weight).
        let paths_containing = |comp: &str| -> usize {
            (0u16..64)
                .map(OpCode)
                .filter(|op| (path_of)(*op).contains(&comp))
                .count()
        };
        if !failing_ops.is_empty() {
            let mut common: Vec<&'static str> = (path_of)(failing_ops[0])
                .iter()
                .copied()
                .filter(|c| *c != web)
                .collect();
            for op in &failing_ops[1..] {
                let path = (path_of)(*op);
                common.retain(|c| path.contains(c));
            }
            common.sort_by_key(|c| (paths_containing(c), *c));
            if let Some(best) = common.first() {
                return Some(best);
            }
        }
        // Fallback: rarity-weighted maximum score.
        let mut best: Option<(&'static str, f64)> = None;
        for (c, s) in scores {
            if *c == web {
                continue;
            }
            let weighted = *s / paths_containing(c).max(1) as f64;
            let better = match best {
                Some((bc, bs)) => weighted > bs || (weighted == bs && *c < bc),
                None => true,
            };
            if better {
                best = Some((c, weighted));
            }
        }
        best.map(|(c, _)| c)
    }

    /// Decides whether (and how) to recover `node` right now.
    ///
    /// Returns `None` while evidence is insufficient, detection is still
    /// within `Tdet`, or a recovery is already in flight.
    pub fn decide(&mut self, node: usize, now: SimTime) -> Option<RecoveryAction> {
        let config = self.config;
        let web = self.web;
        let path_of = self.path_of;
        let diag = self.nodes.get_mut(node)?;
        if diag.recovering {
            return None;
        }
        // Reports must survive at least the configured detection delay,
        // or a large Tdet (Figure 5's sweep) would forget the evidence
        // before it may be acted on.
        diag.prune(now, config.score_window + config.detection_delay);
        let first = diag.first_report_at?;
        if now - first < config.detection_delay {
            return None;
        }
        // Score components along the failed URLs' static call paths. The
        // web component is on every path, so hits on it carry little
        // information.
        let mut scores: HashMap<&'static str, f64> = HashMap::new();
        let mut failing_ops: Vec<OpCode> = Vec::new();
        let mut network_reports = 0u64;
        let mut other_reports = 0u64;
        for (_, op) in &diag.recent {
            match op {
                None => network_reports += 1,
                Some(op) => {
                    other_reports += 1;
                    if !failing_ops.contains(op) {
                        failing_ops.push(*op);
                    }
                    for comp in (path_of)(*op) {
                        let w = if *comp == web { 0.2 } else { 1.0 };
                        *scores.entry(comp).or_insert(0.0) += w;
                    }
                }
            }
        }
        // The evidence must implicate *some single component* strongly
        // enough (or show enough connection-level failures); summing over
        // a whole path would let one failed request trip the threshold.
        let max_score = scores.values().copied().fold(0.0, f64::max);
        let enough =
            max_score >= config.score_threshold || network_reports as f64 >= config.score_threshold;
        if !enough {
            return None;
        }
        // Level bookkeeping: failures shortly after a completed recovery
        // escalate; failures after a quiet period restart the ladder.
        if let Some(end) = diag.last_recovery_end {
            if first <= end + config.settle + config.observation {
                diag.level = diag.level.escalate();
            } else {
                diag.level = config.start_level;
            }
        }
        // Recurring failure patterns page a human (Section 4).
        diag.episode_ends
            .retain(|e| now - *e <= config.recurrence_window);
        if diag.episode_ends.len() as u32 >= config.recurrence_limit {
            Self::emit(
                &mut self.stats,
                &self.bus,
                TelemetryEvent::RecoveryDecision {
                    node,
                    decision: DecisionKind::NotifyHuman,
                    at: now,
                },
            );
            diag.recovering = true;
            return Some(RecoveryAction::NotifyHuman);
        }
        // Connection-level failures mean the process (or node) is gone:
        // component recovery is pointless.
        if network_reports > other_reports && diag.level < PolicyLevel::Process {
            diag.level = PolicyLevel::Process;
        }
        let (action, decision) = match diag.level {
            PolicyLevel::Ejb => match Self::pick_suspect(&failing_ops, &scores, path_of, web) {
                Some(comp) => (
                    RecoveryAction::Microreboot {
                        components: vec![comp],
                    },
                    DecisionKind::EjbMicroreboot,
                ),
                None => (
                    RecoveryAction::Microreboot {
                        components: vec![web],
                    },
                    DecisionKind::WarMicroreboot,
                ),
            },
            PolicyLevel::War => (
                RecoveryAction::Microreboot {
                    components: vec![web],
                },
                DecisionKind::WarMicroreboot,
            ),
            PolicyLevel::App => (RecoveryAction::RestartApp, DecisionKind::AppRestart),
            PolicyLevel::Process => (RecoveryAction::RestartProcess, DecisionKind::ProcessRestart),
            PolicyLevel::Os => (RecoveryAction::RebootOs, DecisionKind::OsReboot),
            PolicyLevel::Human => (RecoveryAction::NotifyHuman, DecisionKind::NotifyHuman),
        };
        Self::emit(
            &mut self.stats,
            &self.bus,
            TelemetryEvent::RecoveryDecision {
                node,
                decision,
                at: now,
            },
        );
        diag.recovering = true;
        Some(action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(op: OpCode) -> &'static [&'static str] {
        match op.0 {
            0 => &["WAR", "Browse", "Item"],
            1 => &["WAR", "Bid", "Item"],
            2 => &["WAR", "Account"],
            _ => &["WAR"],
        }
    }

    fn rm(config: RmConfig) -> RecoveryManager {
        // Tests drive single-digit report volumes; pin a low threshold
        // (production default is tuned for 70 req/s noise floors).
        let config = RmConfig {
            score_threshold: 3.0,
            ..config
        };
        RecoveryManager::new(2, config, path, "WAR")
    }

    fn rep(op: u16, node: usize, at: u64, kind: FailureKind) -> FailureReport {
        FailureReport {
            at: SimTime::from_secs(at),
            op: OpCode(op),
            kind,
            node,
        }
    }

    #[test]
    fn no_action_below_threshold() {
        let mut m = rm(RmConfig::default());
        m.report(&rep(0, 0, 1, FailureKind::Http));
        assert_eq!(m.decide(0, SimTime::from_secs(1)), None);
    }

    #[test]
    fn scores_pick_the_common_component() {
        let mut m = rm(RmConfig::default());
        // Ops 0 and 1 both traverse Item; it should outscore Browse/Bid.
        m.report(&rep(0, 0, 1, FailureKind::Http));
        m.report(&rep(1, 0, 1, FailureKind::Http));
        m.report(&rep(0, 0, 2, FailureKind::Keyword));
        let action = m.decide(0, SimTime::from_secs(2)).unwrap();
        assert_eq!(
            action,
            RecoveryAction::Microreboot {
                components: vec!["Item"]
            }
        );
        assert_eq!(m.stats().ejb_microreboots, 1);
    }

    #[test]
    fn busy_recovering_defers_new_actions() {
        let mut m = rm(RmConfig::default());
        for _ in 0..3 {
            m.report(&rep(0, 0, 1, FailureKind::Http));
        }
        assert!(m.decide(0, SimTime::from_secs(1)).is_some());
        m.report(&rep(0, 0, 2, FailureKind::Http));
        assert_eq!(m.decide(0, SimTime::from_secs(2)), None, "in flight");
    }

    #[test]
    fn persistent_failures_escalate_the_ladder() {
        let mut m = rm(RmConfig::default());
        let mut t = 1;
        let mut labels = Vec::new();
        for _ in 0..5 {
            for _ in 0..3 {
                m.report(&rep(0, 0, t, FailureKind::Http));
            }
            let action = m.decide(0, SimTime::from_secs(t)).unwrap();
            labels.push(format!("{action:?}"));
            m.recovery_finished(0, SimTime::from_secs(t + 1));
            // New failures after the settle window but inside the
            // observation window.
            t += 6;
        }
        assert!(labels[0].contains("Microreboot"));
        assert!(labels[1].contains("WAR") || labels[1].contains("Microreboot"));
        assert!(labels[2].contains("RestartApp"));
        assert!(labels[3].contains("RestartProcess"));
        assert!(labels[4].contains("RebootOs"));
    }

    #[test]
    fn quiet_period_resets_the_ladder() {
        let mut m = rm(RmConfig::default());
        for _ in 0..3 {
            m.report(&rep(0, 0, 1, FailureKind::Http));
        }
        m.decide(0, SimTime::from_secs(1)).unwrap();
        m.recovery_finished(0, SimTime::from_secs(2));
        // A long quiet spell, then a fresh failure burst.
        for _ in 0..3 {
            m.report(&rep(1, 0, 500, FailureKind::Http));
        }
        let action = m.decide(0, SimTime::from_secs(500)).unwrap();
        assert!(
            matches!(action, RecoveryAction::Microreboot { .. }),
            "ladder restarted at the cheapest rung"
        );
    }

    #[test]
    fn network_failures_jump_to_process_restart() {
        let mut m = rm(RmConfig::default());
        for _ in 0..4 {
            m.report(&rep(0, 0, 1, FailureKind::Network));
        }
        assert_eq!(
            m.decide(0, SimTime::from_secs(1)),
            Some(RecoveryAction::RestartProcess)
        );
    }

    #[test]
    fn detection_delay_postpones_action() {
        let mut m = rm(RmConfig {
            detection_delay: SimDuration::from_secs(10),
            ..RmConfig::default()
        });
        for _ in 0..5 {
            m.report(&rep(0, 0, 1, FailureKind::Http));
        }
        assert_eq!(m.decide(0, SimTime::from_secs(5)), None, "within Tdet");
        assert!(m.decide(0, SimTime::from_secs(11)).is_some());
    }

    #[test]
    fn start_level_process_models_the_jvm_restart_baseline() {
        let mut m = rm(RmConfig {
            start_level: PolicyLevel::Process,
            ..RmConfig::default()
        });
        for _ in 0..3 {
            m.report(&rep(0, 0, 1, FailureKind::Http));
        }
        assert_eq!(
            m.decide(0, SimTime::from_secs(1)),
            Some(RecoveryAction::RestartProcess)
        );
    }

    #[test]
    fn recurring_episodes_notify_a_human() {
        let mut m = rm(RmConfig {
            recurrence_limit: 3,
            ..RmConfig::default()
        });
        let mut t = 1;
        let mut saw_human = false;
        for _ in 0..6 {
            for _ in 0..3 {
                m.report(&rep(0, 0, t, FailureKind::Http));
            }
            if m.decide(0, SimTime::from_secs(t)) == Some(RecoveryAction::NotifyHuman) {
                saw_human = true;
                break;
            }
            m.recovery_finished(0, SimTime::from_secs(t + 1));
            t += 6;
        }
        assert!(saw_human);
    }

    #[test]
    fn nodes_are_diagnosed_independently() {
        let mut m = rm(RmConfig::default());
        for _ in 0..3 {
            m.report(&rep(0, 1, 1, FailureKind::Http));
        }
        assert_eq!(m.decide(0, SimTime::from_secs(1)), None);
        assert!(m.decide(1, SimTime::from_secs(1)).is_some());
    }
}
