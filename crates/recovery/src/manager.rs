//! The recovery manager: scoring diagnosis plus the recursive policy.

use std::collections::BTreeMap;

use components::CompName;
use simcore::telemetry::{DecisionKind, SharedBus, TelemetryEvent, TelemetrySink};
use simcore::{MetricsRegistry, SimDuration, SimTime};
use urb_core::OpCode;
use workload::detect::{FailureKind, FailureReport};

use crate::policy::PolicyLevel;

/// A recovery action the manager wants executed on a node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Microreboot these components (the server expands recovery groups).
    Microreboot {
        /// Interned component names to reboot — the same symbols the
        /// naming registry keys on, so the conductor's conflict sets and
        /// the server's group expansion agree by identity, not by string.
        components: Vec<CompName>,
    },
    /// Restart the whole application.
    RestartApp,
    /// Restart the JVM process.
    RestartProcess,
    /// Reboot the operating system.
    RebootOs,
    /// Automated recovery is exhausted or failures recur endlessly.
    NotifyHuman,
}

impl RecoveryAction {
    /// Builds a microreboot action from string names, interning them.
    pub fn microreboot(names: &[&'static str]) -> RecoveryAction {
        RecoveryAction::Microreboot {
            components: names.iter().map(|n| CompName::intern(n)).collect(),
        }
    }
}

/// Manager configuration.
#[derive(Clone, Copy, Debug)]
pub struct RmConfig {
    /// Failure reports needed before the manager acts (the hand-tuned
    /// threshold of Section 4).
    pub score_threshold: f64,
    /// Reports older than this are forgotten — scores are computed over a
    /// sliding window so background noise never accumulates into a
    /// spurious recovery.
    pub score_window: SimDuration,
    /// Extra detection delay before acting on the first report (the
    /// `Tdet` knob swept in Figure 5).
    pub detection_delay: SimDuration,
    /// Aftershock suppression: reports arriving within this long of a
    /// completed recovery are ignored — they are the recovery's own damage
    /// (killed requests, 503s during the reboot), not evidence that the
    /// fault persists.
    pub settle: SimDuration,
    /// How long after a recovery completes (past the settle window) new
    /// failures count as "the same problem" and escalate the ladder.
    pub observation: SimDuration,
    /// The rung recovery starts at. `Ejb` is the paper's policy; setting
    /// `Process` reproduces the "recover by JVM restart" baseline runs.
    pub start_level: PolicyLevel,
    /// How many completed recovery episodes within `recurrence_window`
    /// trigger a human notification for a recurring failure pattern.
    pub recurrence_limit: u32,
    /// Window for recurrence detection.
    pub recurrence_window: SimDuration,
    /// How many component microreboots may be in flight per node at once.
    ///
    /// At the default of 1 the manager behaves exactly as the serial
    /// baseline (one decision, then silence until it is acknowledged).
    /// Above 1 — which only makes sense with the conductor executing the
    /// actions — each issued microreboot *consumes* the evidence that
    /// implicated its suspect, so the next `decide` call in the same poll
    /// can diagnose a different concurrent fault from what remains.
    pub max_concurrent: usize,
    /// Reboot-storm damper: once a component has been microrebooted this
    /// many consecutive times (within `flap_window` of each other), an
    /// exponential backoff defers further microreboots of it. `0`
    /// disables the damper (the pre-hardening behaviour).
    pub storm_limit: u32,
    /// Base backoff of the storm damper; doubles with every strike past
    /// `storm_limit`.
    pub storm_backoff: SimDuration,
    /// Flap-driven escalation: a component microrebooted this many times
    /// within `flap_window` escalates the ladder instead of being
    /// microrebooted forever. `0` disables flap escalation.
    ///
    /// The window is deliberately longer than `observation`: a slow flap
    /// (one that recurs after the quiet period resets the ladder) is
    /// exactly the pattern the plain ladder cannot see.
    pub flap_limit: u32,
    /// Window over which same-component microreboots count as a flap.
    pub flap_window: SimDuration,
    /// Convergence watchdog: a failure episode older than this bound
    /// forces an extra escalation on every decision until it converges.
    /// `None` disables the watchdog.
    pub watchdog_bound: Option<SimDuration>,
}

impl Default for RmConfig {
    fn default() -> Self {
        RmConfig {
            score_threshold: 6.0,
            score_window: SimDuration::from_secs(10),
            detection_delay: SimDuration::ZERO,
            settle: SimDuration::from_secs(3),
            observation: SimDuration::from_secs(30),
            start_level: PolicyLevel::Ejb,
            recurrence_limit: 8,
            recurrence_window: SimDuration::from_secs(120),
            max_concurrent: 1,
            storm_limit: 0,
            storm_backoff: SimDuration::from_secs(5),
            flap_limit: 0,
            flap_window: SimDuration::from_secs(300),
            watchdog_bound: None,
        }
    }
}

/// Lifetime counters.
///
/// A *view* over the manager's [`MetricsRegistry`]: the manager folds
/// every emitted [`TelemetryEvent`] into the registry and
/// [`RmStats::from_registry`] materialises the classic counter struct
/// from registry reads.
#[derive(Clone, Copy, Debug, Default)]
pub struct RmStats {
    /// Reports received.
    pub reports: u64,
    /// EJB microreboots commanded.
    pub ejb_microreboots: u64,
    /// WAR microreboots commanded.
    pub war_microreboots: u64,
    /// Application restarts commanded.
    pub app_restarts: u64,
    /// Process restarts commanded.
    pub process_restarts: u64,
    /// OS reboots commanded.
    pub os_reboots: u64,
    /// Human notifications raised.
    pub human_notifications: u64,
    /// Escalations requested while the ladder was already at `Human`
    /// (automated recovery exhausted; previously silent).
    pub escalations_saturated: u64,
    /// Microreboot decisions deferred by the reboot-storm damper.
    pub storm_damped: u64,
    /// Escalations forced by flap detection.
    pub flap_escalations: u64,
    /// Escalations forced by the convergence watchdog.
    pub watchdog_escalations: u64,
}

impl RmStats {
    /// Reads the classic counter struct out of the manager's registry.
    pub fn from_registry(reg: &MetricsRegistry) -> Self {
        use simcore::symbol;
        RmStats {
            reports: reg.counter_sym(symbol::DETECTOR_FIRES),
            ejb_microreboots: reg.counter_sym(symbol::DECISIONS_EJB_MICROREBOOT),
            war_microreboots: reg.counter_sym(symbol::DECISIONS_WAR_MICROREBOOT),
            app_restarts: reg.counter_sym(symbol::DECISIONS_APP_RESTART),
            process_restarts: reg.counter_sym(symbol::DECISIONS_PROCESS_RESTART),
            os_reboots: reg.counter_sym(symbol::DECISIONS_OS_REBOOT),
            human_notifications: reg.counter_sym(symbol::DECISIONS_NOTIFY_HUMAN),
            escalations_saturated: reg.counter_sym(symbol::ESCALATIONS_SATURATED),
            storm_damped: reg.counter_sym(symbol::STORM_DAMPED),
            flap_escalations: reg.counter_sym(symbol::FLAP_ESCALATIONS),
            watchdog_escalations: reg.counter_sym(symbol::WATCHDOG_ESCALATIONS),
        }
    }
}

#[derive(Debug)]
struct NodeDiag {
    /// Recent reports: (time, op for path scoring — `None` for network
    /// failures — and the error page's component hint, if any).
    recent: Vec<(SimTime, Option<OpCode>, Option<CompName>)>,
    first_report_at: Option<SimTime>,
    /// When the current failure *episode* started: like `first_report_at`
    /// but not advanced when issued actions consume their evidence, so
    /// under `max_concurrent > 1` the detection-delay gate measures how
    /// long the node has been failing, not the age of the oldest report
    /// that happens to survive consumption.
    episode_first: Option<SimTime>,
    level: PolicyLevel,
    /// How many issued actions are awaiting `recovery_finished`.
    in_flight: usize,
    /// A coarse action (restart/reboot/human) is in flight: no further
    /// decisions until it is acknowledged, whatever `max_concurrent` says.
    exclusive: bool,
    last_recovery_end: Option<SimTime>,
    episode_ends: Vec<SimTime>,
    /// Per-component microreboot history: when the component was last
    /// microrebooted and how many consecutive microreboots (each within
    /// `flap_window` of the previous) it has accumulated. Deliberately
    /// *not* cleared when the ladder resets after a quiet period — a slow
    /// flap looks exactly like a sequence of fresh episodes.
    urb_history: BTreeMap<CompName, (SimTime, u32)>,
    /// Storm-damper deadlines: no new microreboot of the component before
    /// its deadline.
    damped_until: BTreeMap<CompName, SimTime>,
    /// Watchdog anchor: when the current failure episode began. Survives
    /// `recovery_finished` (an episode spans repeated recoveries) and
    /// resets only when a quiet period resets the ladder.
    episode_anchor: Option<SimTime>,
    /// When a recurring-failure page last went out (hardened mode only).
    last_human_page: Option<SimTime>,
}

impl NodeDiag {
    fn new(start: PolicyLevel) -> Self {
        NodeDiag {
            recent: Vec::new(),
            first_report_at: None,
            episode_first: None,
            level: start,
            in_flight: 0,
            exclusive: false,
            last_recovery_end: None,
            episode_ends: Vec::new(),
            urb_history: BTreeMap::new(),
            damped_until: BTreeMap::new(),
            episode_anchor: None,
            last_human_page: None,
        }
    }

    fn clear_scores(&mut self) {
        self.recent.clear();
        self.first_report_at = None;
        self.episode_first = None;
    }

    fn prune(&mut self, now: SimTime, window: SimDuration) {
        self.recent.retain(|(t, _, _)| now - *t <= window);
        if self.recent.is_empty() {
            self.first_report_at = None;
            self.episode_first = None;
        } else {
            self.first_report_at = Some(self.recent[0].0);
        }
    }

    /// Drops the evidence that implicated `components` — each report whose
    /// URL path traverses (or whose hint names) one of them. Called when a
    /// microreboot of `components` is issued under `max_concurrent > 1`,
    /// so the remaining evidence can implicate a *different* concurrent
    /// fault instead of re-diagnosing the one already being cured.
    fn consume(&mut self, components: &[CompName], path_of: fn(OpCode) -> &'static [&'static str]) {
        self.recent.retain(|(_, op, hint)| {
            if hint.is_some_and(|h| components.contains(&h)) {
                return false;
            }
            match op {
                None => true,
                Some(op) => !(path_of)(*op)
                    .iter()
                    .any(|c| CompName::lookup(c).is_some_and(|c| components.contains(&c))),
            }
        });
        self.first_report_at = self.recent.first().map(|(t, _, _)| *t);
    }
}

/// The recovery manager.
///
/// One manager oversees a whole cluster; diagnosis state is per node. The
/// simulation forwards monitor reports via [`RecoveryManager::report`],
/// polls [`RecoveryManager::decide`], and acknowledges completed actions
/// via [`RecoveryManager::recovery_finished`].
pub struct RecoveryManager {
    config: RmConfig,
    /// URL-prefix → component-path mapping (from static analysis).
    path_of: fn(OpCode) -> &'static [&'static str],
    /// Name of the web component, scored down (it is on every path).
    web: &'static str,
    nodes: Vec<NodeDiag>,
    metrics: MetricsRegistry,
    bus: Option<SharedBus>,
}

impl RecoveryManager {
    /// Creates a manager for `nodes` nodes.
    pub fn new(
        nodes: usize,
        config: RmConfig,
        path_of: fn(OpCode) -> &'static [&'static str],
        web: &'static str,
    ) -> Self {
        RecoveryManager {
            config,
            path_of,
            web,
            nodes: (0..nodes)
                .map(|_| NodeDiag::new(config.start_level))
                .collect(),
            metrics: MetricsRegistry::new(),
            bus: None,
        }
    }

    /// Attaches a telemetry bus: every event the manager emits is
    /// forwarded to it (in addition to updating the local counters).
    pub fn attach_telemetry(&mut self, bus: SharedBus) {
        self.bus = Some(bus);
    }

    /// Returns lifetime counters (a view over the metrics registry).
    pub fn stats(&self) -> RmStats {
        RmStats::from_registry(&self.metrics)
    }

    /// Returns the manager's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Folds `ev` into the registry and forwards it to the bus.
    ///
    /// An associated function over the split fields so it composes with a
    /// live `&mut self.nodes[..]` borrow in [`RecoveryManager::decide`].
    fn emit(metrics: &mut MetricsRegistry, bus: &Option<SharedBus>, ev: TelemetryEvent) {
        metrics.on_event(&ev);
        if let Some(bus) = bus {
            bus.borrow_mut().emit(&ev);
        }
    }

    /// Returns the node's current ladder rung.
    pub fn level_of(&self, node: usize) -> PolicyLevel {
        self.nodes[node].level
    }

    /// Actions issued on `node` still awaiting `recovery_finished`.
    pub fn in_flight(&self, node: usize) -> usize {
        self.nodes.get(node).map_or(0, |d| d.in_flight)
    }

    /// Climbs one rung, emitting [`TelemetryEvent::EscalationSaturated`]
    /// when the ladder is already at `Human` and has nowhere left to go
    /// (previously a silent saturation).
    fn escalate_level(
        metrics: &mut MetricsRegistry,
        bus: &Option<SharedBus>,
        node: usize,
        level: PolicyLevel,
        now: SimTime,
    ) -> PolicyLevel {
        if level == PolicyLevel::Human {
            Self::emit(
                metrics,
                bus,
                TelemetryEvent::EscalationSaturated { node, at: now },
            );
        }
        level.escalate()
    }

    /// Ingests one failure report from a monitor.
    pub fn report(&mut self, r: &FailureReport) {
        Self::emit(
            &mut self.metrics,
            &self.bus,
            TelemetryEvent::DetectorFired {
                node: r.node,
                op: r.op.0,
                at: r.at,
            },
        );
        let Some(diag) = self.nodes.get_mut(r.node) else {
            return;
        };
        // Session loss (a login prompt served to a logged-in user) means
        // state was lost — by a restart here, a failover away from a
        // recovering node, or an eviction. No reboot cures it, and acting
        // on it cascades: the recovery would destroy yet more sessions.
        if r.kind == FailureKind::SessionLoss {
            return;
        }
        if let Some(end) = diag.last_recovery_end {
            // Aftershock suppression: the recovery's own collateral damage
            // is not evidence that the fault persists.
            if r.at <= end + self.config.settle {
                return;
            }
        }
        diag.first_report_at.get_or_insert(r.at);
        diag.episode_first.get_or_insert(r.at);
        match r.kind {
            FailureKind::Network => diag.recent.push((r.at, None, None)),
            _ => diag.recent.push((r.at, Some(r.op), r.hint)),
        }
    }

    /// Marks a commanded recovery as finished, closing the episode.
    ///
    /// With several actions in flight each acknowledgement decrements the
    /// count; the episode bookkeeping (settle window, recurrence history,
    /// score reset) runs per acknowledgement exactly as in the serial
    /// case, so a `max_concurrent = 1` run is indistinguishable from the
    /// pre-conductor manager.
    pub fn recovery_finished(&mut self, node: usize, now: SimTime) {
        let Some(diag) = self.nodes.get_mut(node) else {
            return;
        };
        diag.in_flight = diag.in_flight.saturating_sub(1);
        if diag.in_flight == 0 {
            diag.exclusive = false;
        }
        diag.last_recovery_end = Some(now);
        diag.episode_ends.push(now);
        diag.clear_scores();
    }

    /// Picks the most suspicious non-web component from the failure
    /// evidence.
    ///
    /// Strategy (static analysis over the URL → path map):
    /// 1. Components common to *every* failing URL's path are the prime
    ///    suspects — the fault must lie where all failing flows meet.
    /// 2. Ties break toward the component that appears on the *fewest*
    ///    paths overall: a component shared by many URLs (IdentityManager,
    ///    User, ...) would be making other URLs fail too, and they are not
    ///    failing.
    /// 3. If the intersection is empty (noisy evidence), fall back to the
    ///    rarity-weighted score maximum.
    fn pick_suspect(
        failing_ops: &[OpCode],
        scores: &BTreeMap<&'static str, f64>,
        path_of: fn(OpCode) -> &'static [&'static str],
        web: &'static str,
    ) -> Option<&'static str> {
        // How many distinct URLs each component serves (IDF weight).
        let paths_containing = |comp: &str| -> usize {
            (0u16..64)
                .map(OpCode)
                .filter(|op| (path_of)(*op).contains(&comp))
                .count()
        };
        if !failing_ops.is_empty() {
            let mut common: Vec<&'static str> = (path_of)(failing_ops[0])
                .iter()
                .copied()
                .filter(|c| *c != web)
                .collect();
            for op in &failing_ops[1..] {
                let path = (path_of)(*op);
                common.retain(|c| path.contains(c));
            }
            common.sort_by_key(|c| (paths_containing(c), *c));
            if let Some(best) = common.first() {
                return Some(best);
            }
        }
        // Fallback: rarity-weighted maximum score.
        let mut best: Option<(&'static str, f64)> = None;
        for (c, s) in scores {
            if *c == web {
                continue;
            }
            let weighted = *s / paths_containing(c).max(1) as f64;
            let better = match best {
                Some((bc, bs)) => weighted > bs || (weighted == bs && *c < bc),
                None => true,
            };
            if better {
                best = Some((c, weighted));
            }
        }
        best.map(|(c, _)| c)
    }

    /// Maps a ladder rung to the concrete action (and decision kind) the
    /// current evidence supports.
    fn action_for(
        level: PolicyLevel,
        hinted: Option<&'static str>,
        failing_ops: &[OpCode],
        scores: &BTreeMap<&'static str, f64>,
        path_of: fn(OpCode) -> &'static [&'static str],
        web: &'static str,
    ) -> (RecoveryAction, DecisionKind) {
        match level {
            PolicyLevel::Ejb => {
                match hinted.or_else(|| Self::pick_suspect(failing_ops, scores, path_of, web)) {
                    Some(comp) => (
                        RecoveryAction::microreboot(&[comp]),
                        DecisionKind::EjbMicroreboot,
                    ),
                    None => (
                        RecoveryAction::microreboot(&[web]),
                        DecisionKind::WarMicroreboot,
                    ),
                }
            }
            PolicyLevel::War => (
                RecoveryAction::microreboot(&[web]),
                DecisionKind::WarMicroreboot,
            ),
            PolicyLevel::App => (RecoveryAction::RestartApp, DecisionKind::AppRestart),
            PolicyLevel::Process => (RecoveryAction::RestartProcess, DecisionKind::ProcessRestart),
            PolicyLevel::Os => (RecoveryAction::RebootOs, DecisionKind::OsReboot),
            PolicyLevel::Human => (RecoveryAction::NotifyHuman, DecisionKind::NotifyHuman),
        }
    }

    /// Decides whether (and how) to recover `node` right now.
    ///
    /// Returns `None` while evidence is insufficient, detection is still
    /// within `Tdet`, or a recovery is already in flight.
    pub fn decide(&mut self, node: usize, now: SimTime) -> Option<RecoveryAction> {
        let config = self.config;
        let web = self.web;
        let path_of = self.path_of;
        let diag = self.nodes.get_mut(node)?;
        if diag.exclusive || diag.in_flight >= config.max_concurrent.max(1) {
            return None;
        }
        // Reports must survive at least the configured detection delay,
        // or a large Tdet (Figure 5's sweep) would forget the evidence
        // before it may be acted on.
        diag.prune(now, config.score_window + config.detection_delay);
        // Under the conductor several decisions may be issued per episode,
        // each consuming its suspect's reports; gate on when the episode
        // began, or the surviving (younger) evidence would re-arm Tdet and
        // stagger concurrent diagnoses. Serial runs gate exactly as before.
        let first = if config.max_concurrent > 1 {
            diag.episode_first?
        } else {
            diag.first_report_at?
        };
        if now - first < config.detection_delay {
            return None;
        }
        // Score components along the failed URLs' static call paths. The
        // web component is on every path, so hits on it carry little
        // information.
        let mut scores: BTreeMap<&'static str, f64> = BTreeMap::new();
        let mut failing_ops: Vec<OpCode> = Vec::new();
        let mut network_reports = 0u64;
        let mut other_reports = 0u64;
        for (_, op, hint) in &diag.recent {
            match op {
                None => network_reports += 1,
                Some(op) => {
                    other_reports += 1;
                    if !failing_ops.contains(op) {
                        failing_ops.push(*op);
                    }
                    for comp in (path_of)(*op) {
                        let w = if *comp == web { 0.2 } else { 1.0 };
                        *scores.entry(comp).or_insert(0.0) += w;
                    }
                    // An error page naming the failing bean is far stronger
                    // evidence than path membership. Only weighed in when
                    // running under the conductor (`max_concurrent > 1`):
                    // the serial baseline must keep its exact decisions.
                    if config.max_concurrent > 1 {
                        if let Some(h) = hint {
                            *scores.entry(h.as_str()).or_insert(0.0) += 2.0;
                        }
                    }
                }
            }
        }
        // The evidence must implicate *some single component* strongly
        // enough (or show enough connection-level failures); summing over
        // a whole path would let one failed request trip the threshold.
        let max_score = scores.values().copied().fold(0.0, f64::max);
        let enough =
            max_score >= config.score_threshold || network_reports as f64 >= config.score_threshold;
        if !enough {
            return None;
        }
        // Level bookkeeping: failures shortly after a completed recovery
        // escalate; failures after a quiet period restart the ladder.
        if let Some(end) = diag.last_recovery_end {
            if first <= end + config.settle + config.observation {
                diag.level =
                    Self::escalate_level(&mut self.metrics, &self.bus, node, diag.level, now);
            } else {
                diag.level = config.start_level;
                diag.episode_anchor = None;
            }
        }
        // Convergence watchdog: an episode that has outlived its bound
        // forces an extra climb on every decision until it converges.
        let anchor = *diag.episode_anchor.get_or_insert(first);
        if let Some(bound) = config.watchdog_bound {
            if now - anchor > bound {
                diag.level =
                    Self::escalate_level(&mut self.metrics, &self.bus, node, diag.level, now);
                Self::emit(
                    &mut self.metrics,
                    &self.bus,
                    TelemetryEvent::WatchdogEscalated {
                        node,
                        elapsed: now - anchor,
                        at: now,
                    },
                );
            }
        }
        // Recurring failure patterns page a human (Section 4). Without the
        // convergence watchdog this branch absorbs the policy outright,
        // which replicates the paper's serial behaviour — but every
        // notification acks as a completed episode, so once it trips it
        // re-trips forever and the ladder below (including the dead-node
        // Process floor) never runs again. With the watchdog armed the
        // page goes out once per recurrence window and automated first aid
        // continues underneath it: paging an operator must not stop the
        // manager from restarting a process that has since died.
        diag.episode_ends
            .retain(|e| now - *e <= config.recurrence_window);
        if diag.episode_ends.len() as u32 >= config.recurrence_limit {
            let page_suppressed = config.watchdog_bound.is_some()
                && diag
                    .last_human_page
                    .is_some_and(|t| now - t <= config.recurrence_window);
            if !page_suppressed {
                diag.last_human_page = Some(now);
                Self::emit(
                    &mut self.metrics,
                    &self.bus,
                    TelemetryEvent::RecoveryDecision {
                        node,
                        decision: DecisionKind::NotifyHuman,
                        at: now,
                    },
                );
                diag.in_flight += 1;
                diag.exclusive = true;
                return Some(RecoveryAction::NotifyHuman);
            }
        }
        // Connection-level failures mean the process (or node) is gone:
        // component recovery is pointless.
        if network_reports > other_reports && diag.level < PolicyLevel::Process {
            diag.level = PolicyLevel::Process;
        }
        // Dead-node floor (hardened mode): at `Human` the ladder's action
        // is another page, but connection-dominated evidence means the
        // process is dead and no page revives it. Drop back to `Process`
        // so the node is restarted while the operator is on the way.
        if config.watchdog_bound.is_some()
            && diag.level == PolicyLevel::Human
            && network_reports > other_reports
        {
            diag.level = PolicyLevel::Process;
        }
        // Under the conductor, error-page hints name the failing bean
        // outright; trusting the most frequent hint separates overlapping
        // failure streams that path intersection (which sees the union of
        // all failing URLs) cannot. Serial runs never take this shortcut.
        let hinted: Option<&'static str> = if config.max_concurrent > 1 {
            let mut counts: BTreeMap<CompName, u64> = BTreeMap::new();
            for (_, _, hint) in &diag.recent {
                if let Some(h) = hint {
                    if h.as_str() != web {
                        *counts.entry(*h).or_insert(0) += 1;
                    }
                }
            }
            counts
                .into_iter()
                .max_by_key(|(c, n)| (*n, std::cmp::Reverse(c.as_str())))
                .map(|(c, _)| c.as_str())
        } else {
            None
        };
        let (mut action, mut decision) =
            Self::action_for(diag.level, hinted, &failing_ops, &scores, path_of, web);
        // Flap-driven escalation: a component that keeps coming back
        // inside the flap window climbs the ladder instead of being
        // microrebooted forever.
        if config.flap_limit > 0 {
            while let RecoveryAction::Microreboot { components } = &action {
                let flaps = components
                    .iter()
                    .filter_map(|c| match diag.urb_history.get(c) {
                        Some((last, strikes)) if now - *last <= config.flap_window => {
                            Some(*strikes)
                        }
                        _ => None,
                    })
                    .max()
                    .unwrap_or(0);
                if flaps < config.flap_limit {
                    break;
                }
                Self::emit(
                    &mut self.metrics,
                    &self.bus,
                    TelemetryEvent::FlapEscalated {
                        node,
                        flaps,
                        at: now,
                    },
                );
                diag.level =
                    Self::escalate_level(&mut self.metrics, &self.bus, node, diag.level, now);
                (action, decision) =
                    Self::action_for(diag.level, hinted, &failing_ops, &scores, path_of, web);
            }
        }
        // Reboot-storm damper: a component still in backoff defers the
        // whole decision; the evidence is retained, so a later poll
        // retries once the backoff expires.
        if config.storm_limit > 0 {
            if let RecoveryAction::Microreboot { components } = &action {
                diag.damped_until.retain(|_, until| *until > now);
                if let Some(until) = components
                    .iter()
                    .filter_map(|c| diag.damped_until.get(c).copied())
                    .max()
                {
                    let strikes = components
                        .iter()
                        .filter_map(|c| diag.urb_history.get(c).map(|(_, s)| *s))
                        .max()
                        .unwrap_or(0);
                    Self::emit(
                        &mut self.metrics,
                        &self.bus,
                        TelemetryEvent::StormDamped {
                            node,
                            strikes,
                            backoff: until - now,
                            at: now,
                        },
                    );
                    return None;
                }
            }
        }
        Self::emit(
            &mut self.metrics,
            &self.bus,
            TelemetryEvent::RecoveryDecision {
                node,
                decision,
                at: now,
            },
        );
        diag.in_flight += 1;
        match &action {
            RecoveryAction::Microreboot { components } => {
                if config.storm_limit > 0 || config.flap_limit > 0 {
                    for c in components {
                        let strikes = match diag.urb_history.get(c) {
                            Some((last, s)) if now - *last <= config.flap_window => s + 1,
                            _ => 1,
                        };
                        diag.urb_history.insert(*c, (now, strikes));
                        if config.storm_limit > 0 && strikes >= config.storm_limit {
                            let exp = u64::from((strikes - config.storm_limit).min(6));
                            diag.damped_until
                                .insert(*c, now + config.storm_backoff * (1u64 << exp));
                        }
                    }
                }
                if config.max_concurrent > 1 {
                    diag.consume(components, path_of);
                }
            }
            _ => diag.exclusive = true,
        }
        Some(action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(op: OpCode) -> &'static [&'static str] {
        match op.0 {
            0 => &["WAR", "Browse", "Item"],
            1 => &["WAR", "Bid", "Item"],
            2 => &["WAR", "Account"],
            _ => &["WAR"],
        }
    }

    fn rm(config: RmConfig) -> RecoveryManager {
        // Tests drive single-digit report volumes; pin a low threshold
        // (production default is tuned for 70 req/s noise floors).
        let config = RmConfig {
            score_threshold: 3.0,
            ..config
        };
        RecoveryManager::new(2, config, path, "WAR")
    }

    fn rep(op: u16, node: usize, at: u64, kind: FailureKind) -> FailureReport {
        FailureReport {
            at: SimTime::from_secs(at),
            op: OpCode(op),
            kind,
            node,
            hint: None,
        }
    }

    #[test]
    fn no_action_below_threshold() {
        let mut m = rm(RmConfig::default());
        m.report(&rep(0, 0, 1, FailureKind::Http));
        assert_eq!(m.decide(0, SimTime::from_secs(1)), None);
    }

    #[test]
    fn scores_pick_the_common_component() {
        let mut m = rm(RmConfig::default());
        // Ops 0 and 1 both traverse Item; it should outscore Browse/Bid.
        m.report(&rep(0, 0, 1, FailureKind::Http));
        m.report(&rep(1, 0, 1, FailureKind::Http));
        m.report(&rep(0, 0, 2, FailureKind::Keyword));
        let action = m.decide(0, SimTime::from_secs(2)).unwrap();
        assert_eq!(action, RecoveryAction::microreboot(&["Item"]));
        assert_eq!(m.stats().ejb_microreboots, 1);
    }

    #[test]
    fn busy_recovering_defers_new_actions() {
        let mut m = rm(RmConfig::default());
        for _ in 0..3 {
            m.report(&rep(0, 0, 1, FailureKind::Http));
        }
        assert!(m.decide(0, SimTime::from_secs(1)).is_some());
        m.report(&rep(0, 0, 2, FailureKind::Http));
        assert_eq!(m.decide(0, SimTime::from_secs(2)), None, "in flight");
    }

    #[test]
    fn persistent_failures_escalate_the_ladder() {
        let mut m = rm(RmConfig::default());
        let mut t = 1;
        let mut labels = Vec::new();
        for _ in 0..5 {
            for _ in 0..3 {
                m.report(&rep(0, 0, t, FailureKind::Http));
            }
            let action = m.decide(0, SimTime::from_secs(t)).unwrap();
            labels.push(format!("{action:?}"));
            m.recovery_finished(0, SimTime::from_secs(t + 1));
            // New failures after the settle window but inside the
            // observation window.
            t += 6;
        }
        assert!(labels[0].contains("Microreboot"));
        assert!(labels[1].contains("WAR") || labels[1].contains("Microreboot"));
        assert!(labels[2].contains("RestartApp"));
        assert!(labels[3].contains("RestartProcess"));
        assert!(labels[4].contains("RebootOs"));
    }

    #[test]
    fn quiet_period_resets_the_ladder() {
        let mut m = rm(RmConfig::default());
        for _ in 0..3 {
            m.report(&rep(0, 0, 1, FailureKind::Http));
        }
        m.decide(0, SimTime::from_secs(1)).unwrap();
        m.recovery_finished(0, SimTime::from_secs(2));
        // A long quiet spell, then a fresh failure burst.
        for _ in 0..3 {
            m.report(&rep(1, 0, 500, FailureKind::Http));
        }
        let action = m.decide(0, SimTime::from_secs(500)).unwrap();
        assert!(
            matches!(action, RecoveryAction::Microreboot { .. }),
            "ladder restarted at the cheapest rung"
        );
    }

    #[test]
    fn network_failures_jump_to_process_restart() {
        let mut m = rm(RmConfig::default());
        for _ in 0..4 {
            m.report(&rep(0, 0, 1, FailureKind::Network));
        }
        assert_eq!(
            m.decide(0, SimTime::from_secs(1)),
            Some(RecoveryAction::RestartProcess)
        );
    }

    #[test]
    fn detection_delay_postpones_action() {
        let mut m = rm(RmConfig {
            detection_delay: SimDuration::from_secs(10),
            ..RmConfig::default()
        });
        for _ in 0..5 {
            m.report(&rep(0, 0, 1, FailureKind::Http));
        }
        assert_eq!(m.decide(0, SimTime::from_secs(5)), None, "within Tdet");
        assert!(m.decide(0, SimTime::from_secs(11)).is_some());
    }

    #[test]
    fn start_level_process_models_the_jvm_restart_baseline() {
        let mut m = rm(RmConfig {
            start_level: PolicyLevel::Process,
            ..RmConfig::default()
        });
        for _ in 0..3 {
            m.report(&rep(0, 0, 1, FailureKind::Http));
        }
        assert_eq!(
            m.decide(0, SimTime::from_secs(1)),
            Some(RecoveryAction::RestartProcess)
        );
    }

    #[test]
    fn recurring_episodes_notify_a_human() {
        let mut m = rm(RmConfig {
            recurrence_limit: 3,
            ..RmConfig::default()
        });
        let mut t = 1;
        let mut saw_human = false;
        for _ in 0..6 {
            for _ in 0..3 {
                m.report(&rep(0, 0, t, FailureKind::Http));
            }
            if m.decide(0, SimTime::from_secs(t)) == Some(RecoveryAction::NotifyHuman) {
                saw_human = true;
                break;
            }
            m.recovery_finished(0, SimTime::from_secs(t + 1));
            t += 6;
        }
        assert!(saw_human);
    }

    #[test]
    fn hardened_recurrence_pages_once_then_keeps_reviving_the_node() {
        // The un-hardened recurrence branch absorbs the policy: every page
        // acks as a completed episode, so once it trips it re-trips on
        // every poll, and a node that dies afterwards is never restarted.
        // With the watchdog armed the page is one-shot per recurrence
        // window and the ladder (including the dead-node Process floor)
        // keeps running underneath it.
        let mut m = rm(RmConfig {
            recurrence_limit: 2,
            recurrence_window: SimDuration::from_secs(1_000),
            watchdog_bound: Some(SimDuration::from_secs(100_000)),
            ..RmConfig::default()
        });
        let mut t = 1;
        loop {
            for _ in 0..3 {
                m.report(&rep(0, 0, t, FailureKind::Http));
            }
            let action = m.decide(0, SimTime::from_secs(t)).expect("enough evidence");
            m.recovery_finished(0, SimTime::from_secs(t + 1));
            t += 50;
            if action == RecoveryAction::NotifyHuman {
                break;
            }
        }
        // The node dies: every report is now a connection failure. The
        // already-paged manager must restart the process, not page again.
        for _ in 0..3 {
            m.report(&rep(0, 0, t, FailureKind::Network));
        }
        assert_eq!(
            m.decide(0, SimTime::from_secs(t)),
            Some(RecoveryAction::RestartProcess)
        );
    }

    #[test]
    fn dead_node_floor_restarts_process_even_at_human() {
        // Hardened: connection-dominated evidence at the Human rung drops
        // back to Process — a page cannot revive a dead JVM.
        let mut m = rm(RmConfig {
            start_level: PolicyLevel::Human,
            watchdog_bound: Some(SimDuration::from_secs(100_000)),
            ..RmConfig::default()
        });
        for _ in 0..3 {
            m.report(&rep(0, 0, 1, FailureKind::Network));
        }
        assert_eq!(
            m.decide(0, SimTime::from_secs(1)),
            Some(RecoveryAction::RestartProcess)
        );
        // Un-hardened, the same evidence keeps paging (baseline pinned).
        let mut m = rm(RmConfig {
            start_level: PolicyLevel::Human,
            ..RmConfig::default()
        });
        for _ in 0..3 {
            m.report(&rep(0, 0, 1, FailureKind::Network));
        }
        assert_eq!(
            m.decide(0, SimTime::from_secs(1)),
            Some(RecoveryAction::NotifyHuman)
        );
    }

    #[test]
    fn parallel_mode_diagnoses_concurrent_faults_in_one_poll() {
        let mut m = rm(RmConfig {
            max_concurrent: 4,
            ..RmConfig::default()
        });
        // Two concurrent faults with disjoint evidence: op 0 (Browse/Item)
        // and op 2 (Account).
        for _ in 0..3 {
            m.report(&rep(0, 0, 1, FailureKind::Http));
            m.report(&rep(2, 0, 1, FailureKind::Http));
        }
        let first = m.decide(0, SimTime::from_secs(1)).unwrap();
        assert_eq!(first, RecoveryAction::microreboot(&["Account"]));
        // Issuing the first action consumed the Account evidence; the next
        // call in the same poll diagnoses the other stream.
        let second = m.decide(0, SimTime::from_secs(1)).unwrap();
        assert_eq!(second, RecoveryAction::microreboot(&["Browse"]));
        assert_eq!(m.decide(0, SimTime::from_secs(1)), None, "evidence spent");
        // Both stay in flight until acknowledged.
        m.recovery_finished(0, SimTime::from_secs(2));
        m.recovery_finished(0, SimTime::from_secs(2));
    }

    #[test]
    fn hints_separate_overlapping_failure_streams() {
        let hrep = |op: u16, at: u64, hint: &'static str| FailureReport {
            hint: Some(components::CompName::intern(hint)),
            ..rep(op, 0, at, FailureKind::Keyword)
        };
        let mut m = rm(RmConfig {
            max_concurrent: 4,
            ..RmConfig::default()
        });
        // Ops 0 and 1 share Item, so path intersection alone would blame
        // Item; the error pages name the true culprits.
        for _ in 0..3 {
            m.report(&hrep(0, 1, "Browse"));
            m.report(&hrep(1, 1, "Bid"));
        }
        let first = m.decide(0, SimTime::from_secs(1)).unwrap();
        assert_eq!(first, RecoveryAction::microreboot(&["Bid"]));
        let second = m.decide(0, SimTime::from_secs(1)).unwrap();
        assert_eq!(second, RecoveryAction::microreboot(&["Browse"]));
    }

    #[test]
    fn serial_mode_ignores_hints() {
        let mut m = rm(RmConfig::default());
        for _ in 0..3 {
            m.report(&FailureReport {
                hint: Some(components::CompName::intern("Browse")),
                ..rep(1, 0, 1, FailureKind::Keyword)
            });
        }
        // max_concurrent = 1: the pre-conductor intersection diagnosis
        // must be reproduced exactly (Bid is on fewer paths than Item).
        let action = m.decide(0, SimTime::from_secs(1)).unwrap();
        assert_eq!(action, RecoveryAction::microreboot(&["Bid"]));
    }

    #[test]
    fn storm_damper_defers_repeated_microreboots() {
        let mut m = rm(RmConfig {
            storm_limit: 2,
            storm_backoff: SimDuration::from_secs(100),
            ..RmConfig::default()
        });
        let mut t = 1;
        let mut issued = 0;
        for _ in 0..4 {
            for _ in 0..3 {
                m.report(&rep(0, 0, t, FailureKind::Http));
            }
            if m.decide(0, SimTime::from_secs(t)).is_some() {
                issued += 1;
                m.recovery_finished(0, SimTime::from_secs(t + 1));
            }
            // Recur outside settle + observation so the undamped ladder
            // would reset and re-microreboot forever.
            t += 40;
        }
        assert_eq!(issued, 2, "third and fourth attempts sit in backoff");
        assert!(m.stats().storm_damped >= 2);
    }

    #[test]
    fn flap_escalation_climbs_instead_of_re_microrebooting() {
        let mut m = rm(RmConfig {
            flap_limit: 2,
            flap_window: SimDuration::from_secs(600),
            ..RmConfig::default()
        });
        let mut t = 1;
        let mut actions = Vec::new();
        for _ in 0..6 {
            for _ in 0..3 {
                m.report(&rep(0, 0, t, FailureKind::Http));
            }
            if let Some(a) = m.decide(0, SimTime::from_secs(t)) {
                actions.push(a);
                m.recovery_finished(0, SimTime::from_secs(t + 1));
            }
            t += 40; // slow flap: each burst looks like a fresh episode
        }
        assert!(
            actions.contains(&RecoveryAction::RestartApp),
            "flap escalation must leave the microreboot rungs: {actions:?}"
        );
        let same_comp_urbs = actions
            .iter()
            .filter(|a| matches!(a, RecoveryAction::Microreboot { components } if components[0].as_str() == "Item"))
            .count();
        assert!(same_comp_urbs <= 2, "flap cap exceeded: {actions:?}");
        assert!(m.stats().flap_escalations >= 1);
    }

    #[test]
    fn watchdog_escalates_overlong_episodes() {
        let mut m = rm(RmConfig {
            watchdog_bound: Some(SimDuration::from_secs(10)),
            ..RmConfig::default()
        });
        for _ in 0..3 {
            m.report(&rep(0, 0, 1, FailureKind::Http));
        }
        assert!(m.decide(0, SimTime::from_secs(1)).is_some());
        m.recovery_finished(0, SimTime::from_secs(2));
        // Still failing 19 s into the episode: the plain ladder would only
        // reach War; the watchdog forces one extra rung.
        for _ in 0..3 {
            m.report(&rep(0, 0, 20, FailureKind::Http));
        }
        assert_eq!(
            m.decide(0, SimTime::from_secs(20)),
            Some(RecoveryAction::RestartApp)
        );
        assert_eq!(m.stats().watchdog_escalations, 1);
    }

    #[test]
    fn saturation_at_human_is_visible() {
        let mut m = rm(RmConfig {
            recurrence_limit: 100,
            ..RmConfig::default()
        });
        let mut t = 1;
        for _ in 0..8 {
            for _ in 0..3 {
                m.report(&rep(0, 0, t, FailureKind::Http));
            }
            let _ = m.decide(0, SimTime::from_secs(t));
            m.recovery_finished(0, SimTime::from_secs(t + 1));
            t += 6;
        }
        assert!(
            m.stats().escalations_saturated >= 1,
            "escalating past Human must be counted, not silent"
        );
        assert!(m.stats().human_notifications >= 2);
    }

    #[test]
    fn nodes_are_diagnosed_independently() {
        let mut m = rm(RmConfig::default());
        for _ in 0..3 {
            m.report(&rep(0, 1, 1, FailureKind::Http));
        }
        assert_eq!(m.decide(0, SimTime::from_secs(1)), None);
        assert!(m.decide(1, SimTime::from_secs(1)).is_some());
    }
}
