//! Failover-first recovery: move the traffic away before touching the
//! node.
//!
//! The opening move for any failure evidence is a [`Failover`] action —
//! the load balancer redirects the node's traffic to its peers for a
//! hold period, trading resource headroom on the survivors for zero
//! reboot-seconds on the suspect. Only when the evidence survives the
//! failover hold does the policy recover in place (suspect microreboot →
//! process → OS), with the usual dead-process shortcut and a
//! page-once-then-keep-reviving floor.
//!
//! [`Failover`]: RecoveryAction::Failover

use simcore::telemetry::{DecisionKind, TelemetryEvent};
use simcore::SimTime;
use workload::detect::FailureReport;

use crate::manager::{RecoveryAction, RmConfig};
use crate::policy::{Evidence, PathOf, PolicyCtx, PolicyLevel, RecoveryPolicy};

#[derive(Debug, Default)]
struct Node {
    ev: Evidence,
    /// Escalation rung: 0 failover, 1 microreboot, 2 process, 3 OS,
    /// 4 page-once-then-process.
    rung: u8,
    in_flight: usize,
    paged: bool,
}

/// Failover-first policy (see module docs).
// urb-lint: volatile-state(crash)
pub struct FailoverFirstPolicy {
    // urb-lint: allow(S001) — immutable policy configuration; a ReHype reboot reloads it from the build.
    config: RmConfig,
    // urb-lint: allow(S001) — immutable policy configuration; a ReHype reboot reloads it from the build.
    path_of: PathOf,
    // urb-lint: allow(S001) — immutable policy configuration; a ReHype reboot reloads it from the build.
    web: &'static str,
    nodes: Vec<Node>,
}

impl FailoverFirstPolicy {
    /// Creates the policy for `nodes` nodes.
    pub fn new(nodes: usize, config: RmConfig, path_of: PathOf, web: &'static str) -> Self {
        FailoverFirstPolicy {
            config,
            path_of,
            web,
            nodes: (0..nodes).map(|_| Node::default()).collect(),
        }
    }
}

impl RecoveryPolicy for FailoverFirstPolicy {
    fn name(&self) -> &'static str {
        "failover-first"
    }

    fn observe(&mut self, r: &FailureReport, _ctx: &mut PolicyCtx<'_>) {
        if let Some(node) = self.nodes.get_mut(r.node) {
            node.ev.observe(r, self.config.settle);
        }
    }

    fn decide(
        &mut self,
        node_idx: usize,
        now: SimTime,
        ctx: &mut PolicyCtx<'_>,
    ) -> Option<RecoveryAction> {
        let config = self.config;
        let path_of = self.path_of;
        let web = self.web;
        let node = self.nodes.get_mut(node_idx)?;
        if node.in_flight > 0 {
            return None;
        }
        node.ev
            .prune(now, config.score_window + config.detection_delay);
        if !node.ev.enough(config.score_threshold, path_of, web) {
            return None;
        }
        let first = node.ev.first_report_at?;
        if now - first < config.detection_delay {
            return None;
        }
        if let Some(end) = node.ev.last_recovery_end {
            if first <= end + config.settle + config.observation {
                node.rung = (node.rung + 1).min(4);
            } else {
                node.rung = 0;
                node.paged = false;
            }
        }
        // Failover is always tried first — that is the policy's bet — but
        // once it has been spent, connection-dominated evidence means the
        // process is dead and in-place component repair is pointless.
        let (network, other) = node.ev.counts();
        if network > other && node.rung == 1 {
            node.rung = 2;
        }
        let (action, decision) = match node.rung {
            0 => (RecoveryAction::Failover, DecisionKind::Failover),
            1 => match node.ev.suspect(path_of, web) {
                Some(c) => (
                    RecoveryAction::microreboot(&[c]),
                    DecisionKind::EjbMicroreboot,
                ),
                None => (
                    RecoveryAction::microreboot(&[web]),
                    DecisionKind::WarMicroreboot,
                ),
            },
            2 => (RecoveryAction::RestartProcess, DecisionKind::ProcessRestart),
            3 => (RecoveryAction::RebootOs, DecisionKind::OsReboot),
            _ => {
                if node.paged {
                    (RecoveryAction::RestartProcess, DecisionKind::ProcessRestart)
                } else {
                    node.paged = true;
                    (RecoveryAction::NotifyHuman, DecisionKind::NotifyHuman)
                }
            }
        };
        ctx.emit(TelemetryEvent::RecoveryDecision {
            node: node_idx,
            decision,
            at: now,
        });
        node.in_flight += 1;
        node.ev.clear();
        Some(action)
    }

    fn recovery_finished(&mut self, node_idx: usize, now: SimTime, _ctx: &mut PolicyCtx<'_>) {
        let Some(node) = self.nodes.get_mut(node_idx) else {
            return;
        };
        node.in_flight = node.in_flight.saturating_sub(1);
        node.ev.last_recovery_end = Some(now);
        node.ev.clear();
    }

    fn in_flight(&self, node: usize) -> usize {
        self.nodes.get(node).map_or(0, |n| n.in_flight)
    }

    fn level_of(&self, node: usize) -> PolicyLevel {
        match self.nodes.get(node).map_or(0, |n| n.rung) {
            0 | 1 => PolicyLevel::Ejb,
            2 => PolicyLevel::Process,
            3 => PolicyLevel::Os,
            _ => PolicyLevel::Human,
        }
    }

    fn crash(&mut self, _now: SimTime, _ctx: &mut PolicyCtx<'_>) {
        for node in &mut self.nodes {
            *node = Node::default();
        }
    }
}
