//! Retry-budget-with-hedging recovery: spend a deferral budget letting
//! client retries absorb the failure before committing to reboots.
//!
//! Each time the evidence crosses the threshold while budget remains, the
//! policy *defers* — it clears the evidence and lets the retry layer mask
//! the fault — and, on a seeded coin flip, also *hedges* with a cheap
//! suspect microreboot (paying a small reboot cost now against the chance
//! the deferral alone would not have cured it). A quiet spell refills the
//! budget; an exhausted budget drops the policy onto a reboot ladder.

use simcore::telemetry::{DecisionKind, TelemetryEvent};
use simcore::{SimRng, SimTime};
use workload::detect::FailureReport;

use crate::manager::{RecoveryAction, RmConfig};
use crate::policy::{Evidence, PathOf, PolicyCtx, PolicyLevel, RecoveryPolicy};

/// Deferrals granted per quiet period.
const BUDGET: u32 = 3;

#[derive(Debug)]
struct Node {
    ev: Evidence,
    budget: u32,
    /// Escalation rung once the budget is spent: 0 microreboot,
    /// 1 process, 2 OS, 3 page-once-then-process.
    rung: u8,
    in_flight: usize,
    paged: bool,
}

impl Default for Node {
    fn default() -> Self {
        Node {
            ev: Evidence::default(),
            budget: BUDGET,
            rung: 0,
            in_flight: 0,
            paged: false,
        }
    }
}

/// Retry-budget-with-hedging policy (see module docs).
// urb-lint: volatile-state(crash)
pub struct RetryHedgePolicy {
    // urb-lint: allow(S001) — immutable policy configuration; a ReHype reboot reloads it from the build.
    config: RmConfig,
    // urb-lint: allow(S001) — immutable policy configuration; a ReHype reboot reloads it from the build.
    path_of: PathOf,
    // urb-lint: allow(S001) — immutable policy configuration; a ReHype reboot reloads it from the build.
    web: &'static str,
    nodes: Vec<Node>,
    /// Seeded hedging coin — the only randomness any shipped policy
    /// draws, reproduced bit-for-bit from the build seed.
    // urb-lint: allow(S001) — deliberately survives crash(): the RNG models the policy's code, not its volatile state.
    rng: SimRng,
}

impl RetryHedgePolicy {
    /// Creates the policy for `nodes` nodes, hedging off `seed`.
    pub fn new(
        nodes: usize,
        config: RmConfig,
        path_of: PathOf,
        web: &'static str,
        seed: u64,
    ) -> Self {
        RetryHedgePolicy {
            config,
            path_of,
            web,
            nodes: (0..nodes).map(|_| Node::default()).collect(),
            rng: SimRng::seed_from(seed ^ 0x4ed6_e5ed_6e44_5eed),
        }
    }
}

impl RecoveryPolicy for RetryHedgePolicy {
    fn name(&self) -> &'static str {
        "retry-hedge"
    }

    fn observe(&mut self, r: &FailureReport, _ctx: &mut PolicyCtx<'_>) {
        if let Some(node) = self.nodes.get_mut(r.node) {
            node.ev.observe(r, self.config.settle);
        }
    }

    fn decide(
        &mut self,
        node_idx: usize,
        now: SimTime,
        ctx: &mut PolicyCtx<'_>,
    ) -> Option<RecoveryAction> {
        let config = self.config;
        let path_of = self.path_of;
        let web = self.web;
        let node = self.nodes.get_mut(node_idx)?;
        if node.in_flight > 0 {
            return None;
        }
        node.ev
            .prune(now, config.score_window + config.detection_delay);
        if !node.ev.enough(config.score_threshold, path_of, web) {
            return None;
        }
        let first = node.ev.first_report_at?;
        if now - first < config.detection_delay {
            return None;
        }
        // Quiet spell: refill the deferral budget and reset the ladder.
        if let Some(end) = node.ev.last_recovery_end {
            if first > end + config.settle + config.observation {
                node.budget = BUDGET;
                node.rung = 0;
                node.paged = false;
            } else {
                node.rung = (node.rung + 1).min(3);
            }
        }
        let (network, other) = node.ev.counts();
        if network > other {
            // A dead process cannot be retried around: stop deferring and
            // jump to reviving it.
            node.budget = 0;
            if node.rung < 1 {
                node.rung = 1;
            }
        }
        if node.budget > 0 {
            node.budget -= 1;
            let suspect = node.ev.suspect(path_of, web);
            ctx.emit(TelemetryEvent::HedgeDeferred {
                node: node_idx,
                budget_left: node.budget,
                at: now,
            });
            node.ev.clear();
            if self.rng.chance(0.5) {
                // Hedge: pay for a cheap microreboot now in case the
                // deferral alone would not have cured the fault.
                let node = self.nodes.get_mut(node_idx)?;
                let (action, decision) = match suspect {
                    Some(c) => (
                        RecoveryAction::microreboot(&[c]),
                        DecisionKind::EjbMicroreboot,
                    ),
                    None => (
                        RecoveryAction::microreboot(&[web]),
                        DecisionKind::WarMicroreboot,
                    ),
                };
                ctx.emit(TelemetryEvent::RecoveryDecision {
                    node: node_idx,
                    decision,
                    at: now,
                });
                node.in_flight += 1;
                return Some(action);
            }
            return None;
        }
        let (action, decision) = match node.rung {
            0 => match node.ev.suspect(path_of, web) {
                Some(c) => (
                    RecoveryAction::microreboot(&[c]),
                    DecisionKind::EjbMicroreboot,
                ),
                None => (
                    RecoveryAction::microreboot(&[web]),
                    DecisionKind::WarMicroreboot,
                ),
            },
            1 => (RecoveryAction::RestartProcess, DecisionKind::ProcessRestart),
            2 => (RecoveryAction::RebootOs, DecisionKind::OsReboot),
            _ => {
                if node.paged {
                    (RecoveryAction::RestartProcess, DecisionKind::ProcessRestart)
                } else {
                    node.paged = true;
                    (RecoveryAction::NotifyHuman, DecisionKind::NotifyHuman)
                }
            }
        };
        ctx.emit(TelemetryEvent::RecoveryDecision {
            node: node_idx,
            decision,
            at: now,
        });
        node.in_flight += 1;
        node.ev.clear();
        Some(action)
    }

    fn recovery_finished(&mut self, node_idx: usize, now: SimTime, _ctx: &mut PolicyCtx<'_>) {
        let Some(node) = self.nodes.get_mut(node_idx) else {
            return;
        };
        node.in_flight = node.in_flight.saturating_sub(1);
        node.ev.last_recovery_end = Some(now);
        node.ev.clear();
    }

    fn in_flight(&self, node: usize) -> usize {
        self.nodes.get(node).map_or(0, |n| n.in_flight)
    }

    fn level_of(&self, node: usize) -> PolicyLevel {
        match self.nodes.get(node).map_or(0, |n| n.rung) {
            0 => PolicyLevel::Ejb,
            1 => PolicyLevel::Process,
            2 => PolicyLevel::Os,
            _ => PolicyLevel::Human,
        }
    }

    fn crash(&mut self, _now: SimTime, _ctx: &mut PolicyCtx<'_>) {
        // The hedging RNG deliberately survives: it models the policy's
        // code, not its volatile state.
        for node in &mut self.nodes {
            *node = Node::default();
        }
    }
}
