//! Randomized scheduling invariants of the recovery conductor.
//!
//! A driver feeds the conductor random streams of submissions and
//! completions and checks, at every step, the properties the rest of the
//! system leans on:
//!
//! * no two **conflicting** tickets (overlapping expanded groups, or
//!   member sets sharing a call path) are ever active concurrently;
//! * the per-node concurrency cap is never exceeded;
//! * at most one coarse (non-component) recovery runs at a time, and
//!   never alongside component reboots;
//! * **ack conservation** — once everything drains, the conductor has
//!   acknowledged exactly one `recovery_finished` per submission, no
//!   matter how aggressively tickets coalesced or superseded each other.

use components::descriptor::{ComponentDescriptor, ComponentKind};
use components::graph::DependencyGraph;
use components::CompName;
use recovery::conductor::{Conductor, ConductorConfig, StartCmd, Submission};
use recovery::RecoveryAction;
use simcore::rng::SimRng;
use simcore::SimTime;
use urb_core::OpCode;

/// Ten beans; B0 groups with B1, B4 groups with B5 and B6.
const BEANS: [&str; 10] = ["B0", "B1", "B2", "B3", "B4", "B5", "B6", "B7", "B8", "B9"];

fn graph() -> DependencyGraph {
    let mut descriptors = vec![ComponentDescriptor::new("PWeb", ComponentKind::Web)];
    for b in BEANS {
        let d = ComponentDescriptor::new(b, ComponentKind::EntityBean);
        let d = match b {
            "B0" => d.with_group_refs(&["B1"]),
            "B4" => d.with_group_refs(&["B5", "B6"]),
            _ => d,
        };
        descriptors.push(d);
    }
    DependencyGraph::build(&descriptors).unwrap()
}

/// Call paths: op k touches bean k; ops 10/11 are two-bean paths that
/// create conflicts between member-disjoint groups (B2–B3, B7–B8).
fn path(op: OpCode) -> &'static [&'static str] {
    match op.0 {
        0 => &["B0"],
        1 => &["B1"],
        2 => &["B2"],
        3 => &["B3"],
        4 => &["B4"],
        5 => &["B5"],
        6 => &["B6"],
        7 => &["B7"],
        8 => &["B8"],
        9 => &["B9"],
        10 => &["B2", "B3"],
        11 => &["B7", "B8"],
        _ => &[],
    }
}

/// What the driver knows about a running ticket, for invariant checks.
enum Blast {
    Members(Vec<CompName>),
    Coarse,
}

fn blast_of(cmd: &StartCmd) -> Blast {
    match &cmd.action {
        RecoveryAction::Microreboot { components } => Blast::Members(components.clone()),
        _ => Blast::Coarse,
    }
}

fn check_invariants(
    conductor: &Conductor,
    active: &[(recovery::TicketId, Blast)],
    cap: usize,
    step: usize,
) {
    assert!(
        active.len() <= cap.max(1),
        "step {step}: concurrency cap exceeded"
    );
    for (i, (_, a)) in active.iter().enumerate() {
        for (_, b) in &active[i + 1..] {
            match (a, b) {
                (Blast::Members(ma), Blast::Members(mb)) => {
                    assert!(
                        !conductor.conflict_between(ma, mb),
                        "step {step}: two conflicting tickets ran concurrently: \
                         {ma:?} vs {mb:?}"
                    );
                }
                // A coarse recovery running alongside anything is a
                // conflict by definition.
                _ => panic!("step {step}: coarse recovery ran alongside another ticket"),
            }
        }
    }
}

#[test]
fn random_schedules_never_run_conflicting_tickets_and_conserve_acks() {
    for seed in 0..20u64 {
        let mut rng = SimRng::seed_from(0xc0_0d0c + seed);
        let cap = 1 + rng.uniform_usize(4);
        let mut conductor = Conductor::new(
            1,
            ConductorConfig {
                max_concurrent_per_node: cap,
                quarantine: true,
            },
            &graph(),
            path,
        );
        let mut active: Vec<(recovery::TicketId, Blast)> = Vec::new();
        let mut submissions = 0u32;
        let mut acks = 0u32;
        let now = SimTime::from_secs(1);

        for step in 0..300 {
            let do_submit = active.is_empty() || rng.chance(0.6);
            if do_submit {
                let action = if rng.chance(0.07) {
                    match rng.uniform_usize(3) {
                        0 => RecoveryAction::RestartApp,
                        1 => RecoveryAction::RestartProcess,
                        _ => RecoveryAction::RebootOs,
                    }
                } else {
                    let mut names = vec![*rng.pick(&BEANS).unwrap()];
                    if rng.chance(0.3) {
                        names.push(*rng.pick(&BEANS).unwrap());
                    }
                    RecoveryAction::microreboot(&names)
                };
                submissions += 1;
                match conductor.submit(0, action, now) {
                    Submission::Started(cmd) => {
                        active.push((cmd.ticket, blast_of(&cmd)));
                    }
                    Submission::Queued(_) | Submission::Coalesced(_) => {}
                }
            } else {
                let idx = rng.uniform_usize(active.len());
                let (id, _) = active.swap_remove(idx);
                let fin = conductor.on_finished(0, id, now);
                acks += fin.acks;
                for cmd in fin.start {
                    active.push((cmd.ticket, blast_of(&cmd)));
                }
            }
            assert_eq!(conductor.active_count(0), active.len());
            check_invariants(&conductor, &active, cap, step);
        }

        // Drain everything and check conservation.
        while let Some((id, _)) = active.pop() {
            let fin = conductor.on_finished(0, id, now);
            acks += fin.acks;
            for cmd in fin.start {
                active.push((cmd.ticket, blast_of(&cmd)));
            }
            check_invariants(&conductor, &active, cap, usize::MAX);
        }
        assert_eq!(
            conductor.active_count(0),
            0,
            "seed {seed}: nothing left running"
        );
        assert_eq!(conductor.queued_count(0), 0, "seed {seed}: queue drained");
        assert_eq!(
            acks, submissions,
            "seed {seed}: every submission must be acknowledged exactly once"
        );
    }
}
