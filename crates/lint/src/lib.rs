//! `urb-lint`: the workspace's determinism and exhaustiveness contract,
//! as a machine-checked gate.
//!
//! Every claim the reproduction makes — lost-work accounting, Taw dips,
//! golden-trace digests — rests on the simulation being deterministic.
//! This crate enforces that contract statically, in two rule families:
//!
//! * **Determinism rules (`D001`–`D008`)**, applied to every `src/` file
//!   of the simulation crates ([`SIM_CRATES`]): unordered containers in
//!   sim state, iteration over them, wall-clock and ambient
//!   nondeterminism, float accumulation over unordered containers, and
//!   (`D008`) kernel hot-path regressions — heap-boxed event closures on
//!   schedule paths and string-keyed metric bumps built with `format!` —
//!   outside the sanctioned closure-compat module
//!   (`simcore/src/event.rs`).
//! * **Exhaustiveness rules (`E001`–`E006`)**, applied to the canonical
//!   telemetry and fault surfaces: every `TelemetryEvent` variant must
//!   have an `encode_into` arm, trace encode/parse/kind arms, and a
//!   `MetricsRegistry` fold arm (with no wildcard), every `RebootLevel`
//!   must be handled in `lifecycle.rs`, every `faults::Fault` variant
//!   must have both an injection-conversion arm and a campaign-generator
//!   arm (so urb-chaos can reach the whole fault model), and (`E006`)
//!   every `RecoveryPolicy` implementation must be registered in the
//!   `PolicyChoice` tournament registry with every variant constructible,
//!   labelled, coded and rostered in `ALL`.
//!
//! The escape hatch is a pragma comment on the offending line or the
//! line above: `// urb-lint: allow(D001) — <justification>`. A pragma
//! without a justification is itself a violation (`P001`).
//!
//! The analysis is a hand-rolled lexer (comment/string masking, brace
//! tracking, `#[cfg(test)]` skipping) rather than a `syn` parse: the
//! workspace takes no external dependencies, and the contracts being
//! checked are lexically simple. The trade-off is documented in
//! DESIGN.md §7.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

pub mod model;

/// The crates whose `src/` trees are subject to the determinism rules.
///
/// `bench` is deliberately absent: CLI binaries may read `std::env::args`
/// and the filesystem. The lint crate itself is likewise out of scope.
pub const SIM_CRATES: &[&str] = &[
    "simcore",
    "core",
    "cluster",
    "workload",
    "recovery",
    "statestore",
    "ebid",
    "faults",
    "components",
];

/// Every rule id the tool can emit, with a one-line description.
pub const RULES: &[(&str, &str)] = &[
    (
        "D001",
        "HashMap/HashSet in sim-state: iteration order is randomized per process",
    ),
    (
        "D002",
        "iteration over a known-unordered container escapes into ordering-sensitive context",
    ),
    (
        "D003",
        "wall-clock time (Instant/SystemTime) inside the simulation",
    ),
    (
        "D004",
        "ambient randomness (thread_rng/random/OsRng) inside the simulation",
    ),
    (
        "D005",
        "environment access (std::env) inside the simulation",
    ),
    (
        "D006",
        "filesystem iteration (read_dir) has platform-dependent order",
    ),
    ("D007", "float accumulation over an unordered container"),
    (
        "D008",
        "heap-boxed event closure or string-keyed metric bump on the kernel hot path",
    ),
    ("E001", "TelemetryEvent variant missing an encode_into arm"),
    (
        "E002",
        "TelemetryEvent variant missing a trace encode/parse/kind arm",
    ),
    (
        "E003",
        "TelemetryEvent variant missing (or wildcarded) in the MetricsRegistry fold",
    ),
    ("E004", "RebootLevel variant unhandled in lifecycle.rs"),
    (
        "E005",
        "Fault variant missing an injection-conversion or campaign-generator arm",
    ),
    (
        "E006",
        "RecoveryPolicy impl or PolicyChoice variant missing from the tournament registry",
    ),
    (
        "S001",
        "volatile-state struct field not wiped by any reset-family method",
    ),
    (
        "S002",
        "mutable global state in a sim crate lives outside every reboot boundary",
    ),
    (
        "S003",
        "interior mutability inside a volatile-state struct hides state from the reboot wipe",
    ),
    (
        "S004",
        "cross-node state access outside kernel event dispatch (sharding hazard)",
    ),
    (
        "P001",
        "allow-pragma without a justification (or with an unknown rule id)",
    ),
    (
        "P002",
        "allow-pragma is stale: its rule no longer fires on the guarded line",
    ),
];

/// One violation: file, line, rule id, message and a suggested fix.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Path of the offending file (relative to the lint root when
    /// produced by [`lint_workspace`]).
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule id (`D001`…`P001`).
    pub rule: &'static str,
    /// What is wrong.
    pub message: String,
    /// The suggested fix.
    pub fix: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: urb-lint[{}] {}; fix: {}",
            self.file, self.line, self.rule, self.message, self.fix
        )
    }
}

// ---------------------------------------------------------------------------
// Lexical masking: separate code from comments and string contents
// ---------------------------------------------------------------------------

/// A source file split into per-line code text (string/char contents and
/// comments blanked out) and per-line comment text (for pragma parsing).
pub struct Masked {
    /// Code with comments and literal contents replaced by spaces.
    pub code: Vec<String>,
    /// Comment text per line (line + block comments).
    pub comments: Vec<String>,
}

/// Masks comments and string/char-literal contents out of `src`.
///
/// Handles line comments, nested block comments, string escapes, raw
/// strings (`r"…"`, `r#"…"#`), and distinguishes char literals from
/// lifetimes well enough for this codebase's lexical rules.
pub fn mask_source(src: &str) -> Masked {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
    }
    let mut st = St::Code;
    let mut code = Vec::new();
    let mut comments = Vec::new();
    let mut cline = String::new();
    let mut mline = String::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            code.push(std::mem::take(&mut cline));
            comments.push(std::mem::take(&mut mline));
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    st = St::LineComment;
                    cline.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(1);
                    cline.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = St::Str;
                    cline.push('"');
                    i += 1;
                } else if (c == 'r' || c == 'b')
                    && !prev_is_ident(&chars, i)
                    && raw_str_hashes(&chars, i).is_some()
                {
                    let (hashes, skip) = raw_str_hashes(&chars, i).expect("checked above");
                    st = St::RawStr(hashes);
                    for _ in 0..skip {
                        cline.push(' ');
                    }
                    cline.push('"');
                    i += skip + 1;
                } else if c == '\'' {
                    // Char literal ('x', '\n') vs lifetime ('a in &'a T).
                    let is_char = matches!(
                        (chars.get(i + 1), chars.get(i + 2)),
                        (Some('\\'), _) | (Some(_), Some('\''))
                    );
                    if is_char {
                        cline.push('\'');
                        i += 1;
                        while i < chars.len() && chars[i] != '\'' {
                            if chars[i] == '\\' {
                                i += 1;
                                cline.push(' ');
                            }
                            cline.push(' ');
                            i += 1;
                        }
                        if i < chars.len() {
                            cline.push('\'');
                            i += 1;
                        }
                    } else {
                        cline.push('\'');
                        i += 1;
                    }
                } else {
                    cline.push(c);
                    i += 1;
                }
            }
            St::LineComment => {
                mline.push(c);
                cline.push(' ');
                i += 1;
            }
            St::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    cline.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    cline.push_str("  ");
                    i += 2;
                } else {
                    mline.push(c);
                    cline.push(' ');
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    cline.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = St::Code;
                    cline.push('"');
                    i += 1;
                } else {
                    cline.push(' ');
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' && (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                    st = St::Code;
                    cline.push('"');
                    for _ in 0..hashes {
                        cline.push(' ');
                    }
                    i += hashes + 1;
                } else {
                    cline.push(' ');
                    i += 1;
                }
            }
        }
    }
    code.push(cline);
    comments.push(mline);
    Masked { code, comments }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If `chars[i..]` starts a raw string (`r"`, `r#"`, `br"`…), returns
/// `(hash_count, chars_before_the_quote)`.
fn raw_str_hashes(chars: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j - i))
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------------

/// An `// urb-lint: allow(<rule>) — <justification>` pragma.
#[derive(Clone, Debug)]
pub struct Pragma {
    /// 1-indexed line the pragma comment sits on.
    pub line: usize,
    /// The rule it allows.
    pub rule: String,
    /// The stated justification (may be empty — then it is a violation).
    pub justification: String,
}

/// Extracts every allow-pragma from the per-line comment text.
pub fn extract_pragmas(masked: &Masked) -> Vec<Pragma> {
    let mut out = Vec::new();
    for (idx, comment) in masked.comments.iter().enumerate() {
        let Some(pos) = comment.find("urb-lint:") else {
            continue;
        };
        let rest = &comment[pos + "urb-lint:".len()..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let after = &rest[open + "allow(".len()..];
        let Some(close) = after.find(')') else {
            continue;
        };
        let rule = after[..close].trim().to_string();
        let justification = after[close + 1..]
            .trim_start_matches(|c: char| c.is_whitespace() || c == '—' || c == '-' || c == ':')
            .trim()
            .to_string();
        out.push(Pragma {
            line: idx + 1,
            rule,
            justification,
        });
    }
    out
}

/// The set of `(rule, line)` pairs a pragma list suppresses: a pragma
/// covers its own line (trailing-comment style) and the line below.
fn allowed_set(pragmas: &[Pragma]) -> BTreeSet<(String, usize)> {
    let mut set = BTreeSet::new();
    for p in pragmas {
        set.insert((p.rule.clone(), p.line));
        set.insert((p.rule.clone(), p.line + 1));
    }
    set
}

// ---------------------------------------------------------------------------
// `#[cfg(test)]` skipping
// ---------------------------------------------------------------------------

/// Marks lines belonging to `#[cfg(test)]` items (attribute line through
/// the item's closing brace). Test code may use unordered containers and
/// ambient state freely.
pub fn test_line_mask(code: &[String]) -> Vec<bool> {
    let mut skipped = vec![false; code.len()];
    let mut li = 0;
    while li < code.len() {
        if let Some(col) = code[li].find("#[cfg(test)]") {
            let mut depth = 0usize;
            let mut seen_open = false;
            let mut l = li;
            let mut c = col;
            'outer: while l < code.len() {
                skipped[l] = true;
                let line: Vec<char> = code[l].chars().collect();
                while c < line.len() {
                    match line[c] {
                        '{' => {
                            depth += 1;
                            seen_open = true;
                        }
                        '}' => {
                            depth = depth.saturating_sub(1);
                            if seen_open && depth == 0 {
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                    c += 1;
                }
                l += 1;
                c = 0;
            }
            li = l + 1;
        } else {
            li += 1;
        }
    }
    skipped
}

// ---------------------------------------------------------------------------
// Determinism rules
// ---------------------------------------------------------------------------

pub(crate) fn find_word(line: &str, word: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let b = bytes[at - 1] as char;
            !(b.is_alphanumeric() || b == '_')
        };
        let end = at + word.len();
        let after_ok = end >= bytes.len() || {
            let a = bytes[end] as char;
            !(a.is_alphanumeric() || a == '_')
        };
        if before_ok && after_ok {
            out.push(at);
        }
        start = at + word.len();
    }
    out
}

/// The identifier being bound at a `name: HashMap<…>` / `name = HashMap…`
/// site, looking left from `idx`.
fn binding_name(line: &str, idx: usize) -> Option<String> {
    let before = line[..idx].trim_end();
    let before = before
        .strip_suffix(':')
        .or_else(|| before.strip_suffix('='))?
        .trim_end();
    let name: String = before
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if name.is_empty() || name == "mut" || name.chars().next().is_some_and(|c| c.is_numeric()) {
        None
    } else {
        Some(name)
    }
}

const ITER_METHODS: &[&str] = &[".keys()", ".values()", ".iter()", ".into_iter()", ".drain("];
const FLOAT_SINKS: &[&str] = &[".sum(", ".sum::<", ".fold(", ".product("];

/// One file's lint output plus the bookkeeping the workspace pass needs
/// for stale-pragma (`P002`) evaluation: every rule hit recorded *before*
/// pragma suppression, and the file's pragmas themselves.
pub struct FileLint {
    /// Post-suppression diagnostics.
    pub diags: Vec<Diagnostic>,
    /// Every `(rule, line)` that fired before pragma suppression.
    pub raw_hits: Vec<(&'static str, usize)>,
    /// The file's allow-pragmas.
    pub pragmas: Vec<Pragma>,
}

/// Runs the determinism rules (`D001`–`D007`, plus `P001` pragma checks)
/// over one source file. `label` is used as the diagnostic path.
pub fn lint_source(label: &str, src: &str) -> Vec<Diagnostic> {
    lint_source_with_hits(label, src).diags
}

/// [`lint_source`], keeping the pre-suppression hits and pragmas that
/// workspace-level stale-pragma detection needs.
pub fn lint_source_with_hits(label: &str, src: &str) -> FileLint {
    let masked = mask_source(src);
    let pragmas = extract_pragmas(&masked);
    let allowed = allowed_set(&pragmas);
    let skipped = test_line_mask(&masked.code);
    let known_rules: BTreeSet<&str> = RULES.iter().map(|(r, _)| *r).collect();

    let mut diags = Vec::new();
    let mut raw_hits: Vec<(&'static str, usize)> = Vec::new();
    for p in &pragmas {
        if !known_rules.contains(p.rule.as_str()) {
            diags.push(Diagnostic {
                file: label.to_string(),
                line: p.line,
                rule: "P001",
                message: format!("allow-pragma names unknown rule \"{}\"", p.rule),
                fix: "use one of the documented rule ids (DESIGN.md §7)".to_string(),
            });
        } else if p
            .justification
            .chars()
            .filter(|c| c.is_alphanumeric())
            .count()
            < 3
        {
            diags.push(Diagnostic {
                file: label.to_string(),
                line: p.line,
                rule: "P001",
                message: format!("allow({}) pragma has no justification", p.rule),
                fix: "append \"— <why this site is safe>\" to the pragma".to_string(),
            });
        }
    }

    // Pass 1: collect names bound to unordered containers (D001 sites).
    let mut unordered: BTreeSet<String> = BTreeSet::new();
    for (idx, line) in masked.code.iter().enumerate() {
        if skipped[idx] || line.trim_start().starts_with("use ") {
            continue;
        }
        for container in ["HashMap", "HashSet"] {
            for at in find_word(line, container) {
                if let Some(name) = binding_name(line, at) {
                    unordered.insert(name);
                }
                let lno = idx + 1;
                raw_hits.push(("D001", lno));
                if allowed.contains(&("D001".to_string(), lno)) {
                    continue;
                }
                diags.push(Diagnostic {
                    file: label.to_string(),
                    line: lno,
                    rule: "D001",
                    message: format!(
                        "{container} in simulation state: iteration order is randomized per process"
                    ),
                    fix: format!(
                        "use BTree{} (or justify with // urb-lint: allow(D001) — …)",
                        &container[4..]
                    ),
                });
            }
        }
    }

    // Pass 2: per-line rules.
    for (idx, line) in masked.code.iter().enumerate() {
        if skipped[idx] {
            continue;
        }
        let lno = idx + 1;
        let mut push = |rule: &'static str, message: String, fix: &str| {
            raw_hits.push((rule, lno));
            if !allowed.contains(&(rule.to_string(), lno)) {
                diags.push(Diagnostic {
                    file: label.to_string(),
                    line: lno,
                    rule,
                    message,
                    fix: fix.to_string(),
                });
            }
        };

        for name in &unordered {
            let iterates = find_word(line, name).iter().any(|&at| {
                let after = &line[at + name.len()..];
                ITER_METHODS.iter().any(|m| after.starts_with(m))
            }) || is_for_loop_over(line, name);
            if iterates {
                push(
                    "D002",
                    format!("iteration over unordered container `{name}` escapes its order"),
                    "convert the container to a BTree type or sort the collected keys",
                );
                if FLOAT_SINKS.iter().any(|s| line.contains(s)) {
                    push(
                        "D007",
                        format!("float accumulation over unordered container `{name}`"),
                        "accumulate in sorted key order (float addition is not associative)",
                    );
                }
            }
        }
        for pat in [
            "Instant::now",
            "SystemTime::now",
            "std::time::Instant",
            "std::time::SystemTime",
        ] {
            if line.contains(pat) {
                push(
                    "D003",
                    format!("wall-clock `{pat}` inside the simulation"),
                    "use the simulated clock (simcore::SimTime / EventQueue::now)",
                );
            }
        }
        for pat in [
            "thread_rng",
            "rand::random",
            "from_entropy",
            "OsRng",
            "getrandom",
        ] {
            if line.contains(pat) {
                push(
                    "D004",
                    format!("ambient randomness `{pat}` inside the simulation"),
                    "draw from the run's seeded simcore::SimRng",
                );
            }
        }
        if line.contains("std::env::") || line.contains("env::var(") || line.contains("env::vars(")
        {
            push(
                "D005",
                "environment access inside the simulation".to_string(),
                "thread configuration through explicit parameters",
            );
        }
        if line.contains("read_dir") {
            push(
                "D006",
                "filesystem iteration order is platform-dependent".to_string(),
                "collect and sort directory entries before iterating",
            );
        }
        // D008: kernel hot-path regressions. The slot-arena kernel stores
        // event payloads inline; a `Box::new` closure on a schedule path
        // reintroduces the per-event allocation the arena removed, and a
        // `format!`-built metric key reintroduces per-bump heap traffic the
        // symbol table removed. `simcore/src/event.rs` is sanctioned: it
        // *implements* the boxed-closure compatibility API.
        if !label.ends_with("simcore/src/event.rs") {
            let boxed_closure = line.contains("Box::new(|") || line.contains("Box::new(move");
            let boxed_on_schedule = line.contains("Box::new(") && line.contains("schedule");
            if boxed_closure || boxed_on_schedule {
                push(
                    "D008",
                    "heap-boxed event closure on the kernel hot path".to_string(),
                    "use an inline event-payload enum variant (or justify with // urb-lint: allow(D008) — …)",
                );
            }
            for pat in [".counter(&format!", ".inc(&format!", ".add(&format!"] {
                if line.contains(pat) {
                    push(
                        "D008",
                        format!(
                            "string-keyed metric bump `{}` allocates per call",
                            &pat[1..]
                        ),
                        "use an interned simcore::symbol and the *_sym registry API",
                    );
                }
            }
        }
    }
    FileLint {
        diags,
        raw_hits,
        pragmas,
    }
}

fn is_for_loop_over(line: &str, name: &str) -> bool {
    let trimmed = line.trim_start();
    if !trimmed.starts_with("for ") {
        return false;
    }
    let Some(pos) = line.find(" in ") else {
        return false;
    };
    let expr = line[pos + 4..]
        .trim_start()
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim_start_matches("self.");
    if !expr.starts_with(name) {
        return false;
    }
    match expr[name.len()..].chars().next() {
        // `map.iter()`-style is already caught by the method patterns.
        Some('.') => false,
        Some(c) => !(c.is_alphanumeric() || c == '_'),
        None => true,
    }
}

// ---------------------------------------------------------------------------
// Crash-only state-safety rules (S001–S004)
// ---------------------------------------------------------------------------

/// Interior-mutability / global-cell types whose presence marks state the
/// reboot wipe cannot see (S002 when global, S003 when inside a
/// volatile-state struct). `Atomic*` is matched by prefix separately.
const CELL_TYPES: &[&str] = &[
    "RefCell", "Cell", "OnceCell", "OnceLock", "Lazy", "Mutex", "RwLock",
];

/// Output of [`check_state_safety`] over one crate.
pub struct CrateLint {
    /// Post-suppression diagnostics.
    pub diags: Vec<Diagnostic>,
    /// Every `(label, rule, line)` that fired before pragma suppression.
    pub raw_hits: Vec<(String, &'static str, usize)>,
}

/// Runs the crash-only state-safety rules over one crate's sources
/// (`(label, src)` pairs — the rules are cross-file within a crate):
///
/// * **S001** every struct carrying a `// urb-lint: volatile-state`
///   marker must have a reset-family method whose bodies collectively
///   mention every field, so a newly added field nobody wipes fails CI.
///   A marker may name its methods — `volatile-state(crash, reset_all)`
///   — and then those may live on an enclosing type (the lifecycle wipes
///   run on `AppServer`, not on `RecoveryLifecycle` itself); a bare
///   marker uses [`model::DEFAULT_RESET_METHODS`] plus any `reset*`
///   method owned by the struct.
/// * **S002** mutable global state (`static mut`, `thread_local!`, a
///   `static` holding a cell/lock type) — state outside any reboot
///   boundary.
/// * **S003** interior mutability inside a volatile-state struct —
///   state a field-wipe audit cannot see through.
/// * **S004** (crates `cluster`/`core` only) indexing a `nodes` array
///   with anything but a parameter of the enclosing function: kernel
///   event dispatch hands handlers their target node index as a
///   parameter, so a literal, a local, or a loop variable is a
///   cross-node touch the future sharded kernel cannot order.
///   Constructors (`new`, `with_*`) are exempt — wiring the world
///   before the clock starts is not dispatch.
pub fn check_state_safety(crate_name: &str, files: &[(&str, &str)]) -> CrateLint {
    let model = model::CrateModel::parse(files);
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut raw_hits: Vec<(String, &'static str, usize)> = Vec::new();

    for (fidx, (label, src)) in files.iter().enumerate() {
        let masked = mask_source(src);
        let allowed = allowed_set(&extract_pragmas(&masked));
        let skipped = test_line_mask(&masked.code);
        let fm = &model.files[fidx];
        let mut push = |rule: &'static str, line: usize, message: String, fix: String| {
            raw_hits.push((label.to_string(), rule, line));
            if !allowed.contains(&(rule.to_string(), line)) {
                diags.push(Diagnostic {
                    file: label.to_string(),
                    line,
                    rule,
                    message,
                    fix,
                });
            }
        };

        // S002: mutable globals, per line.
        for (idx, line) in masked.code.iter().enumerate() {
            if skipped[idx] {
                continue;
            }
            let lno = idx + 1;
            if line.contains("thread_local!") {
                push(
                    "S002",
                    lno,
                    "thread-local state lives outside every reboot boundary".to_string(),
                    "move the state into a struct wiped by a crash()/reset path".to_string(),
                );
                continue;
            }
            for at in find_word(line, "static") {
                // `'static` is a lifetime, not a declaration.
                if at > 0 && line.as_bytes()[at - 1] == b'\'' {
                    continue;
                }
                let after = line[at + "static".len()..].trim_start();
                let holds_cell = CELL_TYPES.iter().any(|t| !find_word(line, t).is_empty())
                    || has_atomic_type(line);
                if after.starts_with("mut ") || holds_cell {
                    push(
                        "S002",
                        lno,
                        "mutable global state lives outside every reboot boundary".to_string(),
                        "move the state into a struct wiped by a crash()/reset path \
                         (or justify with // urb-lint: allow(S002) — …)"
                            .to_string(),
                    );
                }
                break;
            }
        }

        // S001 + S003: volatile-state structs.
        for st in &fm.structs {
            let Some(marker) = &st.marker else {
                continue;
            };
            let explicit = !marker.methods.is_empty();
            let method_names: Vec<String> = if explicit {
                marker.methods.clone()
            } else {
                let mut names: Vec<String> = model::DEFAULT_RESET_METHODS
                    .iter()
                    .map(|m| m.to_string())
                    .collect();
                for f in model.files.iter().flat_map(|f| f.fns.iter()) {
                    if f.owner.as_deref() == Some(st.name.as_str())
                        && f.name.starts_with("reset")
                        && !names.contains(&f.name)
                    {
                        names.push(f.name.clone());
                    }
                }
                names
            };
            let mut bodies = String::new();
            for m in &method_names {
                let fns = model.fns_named(m, &st.name);
                // A bare marker only trusts the struct's own methods; an
                // explicit list may resolve to an enclosing type's wipes.
                let fns: Vec<_> = if explicit {
                    fns
                } else {
                    fns.into_iter()
                        .filter(|f| f.owner.as_deref() == Some(st.name.as_str()))
                        .collect()
                };
                if fns.is_empty() && explicit {
                    push(
                        "S001",
                        marker.line,
                        format!(
                            "volatile-state marker on `{}` names reset method `{m}` \
                             but no such method exists",
                            st.name
                        ),
                        "fix the marker's method list (or implement the method)".to_string(),
                    );
                }
                for f in fns {
                    bodies.push_str(&f.body);
                    bodies.push('\n');
                }
            }
            if bodies.is_empty() {
                push(
                    "S001",
                    st.line,
                    format!(
                        "volatile-state struct `{}` has no reset-family method ({})",
                        st.name,
                        method_names.join(", ")
                    ),
                    "implement a crash()/reset method that wipes every field".to_string(),
                );
                continue;
            }
            for field in &st.fields {
                if find_word(&bodies, &field.name).is_empty() {
                    push(
                        "S001",
                        field.line,
                        format!(
                            "field `{}` of volatile-state struct `{}` is not wiped by any \
                             reset method ({}); a microreboot would leave residual state",
                            field.name,
                            st.name,
                            method_names.join("/")
                        ),
                        format!(
                            "wipe the field in {}() (or justify with \
                             // urb-lint: allow(S001) — …)",
                            method_names.first().map(String::as_str).unwrap_or("crash")
                        ),
                    );
                }
                if CELL_TYPES
                    .iter()
                    .any(|t| !find_word(&field.ty, t).is_empty())
                    || has_atomic_type(&field.ty)
                {
                    push(
                        "S003",
                        field.line,
                        format!(
                            "interior mutability `{}` inside volatile-state struct `{}` \
                             hides state from the reboot wipe",
                            field.ty, st.name
                        ),
                        "store the value directly so the reset method can see it \
                         (or justify with // urb-lint: allow(S003) — …)"
                            .to_string(),
                    );
                }
            }
        }

        // S004: cross-node indexing outside dispatch, cluster/core only.
        if crate_name == "cluster" || crate_name == "core" {
            for f in &fm.fns {
                if f.name == "new" || f.name.starts_with("with_") {
                    continue;
                }
                let mut flagged_lines: BTreeSet<usize> = BTreeSet::new();
                for li in (f.line - 1)..f.end_line.min(masked.code.len()) {
                    let line = &masked.code[li];
                    for at in find_word(line, "nodes") {
                        let rest = &line[at + "nodes".len()..];
                        if !rest.starts_with('[') {
                            continue;
                        }
                        let Some(close) = rest.find(']') else {
                            continue;
                        };
                        let idx_expr = rest[1..close].trim();
                        let plain_ident = !idx_expr.is_empty()
                            && idx_expr.chars().all(|c| c.is_alphanumeric() || c == '_')
                            && !idx_expr.chars().next().is_some_and(|c| c.is_numeric());
                        if plain_ident && f.params.iter().any(|p| p == idx_expr) {
                            continue;
                        }
                        if flagged_lines.insert(li + 1) {
                            push(
                                "S004",
                                li + 1,
                                format!(
                                    "cross-node access `nodes[{idx_expr}]` outside kernel \
                                     event dispatch in fn {}",
                                    f.name
                                ),
                                "route the mutation through a scheduled event targeted at \
                                 the node (or justify with // urb-lint: allow(S004) — …)"
                                    .to_string(),
                            );
                        }
                    }
                }
            }
        }
    }

    diags.sort();
    diags.dedup();
    CrateLint { diags, raw_hits }
}

/// `Atomic` followed by an identifier (AtomicU64, AtomicBool, …) with a
/// word boundary before it.
fn has_atomic_type(text: &str) -> bool {
    let bytes = text.as_bytes();
    let mut start = 0;
    while let Some(pos) = text[start..].find("Atomic") {
        let at = start + pos;
        let before_ok = at == 0 || {
            let b = bytes[at - 1] as char;
            !(b.is_alphanumeric() || b == '_')
        };
        if before_ok {
            return true;
        }
        start = at + "Atomic".len();
    }
    false
}

// ---------------------------------------------------------------------------
// Stale-pragma detection (P002)
// ---------------------------------------------------------------------------

/// Flags pragmas whose rule did not fire (pre-suppression) on the line
/// they guard. Only pragmas that pass `P001` — known rule, real
/// justification — are evaluated: a bare or unknown-rule pragma is
/// already a diagnostic and double-reporting it would be noise.
///
/// `pragmas_by_file` pairs each file label with its pragmas; `raw_hits`
/// is the union of every rule hit recorded before suppression, across
/// the per-file passes and the crate-level S-rule pass.
pub fn stale_pragma_diags(
    pragmas_by_file: &[(String, Vec<Pragma>)],
    raw_hits: &BTreeSet<(String, String, usize)>,
) -> Vec<Diagnostic> {
    let known_rules: BTreeSet<&str> = RULES.iter().map(|(r, _)| *r).collect();
    let mut diags = Vec::new();
    for (label, pragmas) in pragmas_by_file {
        for p in pragmas {
            let passes_p001 = known_rules.contains(p.rule.as_str())
                && p.justification
                    .chars()
                    .filter(|c| c.is_alphanumeric())
                    .count()
                    >= 3;
            if !passes_p001 {
                continue;
            }
            let live = [p.line, p.line + 1]
                .iter()
                .any(|&l| raw_hits.contains(&(label.clone(), p.rule.clone(), l)));
            if !live {
                diags.push(Diagnostic {
                    file: label.clone(),
                    line: p.line,
                    rule: "P002",
                    message: format!(
                        "allow({}) pragma is stale: {} no longer fires on the guarded line",
                        p.rule, p.rule
                    ),
                    fix: "delete the pragma (it suppresses nothing)".to_string(),
                });
            }
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// Exhaustiveness rules
// ---------------------------------------------------------------------------

/// One named source for the exhaustiveness checks.
pub struct ExhaustInput<'a> {
    /// Diagnostic path label.
    pub label: &'a str,
    /// File contents.
    pub src: &'a str,
}

/// An enum variant with the line it is declared on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// 1-indexed declaration line.
    pub line: usize,
}

/// Extracts the variants of `enum <name>` from masked source.
pub fn enum_variants(src: &str, name: &str) -> Vec<Variant> {
    let masked = mask_source(src);
    let mut out = Vec::new();
    let anchor = format!("enum {name}");
    let Some((start_line, body)) = body_after(&masked.code, &anchor) else {
        return out;
    };
    let mut depth = 0i32;
    for (off, line) in body.iter().enumerate() {
        let at_depth_zero = depth == 0;
        for c in line.chars() {
            match c {
                '{' | '(' | '[' => depth += 1,
                '}' | ')' | ']' => depth -= 1,
                _ => {}
            }
        }
        if !at_depth_zero {
            continue;
        }
        let t = line.trim_start();
        if t.starts_with('#') || t.is_empty() {
            continue;
        }
        let ident: String = t
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            out.push(Variant {
                name: ident,
                line: start_line + off,
            });
        }
    }
    out
}

/// Finds `anchor` in the masked code and returns `(first_body_line_1idx,
/// body_lines)` for the brace-delimited block that follows it.
fn body_after(code: &[String], anchor: &str) -> Option<(usize, Vec<String>)> {
    let (mut li, mut col) = code
        .iter()
        .enumerate()
        .find_map(|(i, l)| l.find(anchor).map(|c| (i, c + anchor.len())))?;
    // Scan to the opening brace.
    loop {
        if let Some(off) = code.get(li)?[col..].find('{') {
            col += off + 1;
            break;
        }
        li += 1;
        col = 0;
    }
    let mut depth = 1i32;
    let mut body = Vec::new();
    let first_line = li + 1;
    let mut cur = code[li][col..].to_string();
    loop {
        let mut cut = None;
        for (ci, c) in cur.char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = Some(ci);
                        break;
                    }
                }
                _ => {}
            }
        }
        if let Some(ci) = cut {
            body.push(cur[..ci].to_string());
            return Some((first_line, body));
        }
        body.push(cur);
        li += 1;
        cur = code.get(li)?.clone();
    }
}

fn camel_to_snake(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn body_text(code: &[String], anchor: &str) -> Option<String> {
    body_after(code, anchor).map(|(_, lines)| lines.join("\n"))
}

/// Cross-checks the telemetry surfaces. `telemetry` is required (it
/// declares the enums); the other three are checked when given, so
/// fixtures can exercise each rule in isolation.
pub fn check_exhaustiveness(
    telemetry: &ExhaustInput,
    trace: Option<&ExhaustInput>,
    metrics: Option<&ExhaustInput>,
    lifecycle: Option<&ExhaustInput>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let variants = enum_variants(telemetry.src, "TelemetryEvent");
    let levels = enum_variants(telemetry.src, "RebootLevel");
    let tel_code = mask_source(telemetry.src).code;

    // E001: every variant has an encode_into arm.
    if let Some(body) = body_text(&tel_code, "fn encode_into") {
        for v in &variants {
            if !body.contains(&format!("TelemetryEvent::{}", v.name)) {
                diags.push(Diagnostic {
                    file: telemetry.label.to_string(),
                    line: v.line,
                    rule: "E001",
                    message: format!(
                        "TelemetryEvent::{} has no encode_into arm (digests would miss it)",
                        v.name
                    ),
                    fix: "add a match arm with a fresh tag byte in encode_into".to_string(),
                });
            }
        }
    }

    // E002: trace kind/encode/parse arms.
    if let Some(trace) = trace {
        let code = mask_source(trace.src).code;
        let surfaces = [
            ("fn event_kind", "event_kind"),
            ("fn event_to_json", "event_to_json"),
        ];
        for (anchor, what) in surfaces {
            if let Some(body) = body_text(&code, anchor) {
                for v in &variants {
                    if !body.contains(&format!("TelemetryEvent::{}", v.name)) {
                        diags.push(Diagnostic {
                            file: trace.label.to_string(),
                            line: 1,
                            rule: "E002",
                            message: format!("TelemetryEvent::{} has no {what} arm", v.name),
                            fix: format!("add a match arm for the variant in {what}"),
                        });
                    }
                }
            }
        }
        // The parse arms match on string keys, which the masking blanks
        // out: check the raw lines of the function's span instead.
        if let Some((first_line, body)) = body_after(&code, "fn event_from_json") {
            let raw: Vec<&str> = trace.src.lines().collect();
            let span = raw[first_line - 1..(first_line - 1 + body.len()).min(raw.len())].join("\n");
            for v in &variants {
                let key = format!("\"{}\"", camel_to_snake(&v.name));
                if !span.contains(&key) {
                    diags.push(Diagnostic {
                        file: trace.label.to_string(),
                        line: 1,
                        rule: "E002",
                        message: format!(
                            "TelemetryEvent::{} ({key}) has no event_from_json arm",
                            v.name
                        ),
                        fix: "add a parse arm so round-tripping stays total".to_string(),
                    });
                }
            }
        }
    }

    // E003: the MetricsRegistry fold names every variant, no wildcard.
    if let Some(metrics) = metrics {
        let code = mask_source(metrics.src).code;
        if let Some((impl_start, impl_body)) =
            body_after(&code, "impl TelemetrySink for MetricsRegistry")
        {
            if let Some((fn_start, fn_body)) = body_after(&impl_body, "fn on_event") {
                let body = fn_body.join("\n");
                for v in &variants {
                    if !body.contains(&format!("TelemetryEvent::{}", v.name)) {
                        diags.push(Diagnostic {
                            file: metrics.label.to_string(),
                            line: impl_start,
                            rule: "E003",
                            message: format!(
                                "TelemetryEvent::{} is not folded by MetricsRegistry",
                                v.name
                            ),
                            fix: "add an explicit match arm (even if it only counts)".to_string(),
                        });
                    }
                }
                for (off, wline) in wildcard_arms(&fn_body) {
                    diags.push(Diagnostic {
                        file: metrics.label.to_string(),
                        line: impl_start + fn_start + off - 1,
                        rule: "E003",
                        message: format!(
                            "wildcard arm `{}` defeats the exhaustiveness guarantee",
                            wline.trim()
                        ),
                        fix: "enumerate the remaining variants explicitly".to_string(),
                    });
                }
            }
        }
    }

    // E004: every RebootLevel is handled in lifecycle.rs.
    if let Some(lifecycle) = lifecycle {
        let code = mask_source(lifecycle.src).code.join("\n");
        for lv in &levels {
            if !code.contains(&format!("RebootLevel::{}", lv.name)) {
                diags.push(Diagnostic {
                    file: lifecycle.label.to_string(),
                    line: 1,
                    rule: "E004",
                    message: format!("RebootLevel::{} is never handled in the lifecycle", lv.name),
                    fix: "handle the level in the reboot state machine".to_string(),
                });
            }
        }
    }
    diags
}

/// Cross-checks the fault model (E005): every `Fault` variant declared in
/// the faults crate must have an arm in `fn conversion` (so it routes to
/// an injection) and, when the campaign module is given, an arm in
/// `fn campaign_fault` (so urb-chaos can draw it). A variant missing from
/// either is a hole in the adversarial coverage the campaign claims.
pub fn check_fault_exhaustiveness(
    faults: &ExhaustInput,
    campaign: Option<&ExhaustInput>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let variants = enum_variants(faults.src, "Fault");
    let code = mask_source(faults.src).code;
    if let Some(body) = body_text(&code, "fn conversion") {
        for v in &variants {
            if !body.contains(&format!("Fault::{}", v.name)) {
                diags.push(Diagnostic {
                    file: faults.label.to_string(),
                    line: v.line,
                    rule: "E005",
                    message: format!(
                        "Fault::{} has no arm in `conversion` (it cannot be injected)",
                        v.name
                    ),
                    fix: "route the variant to an Injection in fn conversion".to_string(),
                });
            }
        }
    }
    if let Some(campaign) = campaign {
        let code = mask_source(campaign.src).code;
        // The campaign module may split generation across several draw
        // functions (the classic 18-way `campaign_fault`, the fail-slow
        // `degraded_fault`, the state-plane/network `netstate_fault`); a
        // variant reachable from any of them is covered.
        let mut covered = String::new();
        let mut any_generator = false;
        for f in [
            "fn campaign_fault",
            "fn degraded_fault",
            "fn netstate_fault",
        ] {
            if let Some(body) = body_text(&code, f) {
                any_generator = true;
                covered.push_str(&body);
            }
        }
        if any_generator {
            for v in &variants {
                if !covered.contains(&format!("Fault::{}", v.name)) {
                    diags.push(Diagnostic {
                        file: campaign.label.to_string(),
                        line: 1,
                        rule: "E005",
                        message: format!(
                            "Fault::{} has no campaign generator arm (none of campaign_fault, \
                             degraded_fault or netstate_fault draws it, so urb-chaos can never \
                             reach it)",
                            v.name
                        ),
                        fix: "add a generator arm for the variant in fn campaign_fault, \
                              fn degraded_fault or fn netstate_fault"
                            .to_string(),
                    });
                }
            }
        }
    }
    diags
}

/// Cross-checks the recovery-policy registry (E006). Every
/// `impl RecoveryPolicy for <Type>` across the recovery crate's sources
/// must be constructed in `PolicyChoice::build` — otherwise the policy
/// can never enter a tournament — and every `PolicyChoice` variant must
/// appear in the `ALL` roster and the `build`/`label`/`code` match
/// bodies, otherwise it is unrosterable, unconstructible, unlabelled or
/// has no `PolicyArmed` wire code.
pub fn check_policy_exhaustiveness(
    policy: &ExhaustInput,
    impls: &[ExhaustInput],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let code = mask_source(policy.src).code;
    let variants = enum_variants(policy.src, "PolicyChoice");
    // The registry surfaces all live in the inherent `impl PolicyChoice`
    // block (the file also has other `fn label`s, e.g. PolicyLevel's).
    let Some((_, impl_body)) = body_after(&code, "impl PolicyChoice") else {
        return diags;
    };
    for (anchor, what) in [
        ("fn build", "build (unconstructible)"),
        ("fn label", "label (no registry label)"),
        ("fn code", "code (no PolicyArmed wire code)"),
    ] {
        if let Some(body) = body_text(&impl_body, anchor) {
            for v in &variants {
                if !body.contains(&format!("PolicyChoice::{}", v.name)) {
                    diags.push(Diagnostic {
                        file: policy.label.to_string(),
                        line: v.line,
                        rule: "E006",
                        message: format!("PolicyChoice::{} has no arm in fn {what}", v.name),
                        fix: "add a match arm for the variant in the registry".to_string(),
                    });
                }
            }
        }
    }
    if let Some(start) = impl_body.iter().position(|l| l.contains("const ALL")) {
        let mut roster = String::new();
        for line in &impl_body[start..] {
            roster.push_str(line);
            roster.push('\n');
            if line.contains("];") {
                break;
            }
        }
        for v in &variants {
            if !roster.contains(&format!("PolicyChoice::{}", v.name)) {
                diags.push(Diagnostic {
                    file: policy.label.to_string(),
                    line: v.line,
                    rule: "E006",
                    message: format!(
                        "PolicyChoice::{} is missing from the ALL roster (tournaments skip it)",
                        v.name
                    ),
                    fix: "add the variant to PolicyChoice::ALL".to_string(),
                });
            }
        }
    }
    if let Some(build) = body_text(&impl_body, "fn build") {
        for input in impls {
            let masked = mask_source(input.src).code;
            for (idx, line) in masked.iter().enumerate() {
                let Some(pos) = line.find("impl RecoveryPolicy for ") else {
                    continue;
                };
                let rest = &line[pos + "impl RecoveryPolicy for ".len()..];
                let ty: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !ty.is_empty() && !build.contains(&ty) {
                    diags.push(Diagnostic {
                        file: input.label.to_string(),
                        line: idx + 1,
                        rule: "E006",
                        message: format!(
                            "{ty} implements RecoveryPolicy but is never built by PolicyChoice::build"
                        ),
                        fix: "register the policy under a PolicyChoice variant in fn build"
                            .to_string(),
                    });
                }
            }
        }
    }
    diags
}

/// `_ =>` arms at the top level of the first `match` in `fn_body`,
/// as `(line_offset_within_body, line_text)`.
fn wildcard_arms(fn_body: &[String]) -> Vec<(usize, String)> {
    let Some((start, match_body)) = body_after(fn_body, "match ") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut depth = 0i32;
    for (off, line) in match_body.iter().enumerate() {
        if depth == 0 && line.trim_start().starts_with("_ ") && line.contains("=>") {
            out.push((start + off, line.clone()));
        }
        for c in line.chars() {
            match c {
                '{' | '(' => depth += 1,
                '}' | ')' => depth -= 1,
                _ => {}
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Workspace driver
// ---------------------------------------------------------------------------

fn rs_files_sorted(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    // Directory order is platform-dependent (our own D006): collect and
    // sort so diagnostics come out in a stable order.
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files_sorted(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

/// Lints a workspace rooted at `root`: determinism and state-safety
/// rules over every `src/` file of the [`SIM_CRATES`], then the
/// exhaustiveness cross-checks over the canonical telemetry surfaces
/// (when present, so fixture trees exercising only the determinism rules
/// still work), and finally stale-pragma detection over the union of
/// pre-suppression hits.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let mut diags = Vec::new();
    let mut raw_hits: BTreeSet<(String, String, usize)> = BTreeSet::new();
    let mut pragmas_by_file: Vec<(String, Vec<Pragma>)> = Vec::new();
    for krate in SIM_CRATES {
        let src_dir = root.join("crates").join(krate).join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rs_files_sorted(&src_dir, &mut files)?;
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|file| {
                fs::read_to_string(file)
                    .map(|s| (rel_label(root, file), s))
                    .map_err(|e| format!("{}: {e}", file.display()))
            })
            .collect::<Result<_, _>>()?;
        for (label, src) in &sources {
            let file_lint = lint_source_with_hits(label, src);
            diags.extend(file_lint.diags);
            for (rule, line) in file_lint.raw_hits {
                raw_hits.insert((label.clone(), rule.to_string(), line));
            }
            pragmas_by_file.push((label.clone(), file_lint.pragmas));
        }
        let refs: Vec<(&str, &str)> = sources
            .iter()
            .map(|(l, s)| (l.as_str(), s.as_str()))
            .collect();
        let crate_lint = check_state_safety(krate, &refs);
        diags.extend(crate_lint.diags);
        for (label, rule, line) in crate_lint.raw_hits {
            raw_hits.insert((label, rule.to_string(), line));
        }
    }

    let tel_path = root.join("crates/simcore/src/telemetry.rs");
    if tel_path.is_file() {
        let tel_src =
            fs::read_to_string(&tel_path).map_err(|e| format!("{}: {e}", tel_path.display()))?;
        let read_opt = |rel: &str| -> Option<(String, String)> {
            let p = root.join(rel);
            fs::read_to_string(&p).ok().map(|s| (rel.to_string(), s))
        };
        let trace = read_opt("crates/simcore/src/trace.rs");
        let metrics = read_opt("crates/simcore/src/metrics.rs");
        let lifecycle = read_opt("crates/core/src/lifecycle.rs");
        fn as_input(t: &Option<(String, String)>) -> Option<ExhaustInput<'_>> {
            t.as_ref().map(|(l, s)| ExhaustInput { label: l, src: s })
        }
        let (trace_i, metrics_i, lifecycle_i) =
            (as_input(&trace), as_input(&metrics), as_input(&lifecycle));
        diags.extend(check_exhaustiveness(
            &ExhaustInput {
                label: &rel_label(root, &tel_path),
                src: &tel_src,
            },
            trace_i.as_ref(),
            metrics_i.as_ref(),
            lifecycle_i.as_ref(),
        ));
    }

    let faults_path = root.join("crates/faults/src/lib.rs");
    if faults_path.is_file() {
        let faults_src = fs::read_to_string(&faults_path)
            .map_err(|e| format!("{}: {e}", faults_path.display()))?;
        let campaign_path = root.join("crates/faults/src/campaign.rs");
        let campaign_src = fs::read_to_string(&campaign_path).ok();
        let campaign_i = campaign_src.as_ref().map(|s| ExhaustInput {
            label: "crates/faults/src/campaign.rs",
            src: s,
        });
        diags.extend(check_fault_exhaustiveness(
            &ExhaustInput {
                label: &rel_label(root, &faults_path),
                src: &faults_src,
            },
            campaign_i.as_ref(),
        ));
    }

    let policy_path = root.join("crates/recovery/src/policy.rs");
    if policy_path.is_file() {
        let policy_src = fs::read_to_string(&policy_path)
            .map_err(|e| format!("{}: {e}", policy_path.display()))?;
        let rec_dir = root.join("crates/recovery/src");
        let mut files = Vec::new();
        rs_files_sorted(&rec_dir, &mut files)?;
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|f| {
                fs::read_to_string(f)
                    .map(|s| (rel_label(root, f), s))
                    .map_err(|e| format!("{}: {e}", f.display()))
            })
            .collect::<Result<_, _>>()?;
        let impls: Vec<ExhaustInput> = sources
            .iter()
            .map(|(l, s)| ExhaustInput { label: l, src: s })
            .collect();
        diags.extend(check_policy_exhaustiveness(
            &ExhaustInput {
                label: &rel_label(root, &policy_path),
                src: &policy_src,
            },
            &impls,
        ));
    }

    // E-rule hits land at their diagnostic sites (they have no separate
    // suppression pass), so an allow(E…) pragma is live only where its
    // rule actually fires.
    for d in &diags {
        raw_hits.insert((d.file.clone(), d.rule.to_string(), d.line));
    }
    diags.extend(stale_pragma_diags(&pragmas_by_file, &raw_hits));

    diags.sort();
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_strips_comments_and_strings() {
        let m = mask_source("let x = \"HashMap\"; // HashMap here\nlet y = 1;");
        assert!(!m.code[0].contains("HashMap"));
        assert!(m.comments[0].contains("HashMap here"));
        assert_eq!(m.code[1], "let y = 1;");
    }

    #[test]
    fn masking_handles_raw_strings_and_lifetimes() {
        let m = mask_source("fn f<'a>(s: &'a str) { let r = r#\"HashSet\"#; }");
        assert!(!m.code[0].contains("HashSet"));
        assert!(m.code[0].contains("fn f<'a>(s: &'a str)"));
    }

    #[test]
    fn camel_to_snake_matches_trace_names() {
        assert_eq!(camel_to_snake("LbFailover"), "lb_failover");
        assert_eq!(camel_to_snake("TtlSweep"), "ttl_sweep");
        assert_eq!(camel_to_snake("RequestSubmitted"), "request_submitted");
    }

    #[test]
    fn pragma_requires_justification() {
        let src = "// urb-lint: allow(D001) — hot path, order never observed\nlet m: HashMap<u8, u8> = HashMap::new();\n// urb-lint: allow(D001)\nlet n: HashMap<u8, u8> = HashMap::new();\n";
        let diags = lint_source("x.rs", src);
        let rules: Vec<(&str, usize)> = diags.iter().map(|d| (d.rule, d.line)).collect();
        // Line 2 is pragma'd with a justification; line 3's pragma is bare
        // (P001) and so line 4 stays suppressed-but-flagged-at-source.
        assert!(rules.contains(&("P001", 3)), "{rules:?}");
        assert!(!rules.contains(&("D001", 2)), "{rules:?}");
    }

    #[test]
    fn cfg_test_blocks_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn f() { let m: HashMap<u8, u8> = HashMap::new(); }\n}\n";
        assert!(lint_source("x.rs", src).is_empty());
    }
}
