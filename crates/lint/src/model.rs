//! A lightweight item model over the lexer: structs with field lists and
//! impl blocks with method bodies, cross-file within a crate.
//!
//! The determinism rules (D001–D008) are line-local, but the crash-only
//! state-safety rules (S001–S004) need *items*: S001 must relate a
//! struct's field list to the body of its `crash()`/reset methods, S003
//! must look at field types, and S004 must know which function a
//! cross-node access sits in (and what that function's parameters are).
//! This module grows that model on top of [`crate::mask_source`] — still
//! a hand-rolled scan, no `syn` — with the same trade-off as the lexer:
//! it understands the subset of Rust this workspace writes (see the
//! round-trip selftest, which pins that the whole workspace parses).
//!
//! Designation of reboot-volatile state is by marker comment on (or in
//! the doc/attribute block above) the struct declaration:
//!
//! ```text
//! // urb-lint: volatile-state(crash, full_stop, complete_start)
//! pub struct Container { … }
//! ```
//!
//! The parenthesised list names the struct's reset-family methods; bare
//! `// urb-lint: volatile-state` uses the default family
//! ([`DEFAULT_RESET_METHODS`] plus any `reset*`-prefixed name).

use crate::{mask_source, test_line_mask, Masked};

/// Reset-method names assumed when a `volatile-state` marker does not
/// name its own list.
pub const DEFAULT_RESET_METHODS: &[&str] = &["crash", "full_stop", "wipe", "clear"];

/// One named struct field.
#[derive(Clone, Debug)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// The declared type, as written on the declaration line.
    pub ty: String,
    /// 1-indexed declaration line.
    pub line: usize,
}

/// A `volatile-state` designation marker.
#[derive(Clone, Debug)]
pub struct VolatileMarker {
    /// 1-indexed line the marker comment sits on.
    pub line: usize,
    /// Explicit reset-method names; empty means the default family.
    pub methods: Vec<String>,
}

/// A struct declaration with its named fields.
#[derive(Clone, Debug)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// 1-indexed declaration line.
    pub line: usize,
    /// Named fields (empty for tuple/unit structs).
    pub fields: Vec<FieldDef>,
    /// The `volatile-state` marker, when designated.
    pub marker: Option<VolatileMarker>,
}

/// A function or method with its body text and span.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// The `impl` target type, for methods (`None` for free functions).
    pub owner: Option<String>,
    /// Parameter names (patterns reduced to their binding identifier).
    pub params: Vec<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    /// 1-indexed last line of the body.
    pub end_line: usize,
    /// The body text (masked code, newline-joined).
    pub body: String,
}

/// Everything the item model extracted from one source file.
pub struct FileModel {
    /// Diagnostic path label.
    pub label: String,
    /// Struct declarations.
    pub structs: Vec<StructDef>,
    /// Functions and methods (impl methods carry `owner`).
    pub fns: Vec<FnDef>,
}

/// Parses `src` into the item model. Never panics: constructs the model
/// from whatever the scan recognises and skips what it does not.
pub fn parse_file(label: &str, src: &str) -> FileModel {
    let masked = mask_source(src);
    let skipped = test_line_mask(&masked.code);
    let mut model = FileModel {
        label: label.to_string(),
        structs: Vec::new(),
        fns: Vec::new(),
    };
    parse_structs(&masked, &skipped, &mut model);
    parse_fns(&masked, &skipped, &mut model);
    model
}

/// Crate-wide model: the union of per-file models.
pub struct CrateModel {
    /// Per-file models.
    pub files: Vec<FileModel>,
}

impl CrateModel {
    /// Builds the model from `(label, src)` pairs.
    pub fn parse(files: &[(&str, &str)]) -> CrateModel {
        CrateModel {
            files: files
                .iter()
                .map(|(label, src)| parse_file(label, src))
                .collect(),
        }
    }

    /// All functions named `name` across the crate. When any of them is a
    /// method of `prefer_owner`, only those are returned (so another
    /// type's unrelated `reset` does not count as wiping this struct).
    pub fn fns_named(&self, name: &str, prefer_owner: &str) -> Vec<&FnDef> {
        let all: Vec<&FnDef> = self
            .files
            .iter()
            .flat_map(|f| f.fns.iter())
            .filter(|f| f.name == name)
            .collect();
        let owned: Vec<&FnDef> = all
            .iter()
            .copied()
            .filter(|f| f.owner.as_deref() == Some(prefer_owner))
            .collect();
        if owned.is_empty() {
            all
        } else {
            owned
        }
    }
}

// ---------------------------------------------------------------------------
// Struct parsing
// ---------------------------------------------------------------------------

fn parse_structs(masked: &Masked, skipped: &[bool], model: &mut FileModel) {
    let code = &masked.code;
    for idx in 0..code.len() {
        if skipped[idx] {
            continue;
        }
        let Some(name) = struct_decl_name(&code[idx]) else {
            continue;
        };
        // Distinguish `struct X { … }` from tuple/unit structs: the first
        // of `{`, `(`, `;` after the name decides.
        let Some(open) = find_struct_body_open(code, idx) else {
            model.structs.push(StructDef {
                name,
                line: idx + 1,
                fields: Vec::new(),
                marker: find_marker(masked, idx),
            });
            continue;
        };
        let fields = parse_fields(code, open);
        model.structs.push(StructDef {
            name,
            line: idx + 1,
            fields,
            marker: find_marker(masked, idx),
        });
    }
}

/// `pub struct Name` / `struct Name` on this line → `Name`.
fn struct_decl_name(line: &str) -> Option<String> {
    for at in crate::find_word(line, "struct") {
        // Reject `struct` inside a type position (e.g. none in this
        // codebase) by requiring the declaration shape: only whitespace,
        // `pub`, `pub(...)` before it.
        let before = line[..at].trim();
        let decl_ok = before.is_empty()
            || before == "pub"
            || (before.starts_with("pub") && before.ends_with(')'));
        if !decl_ok {
            continue;
        }
        let rest = line[at + "struct".len()..].trim_start();
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            return Some(name);
        }
    }
    None
}

/// Position `(line_idx, col_after_brace)` of the `{` opening the struct's
/// field body, or `None` for tuple/unit structs.
fn find_struct_body_open(code: &[String], start: usize) -> Option<(usize, usize)> {
    let mut angle = 0i32;
    for (li, line) in code.iter().enumerate().skip(start) {
        let from = if li == start {
            line.find("struct").unwrap_or(0)
        } else {
            0
        };
        for (ci, c) in line[from..].char_indices() {
            match c {
                '<' => angle += 1,
                '>' => angle -= 1,
                '{' if angle <= 0 => return Some((li, from + ci + 1)),
                '(' | ';' if angle <= 0 => return None,
                _ => {}
            }
        }
        if li > start + 8 {
            // Declarations do not span more than a few lines here; give
            // up rather than scanning the rest of the file.
            return None;
        }
    }
    None
}

/// Parses `name: Type,` fields from the body opened at `open`.
fn parse_fields(code: &[String], open: (usize, usize)) -> Vec<FieldDef> {
    let (mut li, mut col) = open;
    let mut depth = 1i32;
    let mut fields = Vec::new();
    while li < code.len() && depth > 0 {
        let line = &code[li][col.min(code[li].len())..];
        let entering_depth = depth;
        let mut closed_at: Option<usize> = None;
        for (ci, c) in line.char_indices() {
            match c {
                '{' | '(' | '[' => depth += 1,
                '}' | ')' | ']' => {
                    depth -= 1;
                    if depth == 0 {
                        closed_at = Some(ci);
                    }
                }
                _ => {}
            }
            if depth == 0 {
                break;
            }
        }
        // A field declaration sits at body depth 1, at line start.
        if entering_depth == 1 {
            let upto = closed_at.unwrap_or(line.len());
            if let Some(field) = field_on_line(&line[..upto], li + 1) {
                fields.push(field);
            }
        }
        li += 1;
        col = 0;
    }
    fields
}

fn field_on_line(line: &str, lno: usize) -> Option<FieldDef> {
    let t = line.trim();
    if t.is_empty() || t.starts_with('#') {
        return None;
    }
    let t = t
        .strip_prefix("pub(crate)")
        .or_else(|| t.strip_prefix("pub(super)"))
        .or_else(|| t.strip_prefix("pub"))
        .unwrap_or(t)
        .trim_start();
    let name: String = t
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || !t[name.len()..].trim_start().starts_with(':') {
        return None;
    }
    if name.chars().next().is_some_and(|c| c.is_numeric()) {
        return None;
    }
    let ty = t[name.len()..]
        .trim_start()
        .trim_start_matches(':')
        .trim()
        .trim_end_matches(',')
        .to_string();
    Some(FieldDef {
        name,
        ty,
        line: lno,
    })
}

/// Scans upward from the struct declaration through its doc/attribute
/// block for a `volatile-state` marker comment.
fn find_marker(masked: &Masked, struct_idx: usize) -> Option<VolatileMarker> {
    // The marker may also sit on the declaration line itself.
    let mut idx = struct_idx;
    loop {
        if let Some(m) = marker_in_comment(&masked.comments[idx], idx + 1) {
            return Some(m);
        }
        if idx == 0 {
            return None;
        }
        let above = idx - 1;
        let code = masked.code[above].trim();
        let is_comment_only = code.is_empty() && !masked.comments[above].is_empty();
        let is_attr = code.starts_with("#[");
        // Any other line — blank or code — ends the doc/attribute block.
        if is_comment_only || is_attr {
            idx = above;
        } else {
            return None;
        }
    }
}

fn marker_in_comment(comment: &str, lno: usize) -> Option<VolatileMarker> {
    let pos = comment.find("urb-lint:")?;
    let rest = comment[pos + "urb-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("volatile-state")?;
    let methods = if let Some(list) = rest.trim_start().strip_prefix('(') {
        let close = list.find(')')?;
        list[..close]
            .split(',')
            .map(|m| m.trim().to_string())
            .filter(|m| !m.is_empty())
            .collect()
    } else {
        Vec::new()
    };
    Some(VolatileMarker { line: lno, methods })
}

// ---------------------------------------------------------------------------
// Function/impl parsing
// ---------------------------------------------------------------------------

fn parse_fns(masked: &Masked, skipped: &[bool], model: &mut FileModel) {
    let code = &masked.code;
    // First map every line to the impl target type covering it (if any).
    let owners = impl_owner_per_line(code);
    let mut idx = 0;
    while idx < code.len() {
        if skipped[idx] {
            idx += 1;
            continue;
        }
        let line = &code[idx];
        let Some(fn_at) = find_fn_keyword(line) else {
            idx += 1;
            continue;
        };
        let after = &line[fn_at + 2..];
        let name: String = after
            .trim_start()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            idx += 1;
            continue;
        }
        let Some((params, body, end_line)) = parse_fn_rest(code, idx, fn_at) else {
            idx += 1;
            continue;
        };
        model.fns.push(FnDef {
            name,
            owner: owners[idx].clone(),
            params,
            line: idx + 1,
            end_line,
            body,
        });
        idx += 1;
    }
}

fn find_fn_keyword(line: &str) -> Option<usize> {
    crate::find_word(line, "fn").into_iter().find(|&at| {
        // Reject `fn` in type position (`fn(OpCode) -> …`): a declaration
        // has whitespace-or-nothing-or-visibility before it, and a name
        // (not `(`) after it.
        let before = line[..at].trim();
        let decl_ok = before.is_empty()
            || before.ends_with("pub")
            || before.ends_with(')')
            || before.ends_with("const")
            || before.ends_with("unsafe")
            || before.ends_with("async");
        let named = line[at + 2..]
            .trim_start()
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        decl_ok && named && !before.ends_with(':') && !before.ends_with('&')
    })
}

/// From a `fn` keyword, captures `(params, body_text, body_end_line)`.
/// Returns `None` for bodyless declarations (trait method signatures).
fn parse_fn_rest(
    code: &[String],
    start: usize,
    col: usize,
) -> Option<(Vec<String>, String, usize)> {
    // Capture the parameter list: text between the first `(` and its
    // matching `)`.
    let mut li = start;
    let mut ci = col;
    let mut params_text = String::new();
    let mut depth = 0i32;
    let mut in_params = false;
    'params: while li < code.len() {
        let line: Vec<char> = code[li].chars().collect();
        while ci < line.len() {
            let c = line[ci];
            match c {
                '(' => {
                    depth += 1;
                    if depth == 1 {
                        in_params = true;
                        ci += 1;
                        continue;
                    }
                }
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        ci += 1;
                        break 'params;
                    }
                }
                _ => {}
            }
            if in_params {
                params_text.push(c);
            }
            ci += 1;
        }
        params_text.push(' ');
        li += 1;
        ci = 0;
        if li > start + 16 {
            return None;
        }
    }
    // From after the params, find the body `{` — or a `;` first means a
    // bodyless trait signature.
    let mut depth = 0i32;
    loop {
        if li >= code.len() {
            return None;
        }
        let line: Vec<char> = code[li].chars().collect();
        while ci < line.len() {
            match line[ci] {
                '<' => depth += 1,
                '>' if depth > 0 => depth -= 1,
                ';' if depth == 0 => return None,
                '{' if depth == 0 => {
                    let (body, end_line) = capture_body(code, li, ci + 1);
                    return Some((split_params(&params_text), body, end_line));
                }
                _ => {}
            }
            ci += 1;
        }
        li += 1;
        ci = 0;
        if li > start + 24 {
            return None;
        }
    }
}

fn capture_body(code: &[String], mut li: usize, mut col: usize) -> (String, usize) {
    let mut depth = 1i32;
    let mut body = String::new();
    while li < code.len() {
        let line = &code[li];
        let chars: Vec<char> = line.chars().collect();
        let mut ci = col;
        while ci < chars.len() {
            match chars[ci] {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return (body, li + 1);
                    }
                }
                c => body.push(c),
            }
            if matches!(chars[ci], '{' | '}') {
                body.push(chars[ci]);
            }
            ci += 1;
        }
        body.push('\n');
        li += 1;
        col = 0;
    }
    (body, code.len())
}

fn split_params(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in text.chars() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth <= 0 => {
                if let Some(name) = param_name(&cur) {
                    out.push(name);
                }
                cur.clear();
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    if let Some(name) = param_name(&cur) {
        out.push(name);
    }
    out
}

fn param_name(param: &str) -> Option<String> {
    let p = param.trim();
    if p.is_empty() {
        return None;
    }
    if p.ends_with("self") {
        return Some("self".to_string());
    }
    let p = p.strip_prefix("mut ").unwrap_or(p);
    let name: String = p
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || !p[name.len()..].trim_start().starts_with(':') {
        return None;
    }
    Some(name)
}

/// For each line, the `impl` target type whose block covers it.
fn impl_owner_per_line(code: &[String]) -> Vec<Option<String>> {
    let mut owners: Vec<Option<String>> = vec![None; code.len()];
    for idx in 0..code.len() {
        let Some(ty) = impl_decl_type(&code[idx]) else {
            continue;
        };
        // Find the block's opening brace and mark its span.
        let Some((mut li, mut ci)) = find_open_brace(code, idx) else {
            continue;
        };
        let mut depth = 1i32;
        while li < code.len() {
            owners[li] = Some(ty.clone());
            let chars: Vec<char> = code[li].chars().collect();
            while ci < chars.len() {
                match chars[ci] {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            return_span_done(&mut owners, idx, li, &ty);
                            li = code.len();
                            break;
                        }
                    }
                    _ => {}
                }
                ci += 1;
            }
            li += 1;
            ci = 0;
        }
    }
    owners
}

fn return_span_done(owners: &mut [Option<String>], start: usize, end: usize, ty: &str) {
    for owner in owners.iter_mut().take(end + 1).skip(start) {
        *owner = Some(ty.to_string());
    }
}

/// `impl<…> Type`, `impl Trait for Type` on this line → `Type`.
fn impl_decl_type(line: &str) -> Option<String> {
    let at = crate::find_word(line, "impl").into_iter().next()?;
    if !line[..at].trim().is_empty() {
        return None;
    }
    let mut rest = &line[at + "impl".len()..];
    // Skip the generic parameter list.
    if rest.trim_start().starts_with('<') {
        let mut depth = 0i32;
        let trimmed = rest.trim_start();
        let mut cut = trimmed.len();
        for (ci, c) in trimmed.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = ci + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &trimmed[cut..];
    }
    // `Trait for Type` → take the part after ` for `; else the whole.
    let target = match rest.find(" for ") {
        Some(pos) => &rest[pos + 5..],
        None => rest,
    };
    // Last path segment's identifier, generics stripped.
    let target = target.trim_start();
    let seg = target.split("::").last().unwrap_or(target).trim_start();
    let name: String = seg
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

fn find_open_brace(code: &[String], start: usize) -> Option<(usize, usize)> {
    let mut li = start;
    let mut ci = 0;
    while li < code.len() {
        let chars: Vec<char> = code[li].chars().collect();
        while ci < chars.len() {
            if chars[ci] == '{' {
                return Some((li, ci + 1));
            }
            if chars[ci] == ';' {
                return None;
            }
            ci += 1;
        }
        li += 1;
        ci = 0;
        if li > start + 8 {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
/// A container.
// urb-lint: volatile-state(crash, complete_start)
#[derive(Debug)]
pub struct Container {
    /// Doc.
    pub state: u32,
    leaked_bytes: u64,
    map: BTreeMap<(usize, u16), Sketch>,
}

pub struct Unit;
pub struct Tuple(u32, u64);

impl Container {
    pub fn crash(&mut self, now: SimTime) -> u64 {
        self.state = 0;
        self.leaked_bytes = 0;
        0
    }
    fn helper(x: usize, mut y: u64) {
        let _ = (x, y);
    }
}

impl Display for Container {
    fn fmt(&self, f: &mut Formatter<'_>) -> Result {
        write!(f, "c")
    }
}

fn free_standing(node: usize) -> usize {
    node + 1
}
"#;

    #[test]
    fn structs_fields_and_marker_parse() {
        let m = parse_file("x.rs", SRC);
        assert_eq!(m.structs.len(), 3);
        let c = &m.structs[0];
        assert_eq!(c.name, "Container");
        let names: Vec<&str> = c.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["state", "leaked_bytes", "map"]);
        assert_eq!(c.fields[2].ty, "BTreeMap<(usize, u16), Sketch>");
        let marker = c.marker.as_ref().expect("marker found through attrs");
        assert_eq!(marker.methods, ["crash", "complete_start"]);
        assert!(m.structs[1].fields.is_empty());
        assert!(m.structs[2].fields.is_empty());
    }

    #[test]
    fn fns_carry_owner_params_and_body() {
        let m = parse_file("x.rs", SRC);
        let crash = m.fns.iter().find(|f| f.name == "crash").unwrap();
        assert_eq!(crash.owner.as_deref(), Some("Container"));
        assert_eq!(crash.params, ["self", "now"]);
        assert!(crash.body.contains("leaked_bytes"));
        let helper = m.fns.iter().find(|f| f.name == "helper").unwrap();
        assert_eq!(helper.params, ["x", "y"]);
        let fmt = m.fns.iter().find(|f| f.name == "fmt").unwrap();
        assert_eq!(fmt.owner.as_deref(), Some("Container"));
        let free = m.fns.iter().find(|f| f.name == "free_standing").unwrap();
        assert_eq!(free.owner, None);
        assert_eq!(free.params, ["node"]);
    }

    #[test]
    fn fns_named_prefers_the_owning_type() {
        let other = "impl Other { pub fn crash(&mut self) { self.x = 0; } }\n";
        let model = CrateModel::parse(&[("a.rs", SRC), ("b.rs", other)]);
        let fns = model.fns_named("crash", "Container");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].owner.as_deref(), Some("Container"));
        let fns = model.fns_named("crash", "Unrelated");
        assert_eq!(fns.len(), 2, "no owner match falls back to all");
    }
}
