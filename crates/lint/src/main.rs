//! The `urb-lint` binary: lints the workspace and reports violations.
//!
//! ```text
//! urb-lint [--root PATH] [--deny-all] [--format text|json]
//! ```
//!
//! Diagnostics go to stdout. The default `text` format is one per line,
//! machine-readable: `path:line: urb-lint[RULE] message; fix: …` (the
//! shape the repo's GitHub problem matcher parses into annotations).
//! `json` emits a single document with a `violations` array, for CI
//! artifacts and tooling. Without `--deny-all` the run is advisory
//! (exit 0); with it, any violation exits 1. Usage or I/O errors exit 2.

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny_all = false;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(p) = args.next() else {
                    eprintln!("urb-lint: --root needs a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(p);
            }
            "--deny-all" => deny_all = true,
            "--format" => {
                format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        eprintln!("urb-lint: --format needs \"text\" or \"json\", got {other:?}");
                        return ExitCode::from(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!("usage: urb-lint [--root PATH] [--deny-all] [--format text|json]");
                println!();
                println!("rules:");
                for (id, what) in urb_lint::RULES {
                    println!("  {id}  {what}");
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("urb-lint: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let diags = match urb_lint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("urb-lint: {e}");
            return ExitCode::from(2);
        }
    };
    match format {
        Format::Text => {
            for d in &diags {
                println!("{d}");
            }
        }
        Format::Json => {
            println!("{{");
            println!("  \"tool\": \"urb-lint\",");
            println!("  \"count\": {},", diags.len());
            println!("  \"violations\": [");
            for (i, d) in diags.iter().enumerate() {
                println!(
                    "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
                     \"message\": \"{}\", \"fix\": \"{}\"}}{}",
                    json_escape(&d.file),
                    d.line,
                    d.rule,
                    json_escape(&d.message),
                    json_escape(&d.fix),
                    if i + 1 < diags.len() { "," } else { "" }
                );
            }
            println!("  ]");
            println!("}}");
        }
    }
    if diags.is_empty() {
        eprintln!("urb-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "urb-lint: {} violation(s){}",
            diags.len(),
            if deny_all {
                ""
            } else {
                " (advisory; pass --deny-all to gate)"
            }
        );
        if deny_all {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
