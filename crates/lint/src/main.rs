//! The `urb-lint` binary: lints the workspace and reports violations.
//!
//! ```text
//! urb-lint [--root PATH] [--deny-all]
//! ```
//!
//! Diagnostics go to stdout, one per line, machine-readable:
//! `path:line: urb-lint[RULE] message; fix: …`. Without `--deny-all` the
//! run is advisory (exit 0); with it, any violation exits 1. Usage or
//! I/O errors exit 2.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny_all = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(p) = args.next() else {
                    eprintln!("urb-lint: --root needs a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(p);
            }
            "--deny-all" => deny_all = true,
            "--help" | "-h" => {
                println!("usage: urb-lint [--root PATH] [--deny-all]");
                println!();
                println!("rules:");
                for (id, what) in urb_lint::RULES {
                    println!("  {id}  {what}");
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("urb-lint: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let diags = match urb_lint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("urb-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!("urb-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "urb-lint: {} violation(s){}",
            diags.len(),
            if deny_all {
                ""
            } else {
                " (advisory; pass --deny-all to gate)"
            }
        );
        if deny_all {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
