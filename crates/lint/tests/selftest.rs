//! Self-tests for `urb-lint`: known-bad fixtures must produce exactly
//! the expected `(rule, line)` diagnostics, known-good fixtures must be
//! clean, the real workspace must lint clean, and the binary must exit
//! nonzero under `--deny-all` when a violation exists.

use std::path::{Path, PathBuf};

use urb_lint::{
    check_exhaustiveness, check_fault_exhaustiveness, check_policy_exhaustiveness,
    check_state_safety, lint_source, lint_workspace, ExhaustInput,
};

fn fixture(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn rules_and_lines(diags: &[urb_lint::Diagnostic]) -> Vec<(&'static str, usize)> {
    let mut v: Vec<(&'static str, usize)> = diags.iter().map(|d| (d.rule, d.line)).collect();
    v.sort();
    v
}

#[test]
fn bad_determinism_fixture_fires_every_rule_at_known_lines() {
    let diags = lint_source("bad/determinism.rs", &fixture("bad/determinism.rs"));
    assert_eq!(
        rules_and_lines(&diags),
        vec![
            ("D001", 7),  // counts: HashMap
            ("D001", 8),  // seen: HashSet
            ("D002", 13), // counts.values()
            ("D002", 18), // for id in &self.seen
            ("D003", 25), // Instant::now()
            ("D004", 30), // thread_rng()
            ("D005", 34), // std::env::var
            ("D006", 38), // read_dir
            ("D007", 13), // float sum over counts.values()
        ],
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn good_determinism_fixture_is_clean() {
    let diags = lint_source("good/determinism.rs", &fixture("good/determinism.rs"));
    assert!(diags.is_empty(), "unexpected: {diags:#?}");
}

#[test]
fn hotpath_fixture_fires_d008_at_known_lines() {
    let diags = lint_source("bad/hotpath.rs", &fixture("bad/hotpath.rs"));
    assert_eq!(
        rules_and_lines(&diags),
        vec![
            ("D008", 4), // Box::new(move |..|) on a schedule line
            ("D008", 6), // Box::new(f) on a schedule line
            ("D008", 7), // inc(&format!(..))
            ("D008", 8), // counter(&format!(..))
                         // line 10 is pragma'd; line 11 boxes a sink, not an event
        ],
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn the_sanctioned_kernel_module_may_box_closures() {
    let src = "pub fn schedule_at(&mut self) { self.schedule_event_at(at, label, BoxedFn(Box::new(f))) }\n";
    let diags = lint_source("crates/simcore/src/event.rs", src);
    assert!(diags.is_empty(), "unexpected: {diags:#?}");
    let diags = lint_source("crates/cluster/src/other.rs", src);
    assert_eq!(rules_and_lines(&diags), vec![("D008", 1)]);
}

#[test]
fn bare_and_unknown_pragmas_are_violations() {
    let diags = lint_source("bad/pragma.rs", &fixture("bad/pragma.rs"));
    assert_eq!(
        rules_and_lines(&diags),
        vec![("P001", 5), ("P001", 7)],
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn negative_control_missing_encode_arm_is_caught() {
    let telemetry = fixture("exhaustiveness/telemetry_bad.rs");
    let diags = check_exhaustiveness(
        &ExhaustInput {
            label: "telemetry_bad.rs",
            src: &telemetry,
        },
        None,
        None,
        None,
    );
    assert_eq!(diags.len(), 1, "diagnostics: {diags:#?}");
    assert_eq!(diags[0].rule, "E001");
    assert!(diags[0].message.contains("DummyEvent"), "{}", diags[0]);
    // Anchored at the variant's declaration line in the fixture.
    assert_eq!(diags[0].line, 20, "{}", diags[0]);
}

#[test]
fn trace_surface_gaps_are_caught_per_function() {
    let telemetry = fixture("exhaustiveness/telemetry_good.rs");
    let trace = fixture("exhaustiveness/trace_bad.rs");
    let diags = check_exhaustiveness(
        &ExhaustInput {
            label: "telemetry_good.rs",
            src: &telemetry,
        },
        Some(&ExhaustInput {
            label: "trace_bad.rs",
            src: &trace,
        }),
        None,
        None,
    );
    let e002: Vec<&str> = diags
        .iter()
        .filter(|d| d.rule == "E002")
        .map(|d| d.message.as_str())
        .collect();
    assert_eq!(e002.len(), 3, "kind, encoder and parser: {diags:#?}");
    assert!(e002.iter().all(|m| m.contains("RebootBegun")), "{e002:#?}");
}

#[test]
fn metrics_wildcard_and_missing_variant_are_caught() {
    let telemetry = fixture("exhaustiveness/telemetry_good.rs");
    let metrics = fixture("exhaustiveness/metrics_bad.rs");
    let diags = check_exhaustiveness(
        &ExhaustInput {
            label: "telemetry_good.rs",
            src: &telemetry,
        },
        None,
        Some(&ExhaustInput {
            label: "metrics_bad.rs",
            src: &metrics,
        }),
        None,
    );
    assert_eq!(diags.len(), 2, "missing RebootBegun + wildcard: {diags:#?}");
    assert!(diags.iter().all(|d| d.rule == "E003"));
    assert!(diags.iter().any(|d| d.message.contains("RebootBegun")));
    assert!(diags.iter().any(|d| d.message.contains("wildcard")));
}

#[test]
fn lifecycle_unhandled_level_is_caught() {
    let telemetry = fixture("exhaustiveness/telemetry_good.rs");
    let lifecycle = fixture("exhaustiveness/lifecycle_bad.rs");
    let diags = check_exhaustiveness(
        &ExhaustInput {
            label: "telemetry_good.rs",
            src: &telemetry,
        },
        None,
        None,
        Some(&ExhaustInput {
            label: "lifecycle_bad.rs",
            src: &lifecycle,
        }),
    );
    assert_eq!(diags.len(), 1, "diagnostics: {diags:#?}");
    assert_eq!(diags[0].rule, "E004");
    assert!(diags[0].message.contains("Process"), "{}", diags[0]);
}

#[test]
fn good_exhaustiveness_fixtures_are_clean() {
    let telemetry = fixture("exhaustiveness/telemetry_good.rs");
    let trace = fixture("exhaustiveness/trace_good.rs");
    let metrics = fixture("exhaustiveness/metrics_good.rs");
    let lifecycle = fixture("exhaustiveness/lifecycle_good.rs");
    let diags = check_exhaustiveness(
        &ExhaustInput {
            label: "telemetry_good.rs",
            src: &telemetry,
        },
        Some(&ExhaustInput {
            label: "trace_good.rs",
            src: &trace,
        }),
        Some(&ExhaustInput {
            label: "metrics_good.rs",
            src: &metrics,
        }),
        Some(&ExhaustInput {
            label: "lifecycle_good.rs",
            src: &lifecycle,
        }),
    );
    assert!(diags.is_empty(), "unexpected: {diags:#?}");
}

#[test]
fn fault_variant_without_conversion_arm_is_caught() {
    let faults = fixture("exhaustiveness/faults_bad.rs");
    let diags = check_fault_exhaustiveness(
        &ExhaustInput {
            label: "faults_bad.rs",
            src: &faults,
        },
        None,
    );
    // CorruptDb and SpuriousReports both hide behind the wildcard arm.
    assert_eq!(diags.len(), 2, "diagnostics: {diags:#?}");
    assert!(diags.iter().all(|d| d.rule == "E005"));
    assert!(diags.iter().any(|d| d.message.contains("SpuriousReports")));
    assert!(diags.iter().any(|d| d.message.contains("CorruptDb")));
}

#[test]
fn fault_variant_without_campaign_arm_is_caught() {
    let faults = fixture("exhaustiveness/faults_good.rs");
    let campaign = fixture("exhaustiveness/campaign_bad.rs");
    let diags = check_fault_exhaustiveness(
        &ExhaustInput {
            label: "faults_good.rs",
            src: &faults,
        },
        Some(&ExhaustInput {
            label: "campaign_bad.rs",
            src: &campaign,
        }),
    );
    assert_eq!(diags.len(), 1, "diagnostics: {diags:#?}");
    assert_eq!(diags[0].rule, "E005");
    assert_eq!(diags[0].file, "campaign_bad.rs");
    assert!(diags[0].message.contains("SpuriousReports"), "{}", diags[0]);
}

#[test]
fn split_generator_coverage_counts_as_covered() {
    let faults = fixture("exhaustiveness/faults_good.rs");
    let campaign = fixture("exhaustiveness/campaign_split_good.rs");
    let diags = check_fault_exhaustiveness(
        &ExhaustInput {
            label: "faults_good.rs",
            src: &faults,
        },
        Some(&ExhaustInput {
            label: "campaign_split_good.rs",
            src: &campaign,
        }),
    );
    assert!(diags.is_empty(), "unexpected: {diags:#?}");
}

#[test]
fn three_way_generator_split_counts_as_covered() {
    let faults = fixture("exhaustiveness/faults_good.rs");
    let campaign = fixture("exhaustiveness/campaign_netstate_good.rs");
    let diags = check_fault_exhaustiveness(
        &ExhaustInput {
            label: "faults_good.rs",
            src: &faults,
        },
        Some(&ExhaustInput {
            label: "campaign_netstate_good.rs",
            src: &campaign,
        }),
    );
    assert!(diags.is_empty(), "unexpected: {diags:#?}");
}

#[test]
fn good_fault_fixture_is_clean() {
    let faults = fixture("exhaustiveness/faults_good.rs");
    let diags = check_fault_exhaustiveness(
        &ExhaustInput {
            label: "faults_good.rs",
            src: &faults,
        },
        None,
    );
    assert!(diags.is_empty(), "unexpected: {diags:#?}");
}

#[test]
fn unregistered_policy_and_missing_variant_surfaces_are_caught() {
    let policy = fixture("exhaustiveness/policy_bad.rs");
    let input = ExhaustInput {
        label: "policy_bad.rs",
        src: &policy,
    };
    let diags = check_policy_exhaustiveness(&input, std::slice::from_ref(&input));
    assert_eq!(diags.len(), 4, "diagnostics: {diags:#?}");
    assert!(diags.iter().all(|d| d.rule == "E006"));
    // Hedge: missing from fn build, fn label and the ALL roster.
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.message.contains("PolicyChoice::Hedge"))
            .count(),
        3,
        "diagnostics: {diags:#?}"
    );
    // OrphanPolicy implements the trait but is never built.
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("OrphanPolicy") && d.message.contains("never built")),
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn good_policy_fixture_is_clean() {
    let policy = fixture("exhaustiveness/policy_good.rs");
    let input = ExhaustInput {
        label: "policy_good.rs",
        src: &policy,
    };
    let diags = check_policy_exhaustiveness(&input, std::slice::from_ref(&input));
    assert!(diags.is_empty(), "unexpected: {diags:#?}");
}

#[test]
fn state_safety_fixture_fires_rules_at_known_lines() {
    let src = fixture("bad/state_safety.rs");
    let out = check_state_safety("cluster", &[("bad/state_safety.rs", &src)]);
    assert_eq!(
        rules_and_lines(&out.diags),
        vec![
            ("S001", 11), // leaked: not wiped by crash()
            ("S001", 22), // marker names wipe, no such method
            ("S001", 23), // Orphan ends up with no reset method at all
            ("S002", 5),  // static mut
            ("S002", 6),  // thread_local!
            ("S003", 12), // RefCell field inside volatile-state struct
            ("S004", 42), // nodes[i] under a loop index in sweep
            ("S004", 44), // nodes[0] literal index in sweep
        ],
        "diagnostics: {:#?}",
        out.diags
    );
}

#[test]
fn good_state_safety_fixture_is_clean() {
    let src = fixture("good/state_safety.rs");
    let out = check_state_safety("cluster", &[("good/state_safety.rs", &src)]);
    assert!(out.diags.is_empty(), "unexpected: {:#?}", out.diags);
    // The pragma'd global still registers a pre-suppression hit, which is
    // what keeps its pragma alive under P002.
    assert!(
        out.raw_hits
            .iter()
            .any(|(_, rule, line)| *rule == "S002" && *line == 6),
        "raw hits: {:?}",
        out.raw_hits
    );
}

#[test]
fn bad_workspace_pins_exact_rule_lines() {
    let bad_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad_workspace");
    let diags = lint_workspace(&bad_root).expect("lint run");
    assert_eq!(
        rules_and_lines(&diags),
        vec![
            ("D001", 6),  // workload: HashMap field
            ("D008", 3),  // cluster: boxed closure on a schedule path
            ("P002", 11), // workload: justified allow(D003) guarding nothing
            ("S001", 19), // workload: Session.leaked never wiped
            ("S002", 9),  // workload: static mut TOTALS
            ("S004", 9),  // cluster: nodes[i] sweep outside dispatch
        ],
        "diagnostics: {diags:#?}"
    );
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn the_real_workspace_lints_clean() {
    let diags = lint_workspace(&workspace_root()).expect("lint run");
    assert!(
        diags.is_empty(),
        "workspace violations:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn binary_denies_bad_workspace_and_passes_real_one() {
    let bad_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad_workspace");
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_urb-lint"))
        .args(["--root"])
        .arg(&bad_root)
        .arg("--deny-all")
        .output()
        .expect("run urb-lint");
    assert_eq!(
        status.status.code(),
        Some(1),
        "bad workspace must be denied"
    );
    let stdout = String::from_utf8_lossy(&status.stdout);
    assert!(stdout.contains("D001"), "stdout: {stdout}");
    assert!(stdout.contains("D008"), "stdout: {stdout}");
    assert!(stdout.contains("S001"), "stdout: {stdout}");
    assert!(stdout.contains("S002"), "stdout: {stdout}");
    assert!(stdout.contains("S004"), "stdout: {stdout}");
    assert!(stdout.contains("P002"), "stdout: {stdout}");

    let status = std::process::Command::new(env!("CARGO_BIN_EXE_urb-lint"))
        .args(["--root"])
        .arg(workspace_root())
        .arg("--deny-all")
        .status()
        .expect("run urb-lint");
    assert_eq!(status.code(), Some(0), "real workspace must pass");
}

#[test]
fn binary_emits_machine_readable_json() {
    let bad_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad_workspace");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_urb-lint"))
        .args(["--root"])
        .arg(&bad_root)
        .args(["--format", "json"])
        .output()
        .expect("run urb-lint");
    // Advisory without --deny-all: violations reported, exit 0.
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'), "stdout: {stdout}");
    assert!(stdout.contains("\"count\": 6"), "stdout: {stdout}");
    for rule in ["D001", "D008", "P002", "S001", "S002", "S004"] {
        assert!(
            stdout.contains(&format!("\"rule\": \"{rule}\"")),
            "stdout: {stdout}"
        );
    }
    // The justification em-dash and quotes must not break the document:
    // every line of the violations array is balanced on double quotes.
    let quotes = stdout.matches('"').count();
    assert_eq!(quotes % 2, 0, "unbalanced quotes: {stdout}");
}

// -----------------------------------------------------------------------
// Mutated-workspace negative controls: copy a real sim crate aside, break
// its crash-only contract, and prove the lint catches it.
// -----------------------------------------------------------------------

fn copy_tree(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(from)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for p in entries {
        let dest = to.join(p.file_name().unwrap());
        if p.is_dir() {
            copy_tree(&p, &dest);
        } else {
            std::fs::copy(&p, &dest).unwrap();
        }
    }
}

/// Copies `krate`'s `src/` tree into a scratch workspace root.
fn mutated_workspace(krate: &str, tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("urb-lint-mut-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    copy_tree(
        &workspace_root().join("crates").join(krate).join("src"),
        &root.join("crates").join(krate).join("src"),
    );
    root
}

#[test]
fn mutated_workspace_unwiped_field_fails_s001() {
    let root = mutated_workspace("components", "s001");
    let container = root.join("crates/components/src/container.rs");
    let src = std::fs::read_to_string(&container).unwrap();
    // Delete the single line that wipes `inflight` in Container::crash —
    // exactly the bug class S001 exists to catch.
    let mutated: String = src
        .lines()
        .filter(|l| l.trim() != "self.inflight = 0;")
        .collect::<Vec<_>>()
        .join("\n");
    assert_ne!(src, mutated, "the wipe line must exist to be deleted");
    std::fs::write(&container, mutated).unwrap();
    let diags = lint_workspace(&root).expect("lint run");
    assert_eq!(diags.len(), 1, "diagnostics: {diags:#?}");
    assert_eq!(diags[0].rule, "S001");
    assert!(diags[0].file.ends_with("container.rs"), "{}", diags[0]);
    assert!(diags[0].message.contains("`inflight`"), "{}", diags[0]);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn mutated_workspace_static_mut_fails_s002() {
    let root = mutated_workspace("workload", "s002");
    let lib = root.join("crates/workload/src/lib.rs");
    let mut src = std::fs::read_to_string(&lib).unwrap();
    src.push_str("\nstatic mut LAST_SEED: u64 = 0;\n");
    std::fs::write(&lib, src).unwrap();
    let diags = lint_workspace(&root).expect("lint run");
    assert_eq!(diags.len(), 1, "diagnostics: {diags:#?}");
    assert_eq!(diags[0].rule, "S002");
    assert!(diags[0].file.ends_with("lib.rs"), "{}", diags[0]);
    let _ = std::fs::remove_dir_all(&root);
}

// -----------------------------------------------------------------------
// Item-model round-trip: the parser layer must digest every real source
// file without panicking and recognise a sane volume of items.
// -----------------------------------------------------------------------

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            rs_files(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

#[test]
fn item_model_round_trips_the_workspace() {
    let root = workspace_root();
    let (mut files, mut structs, mut fns, mut markers) = (0usize, 0usize, 0usize, 0usize);
    for krate in urb_lint::SIM_CRATES {
        let dir = root.join("crates").join(krate).join("src");
        if !dir.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        rs_files(&dir, &mut paths);
        for path in paths {
            let src = std::fs::read_to_string(&path).unwrap();
            let model = urb_lint::model::parse_file(&path.display().to_string(), &src);
            files += 1;
            structs += model.structs.len();
            fns += model.fns.len();
            markers += model.structs.iter().filter(|s| s.marker.is_some()).count();
        }
    }
    assert!(files >= 20, "only {files} files parsed");
    assert!(structs >= 30, "only {structs} structs recognised");
    assert!(fns >= 150, "only {fns} fns recognised");
    // The crash-only contract currently designates ten volatile-state
    // structs (Container, RequestPipeline, RecoveryLifecycle,
    // RecoveryManager, the five policies, KeyGen).
    assert!(markers >= 10, "only {markers} volatile-state markers found");
}
