//! Known-bad fixture: every determinism rule fires at a known line.
//! (Never compiled — scanned by the lint self-tests only.)
use std::collections::HashMap;
use std::collections::HashSet;

pub struct State {
    counts: HashMap<String, u64>,
    seen: HashSet<u64>,
}

impl State {
    pub fn total(&self) -> f64 {
        self.counts.values().map(|v| *v as f64).sum()
    }

    pub fn ids(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for id in &self.seen {
            out.push(*id);
        }
        out
    }

    pub fn stamp(&self) -> u64 {
        let t = Instant::now();
        t.elapsed().as_nanos() as u64
    }

    pub fn pick(&self) -> u64 {
        thread_rng().next_u64()
    }

    pub fn home(&self) -> String {
        std::env::var("HOME").unwrap_or_default()
    }

    pub fn files(&self) -> usize {
        std::fs::read_dir(".").unwrap().count()
    }
}
