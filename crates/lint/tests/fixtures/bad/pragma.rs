//! Pragma-abuse fixture: a bare pragma and one naming an unknown rule.
use std::collections::BTreeMap;

pub struct S {
    // urb-lint: allow(D001)
    a: std::collections::HashMap<u8, u8>,
    // urb-lint: allow(D999) — no such rule exists.
    b: BTreeMap<u8, u8>,
}
