//! Kernel hot-path regression fixture: boxed event closures and
//! string-keyed metric bumps that D008 must flag, plus one pragma'd site.
pub fn schedule_everything(q: &mut Queue, reg: &mut Registry) {
    q.schedule_event_at(at, "tick", Event::Custom(Box::new(move |w, q| w.tick(q))));
    let f = || ();
    q.schedule_at(at, "tock", Box::new(f));
    reg.inc(&format!("reboots_begun_{suffix}"));
    reg.counter(&format!("decisions_{kind}"));
    // urb-lint: allow(D008) — compat shim measured off the hot path.
    q.schedule_event_at(at, "ok", Event::Custom(Box::new(f)));
    let sink: Box<dyn Sink> = Box::new(CollectorSink::default());
}
