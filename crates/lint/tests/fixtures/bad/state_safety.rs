//! State-safety fixture: mutable globals, an unwiped field, interior
//! mutability and cross-node touches outside dispatch.
use std::cell::RefCell;

static mut GLOBAL_HITS: u64 = 0;
thread_local! { static LOCAL: RefCell<u64> = RefCell::new(0); }

// urb-lint: volatile-state(crash)
pub struct NodeState {
    inflight: u32,
    leaked: u64,
    cache: RefCell<u64>,
}

impl NodeState {
    pub fn crash(&mut self) {
        self.inflight = 0;
        self.cache = RefCell::new(0);
    }
}

// urb-lint: volatile-state(wipe)
pub struct Orphan {
    val: u32,
}

pub struct World {
    nodes: Vec<NodeState>,
}

impl World {
    pub fn with_world(n: usize) -> Self {
        let w = World { nodes: Vec::with_capacity(n) };
        let _ = &w.nodes[0];
        w
    }
    pub fn dispatch(&mut self, node: usize) {
        self.nodes[node].crash();
    }
    pub fn sweep(&mut self) {
        for i in 0..self.nodes.len() {
            self.nodes[i].crash();
        }
        self.nodes[0].crash();
    }
}
