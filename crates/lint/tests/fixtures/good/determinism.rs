//! Known-good fixture: ordered containers, the sim clock, and a
//! properly justified allow-pragma. Must produce zero diagnostics.
use std::collections::BTreeMap;
use std::collections::HashSet;

pub struct State {
    counts: BTreeMap<String, u64>,
    // urb-lint: allow(D001) — membership-only scratch set; order never observed.
    scratch: HashSet<u64>,
}

impl State {
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    pub fn remember(&mut self, id: u64) -> bool {
        self.scratch.insert(id)
    }
}

#[cfg(test)]
mod tests {
    // Test code may use unordered containers freely.
    use std::collections::HashMap;

    #[test]
    fn scratch() {
        let mut m: HashMap<u8, u8> = HashMap::new();
        m.insert(1, 2);
        for (k, v) in m.iter() {
            assert!(*k < *v);
        }
    }
}
