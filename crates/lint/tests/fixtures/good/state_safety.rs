//! Clean counterpart: every field wiped or pragma-justified, the one
//! global pragma'd, and node state only touched via dispatch parameters.
use std::sync::{Mutex, OnceLock};

// urb-lint: allow(S002) — append-only symbol table; identity, not sim state.
static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();

// urb-lint: volatile-state(crash)
pub struct NodeState {
    inflight: u32,
    // urb-lint: allow(S001) — immutable config; survives by design.
    limit: u32,
}

impl NodeState {
    pub fn crash(&mut self) {
        self.inflight = 0;
    }
}

// urb-lint: volatile-state
pub struct Scratch {
    buf: Vec<u8>,
}

impl Scratch {
    pub fn reset_buffers(&mut self) {
        self.buf.clear();
    }
}

pub struct World {
    nodes: Vec<NodeState>,
}

impl World {
    pub fn dispatch(&mut self, node: usize) {
        self.nodes[node].crash();
    }
}
