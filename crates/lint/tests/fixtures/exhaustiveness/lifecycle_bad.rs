//! Lifecycle that only ever handles component-level reboots.

pub fn begin(level: RebootLevel) {
    match level {
        RebootLevel::Component => reboot_components(),
        _ => unimplemented!(),
    }
}
