//! Trace surface covering every variant of the miniature telemetry.

pub fn event_kind(ev: &TelemetryEvent) -> &'static str {
    match *ev {
        TelemetryEvent::RequestSubmitted { .. } => "request_submitted",
        TelemetryEvent::RebootBegun { .. } => "reboot_begun",
    }
}

pub fn event_to_json(ev: &TelemetryEvent) -> String {
    match *ev {
        TelemetryEvent::RequestSubmitted { node } => {
            format!("{{\"t\":\"request_submitted\",\"node\":{node}}}")
        }
        TelemetryEvent::RebootBegun { node, .. } => {
            format!("{{\"t\":\"reboot_begun\",\"node\":{node}}}")
        }
    }
}

pub fn event_from_json(line: &str) -> Result<TelemetryEvent, String> {
    let kind = need_str(line, "t")?;
    let ev = match kind {
        "request_submitted" => TelemetryEvent::RequestSubmitted {
            node: need_u64(line, "node")? as usize,
        },
        "reboot_begun" => TelemetryEvent::RebootBegun {
            node: need_u64(line, "node")? as usize,
            level: RebootLevel::Component,
        },
        other => return Err(format!("unknown kind {other}")),
    };
    Ok(ev)
}
