//! Metrics fold that hides a variant behind a wildcard arm.

impl TelemetrySink for MetricsRegistry {
    fn on_event(&mut self, event: &TelemetryEvent) {
        match *event {
            TelemetryEvent::RequestSubmitted { .. } => self.inc("requests_submitted"),
            _ => {}
        }
    }
}
