//! Good fixture: generation is split across two draw functions —
//! `campaign_fault` covers the classic variants and `degraded_fault`
//! covers the fail-slow one.  The union is exhaustive, so E005 must
//! stay silent.

use crate::Fault;

pub fn campaign_fault(roll: usize) -> Fault {
    match roll {
        0 => Fault::Deadlock { component: "Item" },
        _ => Fault::CorruptDb,
    }
}

pub fn degraded_fault(reports: u32) -> Fault {
    Fault::SpuriousReports { reports }
}
