//! Bad fixture: the campaign generator can draw Deadlock and CorruptDb
//! but never SpuriousReports — a hole in the claimed coverage.

use crate::Fault;

pub fn campaign_fault(roll: usize) -> Fault {
    match roll {
        0 => Fault::Deadlock { component: "Item" },
        _ => Fault::CorruptDb,
    }
}
