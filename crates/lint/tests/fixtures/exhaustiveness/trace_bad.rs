//! Trace surface missing `RebootBegun` in all three places: the kind
//! table, the JSON encoder, and the parser.

pub fn event_kind(ev: &TelemetryEvent) -> &'static str {
    match *ev {
        TelemetryEvent::RequestSubmitted { .. } => "request_submitted",
    }
}

pub fn event_to_json(ev: &TelemetryEvent) -> String {
    match *ev {
        TelemetryEvent::RequestSubmitted { node } => {
            format!("{{\"t\":\"request_submitted\",\"node\":{node}}}")
        }
    }
}

pub fn event_from_json(line: &str) -> Result<TelemetryEvent, String> {
    let kind = need_str(line, "t")?;
    let ev = match kind {
        "request_submitted" => TelemetryEvent::RequestSubmitted {
            node: need_u64(line, "node")? as usize,
        },
        other => return Err(format!("unknown kind {other}")),
    };
    Ok(ev)
}
