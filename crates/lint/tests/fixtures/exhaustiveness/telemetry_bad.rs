//! Negative control: a mutated miniature of `simcore/src/telemetry.rs`.
//! `DummyEvent` was added to the enum but `encode_into` was not updated
//! — the exhaustiveness lint must catch exactly that.

/// How deep a reboot reaches.
pub enum RebootLevel {
    /// Microreboot of one or more components.
    Component,
    /// Restart of the whole process.
    Process,
}

/// The event vocabulary.
pub enum TelemetryEvent {
    /// A request arrived.
    RequestSubmitted { node: usize },
    /// A reboot started.
    RebootBegun { node: usize, level: RebootLevel },
    /// A variant someone added without updating the encoders.
    DummyEvent { node: usize },
}

impl TelemetryEvent {
    /// Canonical byte encoding (digest input).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match *self {
            TelemetryEvent::RequestSubmitted { node } => {
                buf.push(0);
                buf.push(node as u8);
            }
            TelemetryEvent::RebootBegun { node, .. } => {
                buf.push(1);
                buf.push(node as u8);
            }
        }
    }
}
