//! Good fixture: generation is split across three draw functions —
//! `campaign_fault` covers the classic variants, `degraded_fault` the
//! fail-slow one, and `netstate_fault` the state-plane/network tier.
//! The three-way union is exhaustive, so E005 must stay silent.

use crate::Fault;

pub fn campaign_fault(roll: usize) -> Fault {
    let _ = roll;
    Fault::Deadlock { component: "Item" }
}

pub fn degraded_fault(reports: u32) -> Fault {
    Fault::SpuriousReports { reports }
}

pub fn netstate_fault(roll: usize) -> Fault {
    let _ = roll;
    Fault::CorruptDb
}
