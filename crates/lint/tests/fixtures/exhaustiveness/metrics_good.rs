//! Metrics fold naming every variant explicitly, no wildcard.

impl TelemetrySink for MetricsRegistry {
    fn on_event(&mut self, event: &TelemetryEvent) {
        match *event {
            TelemetryEvent::RequestSubmitted { .. } => self.inc("requests_submitted"),
            TelemetryEvent::RebootBegun { level, .. } => {
                self.inc("reboots_begun");
                match level {
                    RebootLevel::Component => self.inc("reboots_begun_component"),
                    _ => self.inc("reboots_begun_other"),
                }
            }
        }
    }
}
