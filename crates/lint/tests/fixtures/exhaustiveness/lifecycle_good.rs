//! Lifecycle handling every reboot level of the miniature telemetry.

pub fn begin(level: RebootLevel) {
    match level {
        RebootLevel::Component => reboot_components(),
        RebootLevel::Process => restart_process(),
    }
}
