//! Good fixture: every Fault variant has a conversion arm.

pub enum Fault {
    Deadlock { component: &'static str },
    CorruptDb,
    SpuriousReports { reports: u32 },
}

pub enum Injection {
    Server,
    Db,
    ClientReports(u32),
}

pub fn conversion(fault: &Fault) -> Injection {
    match fault {
        Fault::Deadlock { .. } => Injection::Server,
        Fault::CorruptDb => Injection::Db,
        Fault::SpuriousReports { reports } => Injection::ClientReports(*reports),
    }
}
