//! Bad fixture for E006: `Hedge` is declared but missing from the ALL
//! roster, the label match and the build match (three diagnostics), and
//! `OrphanPolicy` implements RecoveryPolicy without being registered in
//! fn build (a fourth).

pub enum PolicyChoice {
    Ladder,
    Hedge,
}

impl PolicyChoice {
    pub const ALL: &'static [PolicyChoice] = &[PolicyChoice::Ladder];

    pub fn label(self) -> &'static str {
        match self {
            PolicyChoice::Ladder => "paper-ladder",
            _ => "unknown",
        }
    }

    pub fn code(self) -> u8 {
        match self {
            PolicyChoice::Ladder => 0,
            PolicyChoice::Hedge => 1,
        }
    }

    pub fn build(self) -> Box<dyn RecoveryPolicy> {
        match self {
            PolicyChoice::Ladder => Box::new(LadderPolicy::new()),
            _ => Box::new(LadderPolicy::new()),
        }
    }
}

pub struct LadderPolicy;
pub struct OrphanPolicy;

impl RecoveryPolicy for LadderPolicy {}
impl RecoveryPolicy for OrphanPolicy {}
