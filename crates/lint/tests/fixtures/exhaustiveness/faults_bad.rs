//! Bad fixture: SpuriousReports is declared but never routed by
//! `conversion`, so it could never actually be injected.

pub enum Fault {
    Deadlock { component: &'static str },
    CorruptDb,
    SpuriousReports { reports: u32 },
}

pub enum Injection {
    Server,
    Db,
}

pub fn conversion(fault: &Fault) -> Injection {
    match fault {
        Fault::Deadlock { .. } => Injection::Server,
        _ => Injection::Db,
    }
}
