//! Good fixture for E006: every PolicyChoice variant is rostered,
//! labelled, coded and constructible, and every RecoveryPolicy impl is
//! registered in fn build.

pub enum PolicyChoice {
    Ladder,
    Bulkhead,
}

impl PolicyChoice {
    pub const ALL: &'static [PolicyChoice] = &[PolicyChoice::Ladder, PolicyChoice::Bulkhead];

    pub fn label(self) -> &'static str {
        match self {
            PolicyChoice::Ladder => "paper-ladder",
            PolicyChoice::Bulkhead => "bulkhead",
        }
    }

    pub fn code(self) -> u8 {
        match self {
            PolicyChoice::Ladder => 0,
            PolicyChoice::Bulkhead => 1,
        }
    }

    pub fn build(self) -> Box<dyn RecoveryPolicy> {
        match self {
            PolicyChoice::Ladder => Box::new(LadderPolicy::new()),
            PolicyChoice::Bulkhead => Box::new(BulkheadPolicy::new()),
        }
    }
}

pub struct LadderPolicy;
pub struct BulkheadPolicy;

impl RecoveryPolicy for LadderPolicy {}
impl RecoveryPolicy for BulkheadPolicy {}
