//! A miniature sim crate with a determinism violation, used to prove the
//! binary exits nonzero under `--deny-all`.
use std::collections::HashMap;

pub struct Tracker {
    pub counts: HashMap<u64, u64>,
}
