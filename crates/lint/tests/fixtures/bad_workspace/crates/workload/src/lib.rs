//! A miniature sim crate with a determinism violation, used to prove the
//! binary exits nonzero under `--deny-all`.
use std::collections::HashMap;

pub struct Tracker {
    pub counts: HashMap<u64, u64>,
}

static mut TOTALS: u64 = 0;

// urb-lint: allow(D003) — wall-clock call below was removed long ago.
pub fn now_ms() -> u64 {
    0
}

// urb-lint: volatile-state(crash)
pub struct Session {
    inflight: u32,
    leaked: u64,
}

impl Session {
    pub fn crash(&mut self) {
        self.inflight = 0;
    }
}
