//! Bad-workspace member: a boxed closure on a schedule path (D008).
pub fn arm(q: &mut Queue) {
    q.schedule_at(at, "poll", Box::new(move |w, q| w.poll(q)));
}

/// A sweep that touches every node outside dispatch (S004).
pub fn sweep(world: &mut World) {
    for i in 0..world.nodes.len() {
        world.nodes[i].poke();
    }
}
