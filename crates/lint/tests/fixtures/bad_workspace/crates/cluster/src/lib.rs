//! Bad-workspace member: a boxed closure on a schedule path (D008).
pub fn arm(q: &mut Queue) {
    q.schedule_at(at, "poll", Box::new(move |w, q| w.poll(q)));
}
