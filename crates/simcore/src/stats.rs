//! Measurement utilities for regenerating the paper's tables and figures.
//!
//! * [`Summary`] — streaming mean/min/max plus exact percentiles on demand,
//! * [`Histogram`] — fixed-bucket latency histogram with a configurable
//!   threshold counter (the paper counts requests exceeding 8 seconds),
//! * [`SecondSeries`] — per-second counters for Taw-style timelines
//!   (Figures 1, 2, 4 and 6 are all per-second series).

use std::collections::BTreeMap;

use crate::symbol::{self, Sym};
use crate::time::{SimDuration, SimTime};

/// Streaming summary statistics over `f64` samples.
///
/// Stores all samples to support exact percentiles; the evaluation's sample
/// counts (tens of thousands of requests) make this cheap.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Records a duration sample in milliseconds.
    pub fn record_duration_ms(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Returns the number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns the arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Returns the minimum sample, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Returns the maximum sample, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Returns the `p`-th percentile (`0.0..=1.0`), or 0.0 when empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            self.sorted = true;
        }
        let p = p.clamp(0.0, 1.0);
        let idx = ((self.samples.len() - 1) as f64 * p).round() as usize;
        self.samples[idx]
    }

    /// Returns the standard deviation, or 0.0 with fewer than two samples.
    pub fn stddev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }
}

/// A latency histogram with fixed-width buckets and an over-threshold count.
///
/// # Examples
///
/// ```
/// use simcore::stats::Histogram;
/// use simcore::SimDuration;
///
/// let mut h = Histogram::new(SimDuration::from_millis(100), 100, SimDuration::from_secs(8));
/// h.record(SimDuration::from_millis(50));
/// h.record(SimDuration::from_secs(9));
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.over_threshold(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    bucket_width: SimDuration,
    buckets: Vec<u64>,
    overflow: u64,
    threshold: SimDuration,
    over_threshold: u64,
    count: u64,
    total: SimDuration,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of width `bucket_width`,
    /// counting samples above `threshold` separately.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `buckets` is zero.
    pub fn new(bucket_width: SimDuration, buckets: usize, threshold: SimDuration) -> Self {
        assert!(!bucket_width.is_zero(), "bucket width must be positive");
        assert!(buckets > 0, "bucket count must be positive");
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            threshold,
            over_threshold: 0,
            count: 0,
            total: SimDuration::ZERO,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.count += 1;
        self.total += d;
        if d > self.threshold {
            self.over_threshold += 1;
        }
        let idx = (d.as_micros() / self.bucket_width.as_micros()) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Returns the total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns how many samples exceeded the threshold.
    pub fn over_threshold(&self) -> u64 {
        self.over_threshold
    }

    /// Returns the mean sample, or zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            self.total / self.count
        }
    }

    /// Returns the bucket counts (overflow excluded).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Returns the number of samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

/// Per-second counters keyed by metric name, for timeline figures.
///
/// Each `(second, key)` cell accumulates a count; [`SecondSeries::rows`]
/// yields dense rows suitable for printing gnuplot-style series like the
/// paper's Figure 1.
#[derive(Clone, Debug, Default)]
pub struct SecondSeries {
    cells: BTreeMap<(u64, &'static str), f64>,
    max_second: u64,
    /// The second the dense row below covers.
    hot_second: u64,
    /// Dense accumulators for canonical ([`Sym`]-interned) keys in the
    /// current second. The event fold bumps the same handful of keys many
    /// times within one second; accumulating those in a flat row and
    /// folding the row into `cells` only when the second rolls over keeps
    /// the per-event cost to an array index. Empty until the first
    /// symbol-keyed write.
    hot: Vec<f64>,
}

/// One dense row of a [`SecondSeries`].
#[derive(Clone, Debug)]
pub struct SeriesRow {
    /// The second index this row covers.
    pub second: u64,
    /// `(metric, value)` pairs present in this second.
    pub values: Vec<(String, f64)>,
}

impl SecondSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        SecondSeries::default()
    }

    /// Folds the dense hot row into the ordered cell map.
    fn flush_hot(&mut self) {
        for i in 0..self.hot.len() {
            if self.hot[i] != 0.0 {
                *self
                    .cells
                    .entry((self.hot_second, symbol::NAMES[i]))
                    .or_insert(0.0) += self.hot[i];
                self.hot[i] = 0.0;
            }
        }
    }

    /// Adds `amount` to metric `key` in the second containing `at`.
    pub fn add(&mut self, at: SimTime, key: &'static str, amount: f64) {
        match symbol::lookup(key) {
            Some(sym) => self.add_sym(at, sym, amount),
            None => {
                let s = at.second_index();
                self.max_second = self.max_second.max(s);
                *self.cells.entry((s, key)).or_insert(0.0) += amount;
            }
        }
    }

    /// Increments metric `key` by one in the second containing `at`.
    pub fn incr(&mut self, at: SimTime, key: &'static str) {
        self.add(at, key, 1.0);
    }

    /// Adds `amount` to canonical metric `sym` in the second containing
    /// `at`: a dense-row bump while `at` stays in the current second.
    pub fn add_sym(&mut self, at: SimTime, sym: Sym, amount: f64) {
        let s = at.second_index();
        if s != self.hot_second || self.hot.is_empty() {
            if s < self.hot_second {
                // Out-of-order write behind the hot second: rare enough to
                // go straight to the cell map.
                self.max_second = self.max_second.max(s);
                *self.cells.entry((s, sym.name())).or_insert(0.0) += amount;
                return;
            }
            if self.hot.is_empty() {
                self.hot = vec![0.0; symbol::COUNT];
            } else {
                self.flush_hot();
            }
            self.hot_second = s;
            self.max_second = self.max_second.max(s);
        }
        self.hot[sym.index()] += amount;
    }

    /// Increments canonical metric `sym` by one in the second containing
    /// `at`.
    pub fn incr_sym(&mut self, at: SimTime, sym: Sym) {
        self.add_sym(at, sym, 1.0);
    }

    /// Sets metric `key` to `value` in the second containing `at`,
    /// overwriting any previous value (gauge semantics).
    pub fn set(&mut self, at: SimTime, key: &'static str, value: f64) {
        // Fold any pending hot-row contribution first so it cannot be
        // added on top of the gauge value at a later flush.
        self.flush_hot();
        let s = at.second_index();
        self.max_second = self.max_second.max(s);
        self.cells.insert((s, key), value);
    }

    /// Returns the value of `key` in second `second`, or 0.0.
    pub fn get(&self, second: u64, key: &'static str) -> f64 {
        let mut v = self.cells.get(&(second, key)).copied().unwrap_or(0.0);
        if second == self.hot_second && !self.hot.is_empty() {
            if let Some(sym) = symbol::lookup(key) {
                v += self.hot[sym.index()];
            }
        }
        v
    }

    /// Sums metric `key` over the closed range `[from, to]` of seconds.
    pub fn sum_range(&self, key: &'static str, from: u64, to: u64) -> f64 {
        (from..=to).map(|s| self.get(s, key)).sum()
    }

    /// Sums metric `key` over the whole series.
    pub fn total(&self, key: &'static str) -> f64 {
        let mut sum: f64 = self
            .cells
            .iter()
            .filter(|((_, k), _)| *k == key)
            .map(|(_, v)| *v)
            .sum();
        if !self.hot.is_empty() {
            if let Some(sym) = symbol::lookup(key) {
                sum += self.hot[sym.index()];
            }
        }
        sum
    }

    /// Returns the last second index that received data.
    pub fn max_second(&self) -> u64 {
        self.max_second
    }

    /// Returns dense rows for every second from 0 to the last active one.
    pub fn rows(&self, keys: &[&'static str]) -> Vec<SeriesRow> {
        (0..=self.max_second)
            .map(|second| SeriesRow {
                second,
                values: keys
                    .iter()
                    .map(|k| (k.to_string(), self.get(second, k)))
                    .collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(1.0), 4.0);
        assert!((s.stddev() - 1.2909944).abs() < 1e-6);
    }

    #[test]
    fn summary_empty_is_zero() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.percentile(0.5), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn histogram_buckets_and_threshold() {
        let mut h = Histogram::new(
            SimDuration::from_millis(10),
            10,
            SimDuration::from_millis(50),
        );
        h.record(SimDuration::from_millis(5)); // bucket 0
        h.record(SimDuration::from_millis(15)); // bucket 1
        h.record(SimDuration::from_millis(95)); // bucket 9, over threshold
        h.record(SimDuration::from_millis(200)); // overflow, over threshold
        assert_eq!(h.count(), 4);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.over_threshold(), 2);
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::new(SimDuration::from_millis(10), 10, SimDuration::from_secs(8));
        h.record(SimDuration::from_millis(10));
        h.record(SimDuration::from_millis(30));
        assert_eq!(h.mean(), SimDuration::from_millis(20));
    }

    #[test]
    fn second_series_accumulates() {
        let mut s = SecondSeries::new();
        s.incr(SimTime::from_millis(100), "good");
        s.incr(SimTime::from_millis(900), "good");
        s.incr(SimTime::from_millis(1100), "bad");
        assert_eq!(s.get(0, "good"), 2.0);
        assert_eq!(s.get(0, "bad"), 0.0);
        assert_eq!(s.get(1, "bad"), 1.0);
        assert_eq!(s.total("good"), 2.0);
        assert_eq!(s.sum_range("good", 0, 1), 2.0);
        assert_eq!(s.max_second(), 1);
    }

    #[test]
    fn second_series_rows_are_dense() {
        let mut s = SecondSeries::new();
        s.incr(SimTime::from_secs(3), "x");
        let rows = s.rows(&["x"]);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3].values[0].1, 1.0);
        assert_eq!(rows[1].values[0].1, 0.0);
    }

    #[test]
    fn second_series_gauge_set() {
        let mut s = SecondSeries::new();
        s.set(SimTime::from_secs(2), "mem", 800.0);
        s.set(SimTime::from_secs(2), "mem", 750.0);
        assert_eq!(s.get(2, "mem"), 750.0);
    }
}
