//! Deterministic streaming quantile sketches.
//!
//! [`QuantileSketch`] is a fixed-bucket log-linear histogram in the HDR
//! style: values are bucketed by octave (the position of their highest set
//! bit) and, within each octave, by [`SUBBUCKETS`] linear subbuckets. The
//! relative error of any reported quantile is therefore bounded by
//! `1/SUBBUCKETS` (6.25%), independent of the data distribution, and the
//! whole structure is a plain `[u64; BUCKETS]` of counts:
//!
//! * `observe` is allocation-free and branch-cheap — two shifts, a
//!   saturation check and an array increment — so it is safe on the DES
//!   kernel hot path (the PR-6 zero-allocation contract, pinned by
//!   `bench/tests/zero_alloc.rs`);
//! * `merge` adds bucket counts, which makes merging exactly associative
//!   and commutative (integer addition), so sharded sketches combine to
//!   the same result in any order;
//! * quantile queries walk the cumulative counts and report a bucket's
//!   upper bound, so estimates are deterministic and never understate.
//!
//! Values are plain `u64`s; callers decide the unit (the metrics registry
//! records latencies in microseconds). Values above [`MAX_VALUE`] are
//! clamped into the top bucket rather than dropped, so the sketch never
//! loses mass — only resolution — on outliers.

use crate::time::SimDuration;

/// Linear subbuckets per octave; bounds relative error to `1/SUBBUCKETS`.
pub const SUBBUCKETS: u64 = 16;
const SUBBUCKET_BITS: u32 = 4;
/// Octaves covered: values in `[0, 2^40)` (≈ 12.7 simulated days in µs)
/// resolve normally; larger values clamp into the top bucket.
const OCTAVES: u32 = 40;
/// Values `0..SUBBUCKETS` are identity-bucketed (one bucket per value);
/// each octave `SUBBUCKET_BITS..OCTAVES` then contributes `SUBBUCKETS`
/// linear subbuckets.
const BUCKETS: usize = (OCTAVES as usize - SUBBUCKET_BITS as usize + 1) * (SUBBUCKETS as usize);
/// Largest value the sketch resolves without clamping.
pub const MAX_VALUE: u64 = (1 << OCTAVES) - 1;

/// A mergeable fixed-bucket log-linear quantile sketch.
#[derive(Clone, Debug)]
pub struct QuantileSketch {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

/// Maps a value to its bucket index: octave of the highest set bit, then
/// one of [`SUBBUCKETS`] linear subbuckets within the octave.
fn bucket_of(v: u64) -> usize {
    let v = v.min(MAX_VALUE);
    if v < SUBBUCKETS {
        // The first octave is the identity: one bucket per value.
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= SUBBUCKET_BITS here
    let sub = (v >> (octave - SUBBUCKET_BITS)) & (SUBBUCKETS - 1);
    ((octave - SUBBUCKET_BITS + 1) as usize) * (SUBBUCKETS as usize) + sub as usize
}

/// Upper bound of bucket `i`: the largest value that maps into it (every
/// member of the bucket is `<=` this, so quantiles never understate).
fn bucket_upper(i: usize) -> u64 {
    if i < SUBBUCKETS as usize {
        return i as u64;
    }
    let octave = (i / SUBBUCKETS as usize) as u32 + SUBBUCKET_BITS - 1;
    let sub = (i % SUBBUCKETS as usize) as u64;
    (1u64 << octave) + ((sub + 1) << (octave - SUBBUCKET_BITS)) - 1
}

impl QuantileSketch {
    /// Creates an empty sketch. The bucket array is the only allocation
    /// the sketch ever performs; `observe` and `merge` are allocation-free.
    pub fn new() -> Self {
        QuantileSketch {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            max: 0,
        }
    }

    /// Records one value. Allocation-free.
    pub fn observe(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
        if v > self.max {
            self.max = v.min(MAX_VALUE);
        }
    }

    /// Records a [`SimDuration`] in microseconds. Allocation-free.
    pub fn observe_duration(&mut self, d: SimDuration) {
        self.observe(d.as_micros());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Returns true if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest recorded value (clamped to [`MAX_VALUE`]).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Folds `other` into `self` by adding bucket counts. Integer
    /// addition makes this exactly associative and commutative: any merge
    /// order over any sharding yields identical buckets.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Forgets every recorded value, keeping the allocation.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.max = 0;
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// first bucket whose cumulative count reaches `ceil(q * total)`.
    /// Returns 0 on an empty sketch. The estimate is deterministic and
    /// within `1/`[`SUBBUCKETS`] relative error of the exact quantile.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// The median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// The 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    /// Exact quantile over a sorted copy, matching the sketch's "first
    /// value whose rank reaches ceil(q*n)" convention.
    fn exact_quantile(values: &[u64], q: f64) -> u64 {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    fn seeded_workload(seed: u64, n: usize) -> Vec<u64> {
        let mut rng = SimRng::seed_from(seed);
        (0..n)
            .map(|i| {
                // A latency-shaped mix: a dense body with a long tail.
                let body = 500 + rng.uniform_u64(20_000);
                if i % 37 == 0 {
                    body + rng.uniform_u64(2_000_000)
                } else {
                    body
                }
            })
            .collect()
    }

    #[test]
    fn bucket_upper_bounds_every_bucket_member() {
        // Walk a dense sample of values: each must land in a bucket whose
        // upper bound is >= the value and within 1/SUBBUCKETS of it.
        let mut v = 0u64;
        while v < 1 << 24 {
            let b = bucket_of(v);
            let hi = bucket_upper(b);
            assert!(hi >= v, "upper({b}) = {hi} < {v}");
            assert!(
                hi - v <= v / SUBBUCKETS + 1,
                "bucket too wide at {v}: upper {hi}"
            );
            v = v * 17 / 16 + 1;
        }
    }

    #[test]
    fn quantiles_track_exact_within_bounded_relative_error() {
        for seed in [1u64, 7, 11, 42, 0xf1a9] {
            let values = seeded_workload(seed, 5_000);
            let mut sk = QuantileSketch::new();
            for &v in &values {
                sk.observe(v);
            }
            assert_eq!(sk.count(), values.len() as u64);
            for q in [0.10, 0.50, 0.90, 0.95, 0.99, 1.0] {
                let exact = exact_quantile(&values, q);
                let est = sk.quantile(q);
                assert!(est >= exact, "seed {seed} q{q}: est {est} < exact {exact}");
                let err = (est - exact) as f64 / exact.max(1) as f64;
                assert!(
                    err <= 1.0 / SUBBUCKETS as f64 + 1e-9,
                    "seed {seed} q{q}: est {est} vs exact {exact} (err {err:.4})"
                );
            }
        }
    }

    #[test]
    fn merge_is_associative_and_order_independent() {
        let shards: Vec<Vec<u64>> = (0..5).map(|s| seeded_workload(s + 100, 1_000)).collect();
        let sketches: Vec<QuantileSketch> = shards
            .iter()
            .map(|vals| {
                let mut sk = QuantileSketch::new();
                for &v in vals {
                    sk.observe(v);
                }
                sk
            })
            .collect();
        // Left fold, right fold, and a shuffled pairwise tree must agree.
        let mut left = QuantileSketch::new();
        for sk in &sketches {
            left.merge(sk);
        }
        let mut right = QuantileSketch::new();
        for sk in sketches.iter().rev() {
            right.merge(sk);
        }
        let mut tree_a = sketches[0].clone();
        tree_a.merge(&sketches[1]);
        let mut tree_b = sketches[2].clone();
        tree_b.merge(&sketches[3]);
        tree_b.merge(&sketches[4]);
        let mut tree = QuantileSketch::new();
        tree.merge(&tree_b);
        tree.merge(&tree_a);
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(left.quantile(q), right.quantile(q));
            assert_eq!(left.quantile(q), tree.quantile(q));
        }
        assert_eq!(left.count(), right.count());
        assert_eq!(left.count(), tree.count());
        assert_eq!(left.max(), tree.max());
        // And the merge equals observing everything into one sketch.
        let mut all = QuantileSketch::new();
        for vals in &shards {
            for &v in vals {
                all.observe(v);
            }
        }
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(all.quantile(q), left.quantile(q));
        }
    }

    #[test]
    fn determinism_across_runs() {
        let values = seeded_workload(7, 2_000);
        let run = || {
            let mut sk = QuantileSketch::new();
            for &v in &values {
                sk.observe(v);
            }
            (sk.p50(), sk.p95(), sk.p99(), sk.count(), sk.max())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn small_values_are_exact() {
        let mut sk = QuantileSketch::new();
        for v in 0..SUBBUCKETS {
            sk.observe(v);
        }
        // The first octave is identity-bucketed: quantiles are exact.
        assert_eq!(sk.quantile(1.0), SUBBUCKETS - 1);
        assert_eq!(sk.quantile(1.0 / SUBBUCKETS as f64), 0);
    }

    #[test]
    fn outliers_clamp_instead_of_dropping() {
        let mut sk = QuantileSketch::new();
        sk.observe(u64::MAX);
        sk.observe(5);
        assert_eq!(sk.count(), 2);
        assert_eq!(sk.max(), MAX_VALUE);
        assert_eq!(sk.quantile(1.0), MAX_VALUE);
    }

    #[test]
    fn empty_and_clear() {
        let mut sk = QuantileSketch::new();
        assert!(sk.is_empty());
        assert_eq!(sk.quantile(0.5), 0);
        sk.observe(100);
        assert!(!sk.is_empty());
        sk.clear();
        assert!(sk.is_empty());
        assert_eq!(sk.count(), 0);
        assert_eq!(sk.max(), 0);
    }
}
